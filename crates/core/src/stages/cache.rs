//! Per-stage artifact caches: bounded, fingerprint-ordered, poison-safe.
//!
//! The staged verdict engine replaces the former single opaque decision
//! cache with one [`StageCache`] per artifact kind, all living in the
//! process-wide [`ArtifactStore`]. Every cache keeps the semantics the
//! old cache was tested for:
//!
//! * **FIFO bound** — insertion order is tracked in a queue and the
//!   oldest entries are evicted first once `capacity` is reached;
//! * **poison recovery** — a worker that panics while holding a cache
//!   lock may leave the map and the queue out of sync; the next locker
//!   re-validates the invariants, dropping orphaned queue keys and
//!   re-queuing unqueued map keys in *structural-fingerprint* order
//!   (hash-map iteration order must never decide future evictions —
//!   rule D1);
//! * **stats** — hits, misses and evictions are counted per cache and
//!   survive poison recovery.

// chromata-lint: allow(D1): imported for the key-addressed stage caches; every use is justified at its site
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use chromata_task::Task;
use chromata_topology::structural_fingerprint;

use super::artifacts::{
    ExplorationReport, HomologyReport, LinkGraphs, Presentations, SubdividedComplex,
};
use super::DecisionRecord;

/// Hit/miss/eviction counters for one stage cache (and, via the
/// deprecated [`crate::decision_cache_stats`] shim, for the verdict
/// cache alone).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DecisionCacheStats {
    /// Total cache lookups. Under the coherence invariant every lookup
    /// is classified exactly once, so `lookups == hits + misses` must
    /// hold at any observation point — including under contention, since
    /// all three counters move together under the cache lock.
    pub lookups: u64,
    /// Artifacts served from the cache without recomputation.
    pub hits: u64,
    /// Artifacts computed by the stage and then cached.
    pub misses: u64,
    /// Entries evicted to keep the cache within its capacity.
    pub evictions: u64,
    /// Entries restored intact from a disk snapshot (see
    /// [`super::persist`]). Process-local, never persisted.
    pub restored: u64,
    /// Whole snapshot files discarded on load: bad magic, unsupported
    /// version, unreadable header, or an I/O error mid-read.
    pub rejected_snapshots: u64,
    /// Truncated trailing records skipped on load — the signature of a
    /// torn write (crash mid-append before the final newline).
    pub torn_entries: u64,
    /// Complete-looking records skipped on load: checksum mismatch,
    /// undecodable payload, or an inadmissible artifact (e.g. a
    /// budget-dependent exploration that must never be memoized).
    pub corrupt_entries: u64,
    /// Hits on *sub-task-granular* entries (per-branch link graphs and
    /// presentations): a nonzero value is the proof that an edited or
    /// near-duplicate task reused artifacts computed for another task.
    /// Always `<= hits`; stays 0 on whole-task caches. Process-local,
    /// never persisted.
    pub reuse_hits: u64,
}

impl DecisionCacheStats {
    /// Sum of the per-cause recovery counters (everything the loader
    /// skipped or discarded).
    #[must_use]
    pub fn recovery_events(&self) -> u64 {
        self.rejected_snapshots + self.torn_entries + self.corrupt_entries
    }

    /// The coherence invariant every observation must satisfy: each
    /// lookup was classified as exactly one hit or miss. Snapshot
    /// restores merge `hits + misses` into `lookups` so the invariant
    /// survives warm starts too.
    #[must_use]
    pub fn is_coherent(&self) -> bool {
        self.lookups == self.hits + self.misses
    }
}

/// The artifact kinds the engine caches, one [`StageCache`] each.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArtifactKind {
    /// [`SubdividedComplex`] — the §4 splitting deformation.
    Split,
    /// [`LinkGraphs`] — vertex domains, edge graphs, triangle lists.
    LinkGraphs,
    /// [`Presentations`] — per-triangle π₁ presentations + chain data.
    Presentations,
    /// [`HomologyReport`] — the continuous-map tier outcome.
    Homology,
    /// [`ExplorationReport`] — the bounded ACT exploration outcome.
    Exploration,
    /// The final verdict record with its replayable evidence traces.
    Verdict,
}

impl ArtifactKind {
    /// Stable lower-case name, used in reports and `chromata explain`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Split => "split",
            ArtifactKind::LinkGraphs => "link-graphs",
            ArtifactKind::Presentations => "presentations",
            ArtifactKind::Homology => "homology",
            ArtifactKind::Exploration => "explore",
            ArtifactKind::Verdict => "verdict",
        }
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Default capacity of each stage cache (entries), overridable with the
/// `CHROMATA_DECISION_CACHE_CAP` environment variable or
/// [`set_stage_cache_capacity`].
const DEFAULT_CACHE_CAPACITY: usize = 256;

/// A bounded FIFO cache for one artifact kind.
///
/// Invariant: `queue` holds each key of `map` exactly once. The cache is
/// key-addressed; the only iteration (poison recovery) sorts by
/// structural fingerprint so no hash-map order leaks into evictions.
pub struct StageCache<K, V> {
    // chromata-lint: allow(D1): key-addressed only; the one iteration (poison recovery) sorts by structural fingerprint
    map: HashMap<K, V>,
    queue: VecDeque<K>,
    capacity: usize,
    stats: DecisionCacheStats,
    /// Whether entries are keyed at sub-task granularity (per split
    /// branch). Granular caches additionally count every hit in
    /// `stats.reuse_hits` — the observable signal that an edit or a
    /// near-duplicate task shared a branch artifact.
    granular: bool,
}

impl<K: Clone + Eq + Hash, V: Clone> StageCache<K, V> {
    /// An empty cache bounded at `capacity` entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        StageCache {
            map: HashMap::new(), // chromata-lint: allow(D1): see the struct field's justification
            queue: VecDeque::new(),
            capacity,
            stats: DecisionCacheStats::default(),
            granular: false,
        }
    }

    /// An empty *sub-task-granular* cache: hits also bump `reuse_hits`.
    #[must_use]
    pub fn with_capacity_granular(capacity: usize) -> Self {
        let mut cache = Self::with_capacity(capacity);
        cache.granular = true;
        cache
    }

    /// Looks up an artifact, bumping the lookup and hit/miss counters
    /// (all under the caller's lock, so `lookups == hits + misses` is
    /// never observably violated). On granular caches a hit also bumps
    /// `reuse_hits`.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let found = self.map.get(key).cloned();
        self.stats.lookups += 1;
        if found.is_some() {
            self.stats.hits += 1;
            if self.granular {
                self.stats.reuse_hits += 1;
            }
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Inserts an artifact, evicting the oldest entries past capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_none() {
            self.queue.push_back(key);
        }
        self.evict_to_capacity();
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> DecisionCacheStats {
        self.stats
    }

    /// Mutable counters, for the persist layer's recovery accounting.
    pub(crate) fn stats_mut(&mut self) -> &mut DecisionCacheStats {
        &mut self.stats
    }

    /// The current capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Every `(key, value)` in insertion (eviction) order — the order a
    /// snapshot must preserve so a reloaded cache evicts identically.
    pub(crate) fn entries_in_order(&self) -> Vec<(K, V)> {
        self.queue
            .iter()
            .filter_map(|k| self.map.get(k).map(|v| (k.clone(), v.clone())))
            .collect()
    }

    /// Re-inserts an entry restored from a snapshot: counted in
    /// `restored` (not as a miss), appended in call order so the
    /// snapshot's insertion order becomes this cache's eviction order.
    pub(crate) fn restore_entry(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_none() {
            self.queue.push_back(key);
        }
        self.stats.restored += 1;
        self.evict_to_capacity();
    }

    /// Number of cached artifacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Replaces the capacity bound, evicting the oldest entries if the
    /// cache currently exceeds it. A capacity of 0 disables caching.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.restore_invariants();
    }

    /// Validate-or-drop after recovering a poisoned lock: a worker that
    /// panicked mid-update may have inserted into `map` without
    /// recording the key in `queue` (or vice versa). Individual entries
    /// are never torn (both structures are updated with complete
    /// values), so recovery re-derives the queue from the surviving map:
    /// orphaned queue keys are dropped, unqueued map keys are re-queued
    /// in structural-fingerprint order, and the capacity bound is
    /// re-imposed. The stats — including evictions performed here —
    /// survive recovery.
    pub fn restore_invariants(&mut self) {
        // chromata-lint: allow(D1): re-queue order is made deterministic by the fingerprint sort below
        let mut seen = std::collections::HashSet::new();
        let map = &self.map;
        self.queue
            .retain(|k| map.contains_key(k) && seen.insert(k.clone()));
        let mut unqueued: Vec<K> = self
            .map
            .keys()
            .filter(|k| !seen.contains(*k))
            .cloned()
            .collect();
        unqueued.sort_by_key(|k| structural_fingerprint(k));
        for k in unqueued {
            self.queue.push_back(k);
        }
        self.evict_to_capacity();
    }

    /// Drops all artifacts and resets the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.queue.clear();
        self.stats = DecisionCacheStats::default();
    }

    fn evict_to_capacity(&mut self) {
        while self.map.len() > self.capacity {
            let Some(oldest) = self.queue.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    #[cfg(test)]
    fn raw_parts(&mut self) -> (&mut HashMap<K, V>, &mut VecDeque<K>) {
        (&mut self.map, &mut self.queue)
    }
}

/// A [`StageCache`] behind a mutex whose lock transparently recovers
/// from poisoning by re-validating the cache invariants.
pub struct SharedCache<K, V> {
    inner: Mutex<StageCache<K, V>>,
}

impl<K: Clone + Eq + Hash, V: Clone> SharedCache<K, V> {
    /// An empty shared cache bounded at `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SharedCache {
            inner: Mutex::new(StageCache::with_capacity(capacity)),
        }
    }

    /// An empty shared cache whose entries are keyed at sub-task
    /// granularity (hits also count as `reuse_hits`).
    #[must_use]
    pub fn new_granular(capacity: usize) -> Self {
        SharedCache {
            inner: Mutex::new(StageCache::with_capacity_granular(capacity)),
        }
    }

    /// Locks the cache. If a thread panicked while holding the lock, the
    /// cross-structure invariants are re-validated (and violating
    /// entries dropped) before the guard is handed out.
    pub fn lock(&self) -> MutexGuard<'_, StageCache<K, V>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.restore_invariants();
                guard
            }
        }
    }
}

/// The process-wide store of per-stage caches the verdict engine runs
/// against. One instance exists per process (see [`store`]); every
/// analysis — sequential or batched — shares it, which is what lets
/// [`crate::analyze_batch`] reuse subdivision and presentation artifacts
/// across tasks.
pub struct ArtifactStore {
    pub(crate) split: SharedCache<Task, Arc<SubdividedComplex>>,
    /// Keyed per split-branch sub-task (a name-erased single-facet
    /// restriction), not per whole task — see `stages::branch_tasks`.
    pub(crate) links: SharedCache<Task, Arc<LinkGraphs>>,
    /// Keyed per split-branch sub-task, like `links`.
    pub(crate) presentations: SharedCache<Task, Arc<Presentations>>,
    /// Keyed on the ordered branch list of the split task: the homology
    /// tier consumes the assembled global artifacts, so its key is the
    /// full (name-free) branch decomposition.
    pub(crate) homology: SharedCache<Vec<Task>, Arc<HomologyReport>>,
    pub(crate) exploration: SharedCache<(Task, usize), Arc<ExplorationReport>>,
    pub(crate) verdict: SharedCache<(Task, usize), DecisionRecord>,
}

impl ArtifactStore {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        ArtifactStore {
            split: SharedCache::new(capacity),
            links: SharedCache::new_granular(capacity),
            presentations: SharedCache::new_granular(capacity),
            homology: SharedCache::new(capacity),
            exploration: SharedCache::new(capacity),
            verdict: SharedCache::new(capacity),
        }
    }

    /// Stats of one cache by kind.
    fn stats_of(&self, kind: ArtifactKind) -> DecisionCacheStats {
        match kind {
            ArtifactKind::Split => self.split.lock().stats(),
            ArtifactKind::LinkGraphs => self.links.lock().stats(),
            ArtifactKind::Presentations => self.presentations.lock().stats(),
            ArtifactKind::Homology => self.homology.lock().stats(),
            ArtifactKind::Exploration => self.exploration.lock().stats(),
            ArtifactKind::Verdict => self.verdict.lock().stats(),
        }
    }

    fn set_capacity_of(&self, kind: ArtifactKind, capacity: usize) {
        match kind {
            ArtifactKind::Split => self.split.lock().set_capacity(capacity),
            ArtifactKind::LinkGraphs => self.links.lock().set_capacity(capacity),
            ArtifactKind::Presentations => self.presentations.lock().set_capacity(capacity),
            ArtifactKind::Homology => self.homology.lock().set_capacity(capacity),
            ArtifactKind::Exploration => self.exploration.lock().set_capacity(capacity),
            ArtifactKind::Verdict => self.verdict.lock().set_capacity(capacity),
        }
    }

    fn clear_all(&self) {
        self.split.lock().clear();
        self.links.lock().clear();
        self.presentations.lock().clear();
        self.homology.lock().clear();
        self.exploration.lock().clear();
        self.verdict.lock().clear();
    }
}

/// Every artifact kind, in the fixed reporting order.
pub(crate) const ALL_KINDS: [ArtifactKind; 6] = [
    ArtifactKind::Split,
    ArtifactKind::LinkGraphs,
    ArtifactKind::Presentations,
    ArtifactKind::Homology,
    ArtifactKind::Exploration,
    ArtifactKind::Verdict,
];

/// The process-wide [`ArtifactStore`].
pub(crate) fn store() -> &'static ArtifactStore {
    static STORE: OnceLock<ArtifactStore> = OnceLock::new();
    STORE.get_or_init(|| {
        // Environment reads go through `govern` (rule D2): configuration
        // is sampled once at store initialization, never on a decision.
        let capacity = chromata_topology::govern::env_usize("CHROMATA_DECISION_CACHE_CAP")
            .unwrap_or(DEFAULT_CACHE_CAPACITY);
        ArtifactStore::with_capacity(capacity)
    })
}

/// Per-stage cache counters (process-wide), one entry per
/// [`ArtifactKind`] in declaration order.
#[must_use]
pub fn stage_cache_stats() -> Vec<(ArtifactKind, DecisionCacheStats)> {
    let s = store();
    ALL_KINDS.iter().map(|&k| (k, s.stats_of(k))).collect()
}

/// Replaces one stage cache's capacity (process-wide), evicting the
/// oldest entries if that cache currently exceeds the new bound. A
/// capacity of 0 disables caching for that stage.
pub fn set_stage_cache_capacity(kind: ArtifactKind, capacity: usize) {
    store().set_capacity_of(kind, capacity);
}

/// Drops every cached artifact of every stage and resets all counters.
pub fn clear_stage_caches() {
    store().clear_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Verdict;
    use chromata_task::library::{constant_task, identity_task, two_process_consensus};

    fn fp(key: &(Task, usize)) -> u64 {
        structural_fingerprint(key)
    }

    #[test]
    fn cache_is_bounded_with_fifo_eviction() {
        // Unit-level, on a private instance: the global store is shared
        // with concurrently running tests.
        let mut cache: StageCache<(Task, usize), Verdict> = StageCache::with_capacity(2);
        let key = |n: usize| (identity_task(2), n);
        let v = Verdict::Unknown { reason: "x".into() };
        cache.insert(key(0), v.clone());
        cache.insert(key(1), v.clone());
        cache.insert(key(2), v.clone());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // FIFO: the oldest key was evicted, the newer two survive.
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
        // Re-inserting an existing key neither grows nor evicts.
        cache.insert(key(1), v);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // A zero-capacity cache stores nothing.
        let mut off: StageCache<(Task, usize), Verdict> = StageCache::with_capacity(0);
        off.insert(key(9), Verdict::Unknown { reason: "y".into() });
        assert!(off.is_empty());
    }

    #[test]
    fn shrinking_capacity_evicts_fifo_and_counts() {
        // Regression (satellite): shrinking the bound below the current
        // population must evict the *oldest* entries first and count each
        // one, exactly like an insert-driven eviction would.
        let mut cache: StageCache<(Task, usize), Verdict> = StageCache::with_capacity(4);
        let key = |n: usize| (identity_task(2), n);
        let v = Verdict::Unknown { reason: "x".into() };
        for n in 0..4 {
            cache.insert(key(n), v.clone());
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions, 0);
        cache.set_capacity(2);
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 2, "shrink evictions are counted");
        // FIFO: the two oldest went, the two newest survive.
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        // Growing the bound never evicts.
        cache.set_capacity(10);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn restore_entry_counts_restored_not_misses() {
        let mut cache: StageCache<(Task, usize), Verdict> = StageCache::with_capacity(2);
        let key = |n: usize| (identity_task(2), n);
        let v = Verdict::Unknown { reason: "x".into() };
        cache.restore_entry(key(0), v.clone());
        cache.restore_entry(key(1), v.clone());
        cache.restore_entry(key(2), v.clone());
        let stats = cache.stats();
        assert_eq!(stats.restored, 3);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 1, "restores respect the capacity bound");
        // Restoration order is eviction order: key(0) was the oldest.
        let order = cache.entries_in_order();
        assert_eq!(
            order.iter().map(|(k, _)| k.1).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // Zero-capacity caches restore nothing.
        let mut off: StageCache<(Task, usize), Verdict> = StageCache::with_capacity(0);
        off.restore_entry(key(9), v);
        assert!(off.is_empty());
    }

    #[test]
    fn granular_caches_count_reuse_hits() {
        let mut plain: StageCache<(Task, usize), Verdict> = StageCache::with_capacity(4);
        let mut granular: StageCache<(Task, usize), Verdict> =
            StageCache::with_capacity_granular(4);
        let key = (identity_task(2), 0);
        let v = Verdict::Unknown { reason: "x".into() };
        for cache in [&mut plain, &mut granular] {
            assert!(cache.get(&key).is_none());
            cache.insert(key.clone(), v.clone());
            assert!(cache.get(&key).is_some());
            assert!(cache.get(&key).is_some());
        }
        assert_eq!(plain.stats().reuse_hits, 0, "whole-task caches never reuse");
        assert_eq!(granular.stats().reuse_hits, 2);
        assert!(granular.stats().reuse_hits <= granular.stats().hits);
        assert!(plain.stats().is_coherent() && granular.stats().is_coherent());
    }

    #[test]
    fn poison_recovery_validates_or_drops() {
        // Unit-level check of the recovery routine itself: an orphaned
        // queue key (map insert lost to a panic) is dropped; an unqueued
        // map key (queue push lost to a panic) is re-queued, not dropped.
        let mut cache: StageCache<(Task, usize), Verdict> = StageCache::with_capacity(4);
        let v = Verdict::Unknown { reason: "x".into() };
        cache.insert((identity_task(2), 0), v.clone());
        let (map, queue) = cache.raw_parts();
        queue.push_back((identity_task(2), 7)); // orphan: not in map
        map.insert((identity_task(2), 8), v); // unqueued
        cache.restore_invariants();
        let (map, queue) = cache.raw_parts();
        assert_eq!(queue.len(), map.len());
        assert!(map.contains_key(&(identity_task(2), 8)));
        assert!(!queue.contains(&(identity_task(2), 7)));
        let queue = queue.clone();
        assert!(queue.iter().all(|k| cache.raw_parts().0.contains_key(k)));
    }

    #[test]
    fn eviction_stats_survive_poison_recovery() {
        // Regression (satellite): the eviction counter accumulated before
        // a worker panic must survive the poisoned-lock recovery, and the
        // evictions the recovery itself performs must be counted on top.
        let shared: SharedCache<(Task, usize), Verdict> = SharedCache::new(2);
        let v = Verdict::Unknown { reason: "x".into() };
        {
            let mut guard = shared.lock();
            guard.insert((identity_task(2), 0), v.clone());
            guard.insert((identity_task(2), 1), v.clone());
            guard.insert((identity_task(2), 2), v.clone());
            assert_eq!(guard.stats().evictions, 1);
            let _ = guard.get(&(identity_task(2), 2));
        }
        let before = shared.lock().stats();
        // A worker dies holding the lock after tearing the invariant the
        // way an interrupted insert would: map entries beyond capacity
        // with no queue record.
        std::thread::scope(|s| {
            let _ = s
                .spawn(|| {
                    let mut guard = shared.lock();
                    let (map, _) = guard.raw_parts();
                    map.insert((identity_task(2), 3), v.clone());
                    map.insert((identity_task(2), 4), v.clone());
                    panic!("worker dies mid-insert");
                })
                .join();
        });
        // The next lock recovers: capacity re-imposed (2 forced evictions)
        // and the pre-panic counters still present.
        let guard = shared.lock();
        let after = guard.stats();
        assert_eq!(after.hits, before.hits, "hits survive recovery");
        assert_eq!(after.misses, before.misses, "misses survive recovery");
        assert_eq!(
            after.evictions,
            before.evictions + 2,
            "pre-panic evictions survive and recovery evictions are counted"
        );
    }

    /// The cross-structure invariants every cache op must preserve:
    /// `queue` holds each key of `map` exactly once, and the capacity
    /// bound is respected.
    fn assert_cache_invariants(cache: &mut StageCache<(Task, usize), Verdict>, context: &str) {
        let capacity = cache.capacity;
        let (map, queue) = cache.raw_parts();
        assert_eq!(queue.len(), map.len(), "{context}");
        assert!(map.len() <= capacity, "{context}");
        let mut seen = std::collections::BTreeSet::new();
        for k in queue.iter() {
            assert!(map.contains_key(k), "orphan queue key: {context}");
            assert!(seen.insert(fp(k)), "duplicate queue key: {context}");
        }
    }

    /// Loom-style exhaustive op-level model check of the FIFO stage
    /// cache (see `chromata_topology::interleave`): every op runs under
    /// the cache mutex, so concurrent behaviour is fully determined by
    /// the commit order. Enumerate every interleaving of the per-thread
    /// op programs, replay each sequentially, and assert (a) the
    /// cross-structure invariants after every op, and (b) that replaying
    /// the same schedule twice produces the identical queue — no
    /// hash-map iteration order may leak into eviction order (rule D1).
    /// `--cfg chromata_loom` raises thread count and depth.
    #[test]
    fn stage_cache_exhaustive_interleavings() {
        use chromata_topology::interleave::{depth_budget, for_each_interleaving, max_threads};

        #[derive(Clone, Copy)]
        enum Op {
            /// Insert a verdict for key `k`.
            Insert(usize),
            /// Look up key `k`.
            Get(usize),
            /// Poison recovery ran (models a worker panic + re-lock).
            Restore,
        }
        let keys: Vec<(Task, usize)> = vec![
            (identity_task(2), 0),
            (identity_task(2), 1),
            (constant_task(2), 0),
            (two_process_consensus(), 0),
        ];
        let verdict = Verdict::Solvable {
            certificate: "model".into(),
        };
        let threads = max_threads();
        let depth = depth_budget();
        // Thread t's program: insert its own key, probe a shared key,
        // insert the shared key (contended), then recover — truncated to
        // the depth budget.
        let programs: Vec<Vec<Op>> = (0..threads)
            .map(|t| {
                let mut p = vec![
                    Op::Insert(t),
                    Op::Get(threads),
                    Op::Insert(threads),
                    Op::Restore,
                ];
                p.truncate(depth);
                p
            })
            .collect();
        let counts: Vec<usize> = programs.iter().map(Vec::len).collect();
        let replay = |schedule: &[usize]| -> Vec<u64> {
            let mut cache: StageCache<(Task, usize), Verdict> = StageCache::with_capacity(2);
            let mut pc = vec![0usize; threads];
            for (step, &t) in schedule.iter().enumerate() {
                let op = programs[t][pc[t]];
                pc[t] += 1;
                match op {
                    Op::Insert(k) => cache.insert(keys[k].clone(), verdict.clone()),
                    Op::Get(k) => {
                        cache.get(&keys[k]);
                    }
                    Op::Restore => cache.restore_invariants(),
                }
                assert_cache_invariants(&mut cache, &format!("after step {step} of {schedule:?}"));
            }
            cache.raw_parts().1.iter().map(fp).collect()
        };
        let mut schedules = 0usize;
        for_each_interleaving(&counts, |schedule| {
            schedules += 1;
            assert_eq!(
                replay(schedule),
                replay(schedule),
                "non-deterministic replay of {schedule:?}"
            );
        });
        assert!(
            schedules >= 20,
            "expected full enumeration, got {schedules}"
        );
    }

    /// Poison recovery repairs torn states deterministically: keys
    /// inserted into `map` without being queued (the worst a panic
    /// mid-update can leave behind) are re-queued in structural-
    /// fingerprint order, independent of hash-map iteration order.
    #[test]
    fn stage_cache_restore_repairs_torn_writes() {
        let keys: Vec<(Task, usize)> = (0..4usize).map(|r| (identity_task(2), r)).collect();
        let run = |insertion_order: &[usize]| -> Vec<u64> {
            let mut cache: StageCache<(Task, usize), Verdict> = StageCache::with_capacity(8);
            for &i in insertion_order {
                // Tear: map updated, queue not (simulates a panic between
                // the two updates under the lock).
                cache.raw_parts().0.insert(
                    keys[i].clone(),
                    Verdict::Solvable {
                        certificate: "model".into(),
                    },
                );
            }
            // Also an orphan queue entry with no artifact.
            cache.raw_parts().1.push_back((constant_task(2), 9));
            cache.restore_invariants();
            assert_cache_invariants(&mut cache, "after restore");
            cache.raw_parts().1.iter().map(fp).collect()
        };
        let a = run(&[0, 1, 2, 3]);
        let b = run(&[3, 1, 0, 2]);
        assert_eq!(a.len(), 4);
        assert_eq!(a, b, "re-queue order must not depend on insertion order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(a, sorted, "re-queue order is fingerprint-sorted");
    }

    #[test]
    fn stage_cache_stats_reports_every_kind() {
        let all = stage_cache_stats();
        assert_eq!(all.len(), ALL_KINDS.len());
        for (kind, _) in &all {
            assert!(ALL_KINDS.contains(kind));
        }
        assert_eq!(ArtifactKind::Verdict.name(), "verdict");
        assert_eq!(format!("{}", ArtifactKind::LinkGraphs), "link-graphs");
    }
}
