//! # chromata
//!
//! A complete implementation of *"Solvability Characterization for General
//! Three-Process Tasks"* (Attiya, Fraigniaud, Paz, Rajsbaum; PODC 2025):
//! decision machinery for the wait-free solvability of chromatic
//! three-process tasks in asynchronous read/write shared memory.
//!
//! ## The characterization
//!
//! The paper proves that a three-process task `T = (I, O, Δ)` is wait-free
//! solvable iff, after transforming `T` into canonical form (§3) and
//! splitting every *local articulation point* of the output complex (§4),
//! there is a continuous map `|I| → |O'|` carried by the deformed relation
//! `Δ'` (§5, Theorem 5.1). The pipeline here mirrors that statement:
//!
//! ```
//! use chromata::{analyze, PipelineOptions};
//! use chromata_task::library::hourglass;
//!
//! let analysis = analyze(&hourglass(), PipelineOptions::default());
//! assert_eq!(analysis.split.steps.len(), 1); // one pinch vertex split
//! assert!(analysis.verdict.is_unsolvable());
//! ```
//!
//! ## Modules
//!
//! * [`laps`] / [`Lap`] — local articulation point detection (§4);
//! * [`split_once`] / [`split_all`] — the splitting deformation and
//!   Theorem 4.3's elimination loop;
//! * [`continuous_map_exists`] — the continuous-map condition of
//!   Theorem 5.1, with exact tiers and sound H1 obstructions;
//! * [`solve_act`] — the baseline Herlihy–Shavit ACT search the paper's
//!   characterization supersedes (used for benchmarking and
//!   cross-validation);
//! * [`corollary_5_5`] / [`every_cycle_crosses_a_lap`] — the §5.3
//!   impossibility corollaries;
//! * [`decide_two_process`] / [`synthesize_two_process`] — Proposition
//!   5.4's complete two-process decider, with search-free witness
//!   synthesis for the solvable side;
//! * [`analyze`] — the end-to-end pipeline.
//!
//! The re-exported crates [`topology`], [`algebra`], [`subdivision`]
//! and [`task`] provide the substrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod act;
mod continuous;
mod corollaries;
mod lap;
mod pipeline;
mod splitting;
pub mod stages;
mod two_process;

pub use act::{
    find_decision_map, find_decision_map_governed, solve_act, solve_act_governed, validate_witness,
    ActOutcome,
};
pub use chromata_topology::{Budget, CancelToken, Interrupt};
pub use continuous::{continuous_map_exists, ContinuousOutcome, ImpossibilityReason};
pub use corollaries::{corollary_5_5, crossing_graph, every_cycle_crosses_a_lap};
pub use lap::{first_lap_of_facet, laps, Lap};
#[allow(deprecated)] // the shim is re-exported for source compatibility
pub use pipeline::decision_cache_stats;
pub use pipeline::{
    analyze, analyze_batch, analyze_batch_governed, analyze_batch_persistent, analyze_governed,
    analyze_persistent, clear_decision_cache, set_decision_cache_capacity, Analysis,
    DecisionCacheStats, Obstruction, PersistenceReport, PipelineOptions, Verdict,
};
pub use splitting::{
    split_all, split_once, transport_witness, unsplit_simplex, unsplit_vertex, SplitOutcome,
};
pub use stages::artifacts::{
    ComponentPresentation, ExplorationReport, HomologyReport, LinkGraphs, Presentations,
    SubdividedComplex, TrianglePresentations,
};
pub use stages::cache::{
    clear_stage_caches, set_stage_cache_capacity, stage_cache_stats, ArtifactKind, ArtifactStore,
    SharedCache, StageCache,
};
pub use stages::chaos::{
    parse_fault_kinds, ChaosShardIo, FaultKind, FaultSchedule, InProcessShards, NetFault,
    PersistChaos, PersistFault, PlannedFault, ShardFault, ALL_FAULT_KINDS,
};
pub use stages::persist::{
    audit_cache_dir, clear_cache_dir, load_cache_dir, persist_failures, persist_now,
    store_read_through, warm_start, CacheDirConfig, LoadReport, PersistError, SaveReport,
    SnapshotAudit, SnapshotStatus, CACHE_DIR_ENV,
};
pub use stages::remote::{
    clear_remote, configure_remote, execute_stage_line, parse_stage_fields, remote_active,
    remote_fault_trace, remote_stats, stage_request_line, RemotePolicy, RemoteStats, ShardIo,
    ShardIoError, ShardStep, StageJob, STAGE_PROTO_VERSION,
};
pub use stages::{CacheEvent, EvidenceChain, Stage, StageEvidence, StageOrigin, StageOutcome};
pub use two_process::{decide_two_process, synthesize_two_process};

pub use chromata_algebra as algebra;
pub use chromata_subdivision as subdivision;
pub use chromata_task as task;
pub use chromata_topology as topology;
