//! Impossibility corollaries 5.5 and 5.6 (paper, §5.3).
//!
//! Both corollaries detect unsolvability directly from local articulation
//! points, without running the full pipeline: a path (resp. cycle) in the
//! relevant output subcomplex that cannot avoid *crossing through* a LAP
//! — entering and leaving through different link components — witnesses
//! that no carried continuous map can exist after splitting.
//!
//! chromata-lint: allow(P3): indices address fixed-arity simplex tuples validated by the task constructors; every site is advisory-flagged by P2 for per-site review

use std::collections::BTreeMap;

use chromata_task::Task;
use chromata_topology::{Complex, Graph, Simplex, Value, Vertex};

use crate::lap::{laps, Lap};

/// The *crossing graph* of a 1-dimensional subcomplex `k` with respect to
/// the LAPs of an input facet: every LAP vertex is split into one node per
/// link component, and each edge attaches to the copy determined by its
/// other endpoint. Paths in this graph are exactly the walks in `k` that
/// never cross through a LAP.
#[must_use]
pub fn crossing_graph(k: &Complex, facet_laps: &[Lap]) -> Graph {
    let lap_of: BTreeMap<&Vertex, &Lap> = facet_laps.iter().map(|l| (&l.vertex, l)).collect();
    let copy = |v: &Vertex, other: &Vertex| -> Vertex {
        match lap_of.get(v) {
            Some(lap) => {
                let i = lap
                    .component_of(other)
                    .expect("edge endpoint lies in some link component"); // chromata-lint: allow(P1): the other endpoint of an edge at v lies in lk(v) by face-closure
                v.with_value(Value::split(v.value().clone(), i as u32))
            }
            None => v.clone(),
        }
    };
    let mut g = Graph::new();
    for v in k.vertices() {
        if !lap_of.contains_key(v) {
            g.add_vertex(v.clone());
        } else {
            let lap = lap_of[v];
            for i in 0..lap.component_count() {
                g.add_vertex(v.with_value(Value::split(v.value().clone(), i as u32)));
            }
        }
    }
    for e in k.simplices_of_dim(1) {
        let vs = e.vertices();
        let (a, b) = (&vs[0], &vs[1]);
        g.add_edge(copy(a, b), copy(b, a));
    }
    g
}

/// All crossing-graph copies of a vertex.
fn copies_of(g: &Graph, v: &Vertex) -> Vec<Vertex> {
    g.vertices()
        .filter(|u| *u == v || u.value().unsplit() == v.value() && u.color() == v.color())
        .cloned()
        .collect()
}

/// Corollary 5.5: the task is unsolvable if some input triangle
/// `σ = {x, x', x''}` has a pair of its vertices such that *every* path in
/// `Δ(x, x')` between their solo outputs crosses through a LAP w.r.t. `σ`.
///
/// Returns the witnessing `(σ, edge)` pair, or `None` if the corollary
/// does not apply. (Non-applicability says nothing about solvability.)
///
/// # Examples
///
/// ```
/// use chromata::corollary_5_5;
/// use chromata_task::{canonicalize, library::{hourglass, pinwheel}};
///
/// assert!(corollary_5_5(&canonicalize(&hourglass())).is_some());
/// // For the pinwheel, paths avoiding LAP crossings still exist (§6.2).
/// assert!(corollary_5_5(&canonicalize(&pinwheel())).is_none());
/// ```
#[must_use]
pub fn corollary_5_5(task: &Task) -> Option<(Simplex, Simplex)> {
    let all = laps(task);
    for sigma in task.input().facets() {
        if sigma.dimension() != 2 {
            continue;
        }
        let facet_laps: Vec<Lap> = all.iter().filter(|l| l.facet == *sigma).cloned().collect();
        if facet_laps.is_empty() {
            continue;
        }
        for e in sigma.boundary_faces() {
            let img = task.delta().image_of(&e);
            let g = crossing_graph(img, &facet_laps);
            let vs = e.vertices();
            let ys = task.delta().image_of(&Simplex::vertex(vs[0].clone()));
            let yps = task.delta().image_of(&Simplex::vertex(vs[1].clone()));
            let mut all_blocked = true;
            'pairs: for y in ys.vertices() {
                for yp in yps.vertices() {
                    for cy in copies_of(&g, y) {
                        for cyp in copies_of(&g, yp) {
                            if g.connected(&cy, &cyp) {
                                all_blocked = false;
                                break 'pairs;
                            }
                        }
                    }
                }
            }
            if all_blocked {
                return Some((sigma.clone(), e));
            }
        }
    }
    None
}

/// Corollary 5.6 (single input triangle): the task is unsolvable if every
/// cycle in `Δ(Skel¹ I)` crosses through a LAP — equivalently, the
/// crossing graph of the skeleton image is a forest *and* the solo-output
/// consistency check of the split skeleton fails.
///
/// This function implements the literal cycle condition: it returns `true`
/// when the crossing graph of `Δ(Skel¹ I)` is a forest (every cycle
/// crosses a LAP). Combined with disagreeing solo outputs this certifies
/// unsolvability; the full skeleton CSP lives in the pipeline.
#[must_use]
pub fn every_cycle_crosses_a_lap(task: &Task) -> Option<bool> {
    let mut facets = task.input().facets();
    let sigma = facets.next()?.clone();
    if facets.next().is_some() || sigma.dimension() != 2 {
        return None; // the corollary is stated for a single input triangle
    }
    let facet_laps: Vec<Lap> = laps(task)
        .into_iter()
        .filter(|l| l.facet == sigma)
        .collect();
    // Δ(Skel¹ I): union of the images of the three input edges.
    let mut skel = Complex::new();
    for e in sigma.boundary_faces() {
        skel = skel.union(task.delta().image_of(&e));
    }
    let g = crossing_graph(&skel.skeleton(1), &facet_laps);
    Some(g.is_forest())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::canonicalize;
    use chromata_task::library::{hourglass, identity_task, pinwheel, two_set_agreement};

    #[test]
    fn hourglass_blocked_by_corollary_5_5() {
        let t = canonicalize(&hourglass());
        let (sigma, edge) = corollary_5_5(&t).expect("hourglass is 5.5-blocked");
        assert_eq!(sigma.dimension(), 2);
        assert_eq!(edge.dimension(), 1);
    }

    #[test]
    fn pinwheel_not_blocked_by_5_5_but_cycles_cross() {
        let t = canonicalize(&pinwheel());
        assert!(corollary_5_5(&t).is_none(), "§6.2: 5.5 does not apply");
        assert_eq!(
            every_cycle_crosses_a_lap(&t),
            Some(true),
            "§6.2: Corollary 5.6 applies to the pinwheel"
        );
    }

    #[test]
    fn clean_tasks_not_flagged() {
        let t = canonicalize(&identity_task(3));
        assert!(corollary_5_5(&t).is_none());
        assert_eq!(every_cycle_crosses_a_lap(&t), Some(false));
        let t2 = canonicalize(&two_set_agreement());
        assert!(corollary_5_5(&t2).is_none());
    }

    #[test]
    fn crossing_graph_splits_laps_only() {
        let t = canonicalize(&hourglass());
        let sigma = t.input().facets().next().unwrap().clone();
        let facet_laps: Vec<Lap> = laps(&t).into_iter().filter(|l| l.facet == sigma).collect();
        assert_eq!(facet_laps.len(), 1);
        let img = t.delta().image_of(&sigma);
        let g = crossing_graph(&img.skeleton(1), &facet_laps);
        // One LAP with two components: one extra node.
        assert_eq!(g.vertex_count(), img.vertex_count() + 1);
    }

    #[test]
    fn multi_facet_tasks_not_handled_by_5_6() {
        let t = canonicalize(&chromata_task::library::consensus(3));
        assert_eq!(every_cycle_crosses_a_lap(&t), None);
    }
}
