//! Cross-crate proof of the incremental re-analysis contract (public
//! API only): for seeded near-duplicate mutants of library tasks, a
//! warm run through the shared per-branch artifact store returns the
//! same verdict and a byte-identical `deterministic_digest` as a cold
//! run from an empty store — and the warm run demonstrably reuses
//! per-branch artifacts (`reuse_hits`), including the edit-one-branch
//! scenario where only the downstream work of the edited split branch
//! is recomputed.
//!
//! Everything lives in one `#[test]` because the artifact store is
//! process-wide: concurrent test threads clearing and re-filling it
//! would race each other's counters.

use chromata::{
    analyze, clear_decision_cache, stage_cache_stats, ArtifactKind, PipelineOptions, Verdict,
};
use chromata_task::library::{consensus, hourglass, identity_task, pinwheel, two_set_agreement};
use chromata_task::{mutate_task, Task};
use chromata_topology::{Complex, Simplex, Vertex};

/// Seeded mutants derived per library task (the satellite contract).
const MUTANTS_PER_TASK: u64 = 100;

/// The campaign seed: `(seed, index)` fully determines each mutant.
const SEED: u64 = 0xC0F_FEE;

fn library_bases() -> Vec<Task> {
    vec![
        consensus(3),
        two_set_agreement(),
        hourglass(),
        pinwheel(),
        identity_task(3),
    ]
}

fn verdict_label(v: &Verdict) -> String {
    format!("{v}")
}

/// Sums `(reuse_hits, hits, lookups)` over the per-branch (granular)
/// stage caches.
fn granular_totals() -> (u64, u64, u64) {
    let mut totals = (0, 0, 0);
    for (kind, stats) in stage_cache_stats() {
        if matches!(kind, ArtifactKind::LinkGraphs | ArtifactKind::Presentations) {
            totals.0 += stats.reuse_hits;
            totals.1 += stats.hits;
            totals.2 += stats.lookups;
        }
    }
    totals
}

#[test]
fn incremental_reanalysis_matches_cold_runs_and_reuses_branches() {
    let bases = library_bases();
    let options = PipelineOptions::default();

    // -- Cold reference: every mutant decided from an empty store. ----
    let mut cold: Vec<(String, String, u64)> = Vec::new();
    for base in &bases {
        for index in 0..MUTANTS_PER_TASK {
            let mutant = mutate_task(base, SEED, index);
            clear_decision_cache();
            let analysis = analyze(&mutant, options);
            cold.push((
                mutant.name().to_owned(),
                verdict_label(&analysis.verdict),
                analysis.evidence.deterministic_digest(),
            ));
        }
    }

    // -- Warm pass: the same mutants through one shared store. --------
    clear_decision_cache();
    let mut next = cold.iter();
    for base in &bases {
        for index in 0..MUTANTS_PER_TASK {
            let mutant = mutate_task(base, SEED, index);
            let analysis = analyze(&mutant, options);
            let (name, verdict, digest) = next.next().expect("cold reference entry");
            assert_eq!(mutant.name(), name, "mutation is deterministic");
            assert_eq!(
                &verdict_label(&analysis.verdict),
                verdict,
                "warm verdict differs for {name}"
            );
            assert_eq!(
                analysis.evidence.deterministic_digest(),
                *digest,
                "warm evidence digest differs for {name}"
            );
        }
    }

    // Near-duplicate mutants share split branches, so the warm pass
    // must have served per-branch artifacts from the cache.
    let (reuse, hits, lookups) = granular_totals();
    assert!(
        reuse > 0,
        "a warm campaign over near-duplicates must reuse branch artifacts"
    );
    assert!(reuse <= hits, "reuse_hits is a subset of hits");
    assert!(hits <= lookups, "cache coherence: hits <= lookups");

    // -- Edit one split branch: only its downstream work re-runs. -----
    let v = |c: u8, x: i64| Vertex::of(c, x);
    let t1 = Simplex::new(vec![v(0, 0), v(1, 0), v(2, 0)]);
    let t2 = Simplex::new(vec![v(0, 1), v(1, 0), v(2, 0)]);
    let input = Complex::from_facets([t1.clone(), t2.clone()]);
    let base = Task::from_facet_delta("edit-base", input.clone(), |sigma| vec![sigma.clone()])
        .expect("identity-style task is valid");
    let edited = Task::from_facet_delta("edit-one-entry", input, |sigma| {
        if *sigma == t2 {
            vec![t2.substituted(&v(0, 1), v(0, 7))]
        } else {
            vec![sigma.clone()]
        }
    })
    .expect("edited task is valid");

    clear_decision_cache();
    let cold_edited = analyze(&edited, options);
    let cold_digest = cold_edited.evidence.deterministic_digest();

    clear_decision_cache();
    let _ = analyze(&base, options);
    let before_edit = granular_totals();
    let warm_edited = analyze(&edited, options);
    let after_edit = granular_totals();

    // τ1's branch is untouched by the edit, so re-analysis reuses it;
    // the verdict and digest still match the cold run byte-for-byte.
    assert!(
        after_edit.0 >= before_edit.0 + 2,
        "the unedited branch must be reused by link-graphs and presentations \
         (reuse_hits {} -> {})",
        before_edit.0,
        after_edit.0
    );
    assert_eq!(
        verdict_label(&warm_edited.verdict),
        verdict_label(&cold_edited.verdict)
    );
    assert_eq!(warm_edited.evidence.deterministic_digest(), cold_digest);
    let links_ev = warm_edited
        .evidence
        .stages
        .iter()
        .find(|s| s.stage == "link-graphs")
        .expect("a link-graphs stage");
    assert!(links_ev.reused, "evidence must surface the branch reuse");
    assert_eq!(links_ev.subkeys, 2, "one sub-key per input facet");
}
