//! E3/§5 — the continuous-map checker's tiers, timed on tasks that
//! exercise each one: simply-connected images (adaptive renaming),
//! the base-loop word problem (4-renaming), the joint H1 system on
//! free-abelian (torus), torsion (RP², Klein) and infeasible (2-set
//! agreement) instances, and the undecidable residue (Klein doubled).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chromata::{continuous_map_exists, ContinuousOutcome};
use chromata_task::library::{
    adaptive_renaming, klein_bottle_doubled_loop, klein_bottle_single_loop, loop_agreement,
    projective_plane_complex, renaming, torus_complex, two_set_agreement,
};
use chromata_task::Task;

fn tier_tasks() -> Vec<(&'static str, Task)> {
    vec![
        ("simply-connected", adaptive_renaming()),
        ("word-problem", renaming(4)),
        ("h1-infeasible", two_set_agreement()),
        ("h1-torus", loop_agreement("torus", torus_complex())),
        ("h1-rp2", loop_agreement("rp2", projective_plane_complex())),
        (
            "h1-klein-torsion",
            loop_agreement("klein-t", klein_bottle_single_loop()),
        ),
        (
            "undecidable-residue",
            loop_agreement("klein-2", klein_bottle_doubled_loop()),
        ),
    ]
}

fn bench_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("continuous/tiers");
    group.sample_size(10);
    for (label, task) in tier_tasks() {
        let outcome = match continuous_map_exists(&task) {
            ContinuousOutcome::Exists { .. } => "exists",
            ContinuousOutcome::Impossible { .. } => "impossible",
            ContinuousOutcome::Undetermined { .. } => "undetermined",
        };
        println!("[series] {label}: {outcome}");
        group.bench_function(label, |b| {
            b.iter(|| {
                matches!(
                    continuous_map_exists(black_box(&task)),
                    ContinuousOutcome::Exists { .. }
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: the series shapes matter, not σ.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_tiers
}
criterion_main!(benches);
