//! E13 — incremental re-analysis: what per-branch stage keys buy on
//! edit loops and mutation-fuzzing campaigns (PR 9).
//!
//! Two comparisons:
//!
//! * **edit one entry, cold vs warm** — a full cold decision of an
//!   edited task (one output-map entry changed) versus re-deciding it
//!   against the store already warmed by the *unedited* task, where
//!   every branch artifact not downstream of the edited facet is
//!   served from the cache;
//! * **warm mutant batch** — a 1 000-mutant seeded campaign over
//!   library bases through one shared store, the workload behind
//!   `chromata fuzz`; the series dump reports throughput and the
//!   granular reuse ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chromata::{analyze, clear_stage_caches, stage_cache_stats, ArtifactKind, PipelineOptions};
use chromata_task::library::{consensus, hourglass, identity_task, pinwheel, two_set_agreement};
use chromata_task::{mutate_task, mutate_with, MutationKind, Task};
use chromata_topology::{Complex, Simplex, Vertex};

const SEED: u64 = 0xBE_AC01;
const MUTANTS: u64 = 200; // per base: 5 bases x 200 = 1 000 analyses

fn bases() -> Vec<Task> {
    vec![
        consensus(3),
        two_set_agreement(),
        hourglass(),
        pinwheel(),
        identity_task(3),
    ]
}

/// A base task and a copy with exactly one output-map entry edited:
/// the edit-loop unit of work. `consensus(3)` with its first
/// flip-entry mutant — a real library task, so the per-branch stages
/// carry real weight.
fn edit_pair() -> (Task, Task) {
    let base = consensus(3);
    let edited = (0..64)
        .find_map(|draw| mutate_with(&base, MutationKind::FlipEntry, draw, "bench-edited"))
        .expect("a flip-entry draw validates on consensus(3)");
    (base, edited)
}

/// The two-facet toy pair (two triangles sharing an edge, one solo
/// vertex moved): isolates the single-branch edit with no other work.
fn toy_edit_pair() -> (Task, Task) {
    let v = |c: u8, x: i64| Vertex::of(c, x);
    let t1 = Simplex::new(vec![v(0, 0), v(1, 0), v(2, 0)]);
    let t2 = Simplex::new(vec![v(0, 1), v(1, 0), v(2, 0)]);
    let input = Complex::from_facets([t1.clone(), t2.clone()]);
    let base = Task::from_facet_delta(
        "bench-edit-base",
        input.clone(),
        |sigma| vec![sigma.clone()],
    )
    .expect("identity-style task is valid");
    let edited = Task::from_facet_delta("bench-edit-edited", input, |sigma| {
        if *sigma == t2 {
            vec![t2.substituted(&v(0, 1), v(0, 7))]
        } else {
            vec![sigma.clone()]
        }
    })
    .expect("edited task is valid");
    (base, edited)
}

/// `(reuse_hits, lookups)` summed over the granular stage caches.
fn granular() -> (u64, u64) {
    let mut totals = (0, 0);
    for (kind, stats) in stage_cache_stats() {
        if matches!(kind, ArtifactKind::LinkGraphs | ArtifactKind::Presentations) {
            totals.0 += stats.reuse_hits;
            totals.1 += stats.lookups;
        }
    }
    totals
}

fn bench_edit_one_entry(c: &mut Criterion) {
    let options = PipelineOptions::default();
    for (label, base, edited) in {
        let (b1, e1) = edit_pair();
        let (b2, e2) = toy_edit_pair();
        [("consensus-3", b1, e1), ("toy-two-facet", b2, e2)]
    } {
        let mut group = c.benchmark_group(format!("incremental/edit-one-entry/{label}"));
        group.bench_function("cold", |b| {
            b.iter(|| {
                clear_stage_caches();
                analyze(black_box(&edited), options)
                    .evidence
                    .deterministic_digest()
            });
        });
        group.bench_function("warm-after-base", |b| {
            // Per-iteration setup (warm the store with the unedited
            // task) must stay out of the measurement: time only the
            // re-analysis.
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    clear_stage_caches();
                    let _ = analyze(&base, options);
                    let started = std::time::Instant::now();
                    black_box(
                        analyze(black_box(&edited), options)
                            .evidence
                            .deterministic_digest(),
                    );
                    total += started.elapsed();
                }
                total
            });
        });
        group.finish();

        // Digest parity + reuse, the invariant behind the comparison.
        clear_stage_caches();
        let cold = analyze(&edited, options).evidence.deterministic_digest();
        clear_stage_caches();
        let _ = analyze(&base, options);
        let before = granular();
        let warm = analyze(&edited, options).evidence.deterministic_digest();
        let after = granular();
        assert_eq!(cold, warm, "edit-loop digests must match ({label})");
        println!(
            "[series] edit-one-entry {label}: reuse_hits +{} over {} lookups, digest {warm:016x}",
            after.0 - before.0,
            after.1 - before.1,
        );
    }
}

fn bench_warm_mutant_batch(c: &mut Criterion) {
    let bases = bases();
    let options = PipelineOptions::default();

    let mut group = c.benchmark_group("incremental/fuzz");
    group.sample_size(10);
    group.bench_function("1k-mutant-batch", |b| {
        b.iter(|| {
            clear_stage_caches();
            let mut decided = 0u64;
            for base in &bases {
                for index in 0..MUTANTS {
                    let mutant = mutate_task(black_box(base), SEED, index);
                    let _ = analyze(&mutant, options);
                    decided += 1;
                }
            }
            decided
        });
    });
    group.finish();

    // The numbers behind EXPERIMENTS.md §E13.
    clear_stage_caches();
    let started = std::time::Instant::now();
    let mut decided = 0u64;
    for base in &bases {
        for index in 0..MUTANTS {
            let mutant = mutate_task(base, SEED, index);
            let _ = analyze(&mutant, options);
            decided += 1;
        }
    }
    let secs = started.elapsed().as_secs_f64();
    let (reuse, lookups) = granular();
    println!(
        "[series] fuzz-batch: {decided} mutants in {:.3} s ({:.0} task/s), reuse {reuse}/{lookups} = {:.3}",
        secs,
        decided as f64 / secs,
        reuse as f64 / lookups as f64
    );
}

criterion_group!(benches, bench_edit_one_entry, bench_warm_mutant_batch);
criterion_main!(benches);
