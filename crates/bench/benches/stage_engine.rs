//! E9 — the staged verdict engine: what the PR-4 restructuring buys.
//!
//! Three comparisons on the task library:
//!
//! * **cold vs warm** — a first `analyze` populates the per-stage caches;
//!   the warm rerun is answered from the verdict cache (evidence chains
//!   replay, digests unchanged);
//! * **batch vs sequential** — `analyze_batch` fans the library out over
//!   the `par_map` pool while sharing every stage cache, versus a
//!   sequential per-task loop;
//! * **per-stage accounting** — a `[series]` dump of the stage-cache and
//!   subdivision-memo counters after a full library pass, the raw
//!   numbers behind EXPERIMENTS.md's per-stage table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chromata::{analyze, analyze_batch, clear_stage_caches, stage_cache_stats, PipelineOptions};
use chromata_subdivision::subdivision_memo_stats;
use chromata_task::library::{
    adaptive_renaming, approximate_agreement, consensus, hourglass, identity_task, leader_election,
    majority_consensus, pinwheel, two_set_agreement,
};
use chromata_task::Task;

fn library() -> Vec<Task> {
    vec![
        identity_task(3),
        hourglass(),
        pinwheel(),
        two_set_agreement(),
        majority_consensus(),
        consensus(3),
        leader_election(),
        approximate_agreement(1),
        adaptive_renaming(),
    ]
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages/analyze");
    group.sample_size(10);
    let t = hourglass();
    group.bench_function("cold", |b| {
        b.iter(|| {
            clear_stage_caches();
            analyze(black_box(&t), PipelineOptions::default())
                .evidence
                .deterministic_digest()
        });
    });
    group.bench_function("warm", |b| {
        clear_stage_caches();
        let cold = analyze(&t, PipelineOptions::default());
        b.iter(|| {
            let warm = analyze(black_box(&t), PipelineOptions::default());
            assert_eq!(
                warm.evidence.deterministic_digest(),
                cold.evidence.deterministic_digest()
            );
            warm.verdict.is_unsolvable()
        });
    });
    group.finish();
}

fn bench_batch_vs_sequential(c: &mut Criterion) {
    let tasks = library();
    let mut group = c.benchmark_group("stages/library");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            clear_stage_caches();
            tasks
                .iter()
                .map(|t| analyze(black_box(t), PipelineOptions::default()))
                .filter(|a| a.verdict.is_solvable())
                .count()
        });
    });
    group.bench_function("batch", |b| {
        b.iter(|| {
            clear_stage_caches();
            analyze_batch(black_box(&tasks), PipelineOptions::default())
                .iter()
                .filter(|a| a.verdict.is_solvable())
                .count()
        });
    });
    group.finish();
}

fn bench_stage_accounting(c: &mut Criterion) {
    // One cold pass + one warm pass over the library, then dump every
    // counter the engine keeps. Criterion still gets a benchmark (the
    // warm batch) so the group shows up in reports.
    clear_stage_caches();
    let tasks = library();
    let cold = analyze_batch(&tasks, PipelineOptions::default());
    let warm = analyze_batch(&tasks, PipelineOptions::default());
    for (c0, w) in cold.iter().zip(&warm) {
        assert_eq!(
            c0.evidence.deterministic_digest(),
            w.evidence.deterministic_digest()
        );
    }
    for a in &cold {
        for s in &a.evidence.stages {
            println!(
                "[series] stage-work {} {}: work {} wall_ms {:.3}",
                a.canonical.name(),
                s.stage,
                s.work,
                s.wall.as_secs_f64() * 1e3
            );
        }
    }
    for (kind, stats) in stage_cache_stats() {
        println!(
            "[series] stage-cache {}: hits {} misses {} evictions {}",
            kind.name(),
            stats.hits,
            stats.misses,
            stats.evictions
        );
    }
    let (memo_hits, memo_misses) = subdivision_memo_stats();
    println!("[series] subdivision-memo: hits {memo_hits} misses {memo_misses}");

    let mut group = c.benchmark_group("stages/accounting");
    group.sample_size(10);
    group.bench_function("warm-batch", |b| {
        b.iter(|| analyze_batch(black_box(&tasks), PipelineOptions::default()).len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_vs_warm,
    bench_batch_vs_sequential,
    bench_stage_accounting
);
criterion_main!(benches);
