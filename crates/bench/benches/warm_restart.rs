//! E10 — warm restart: what durable stage caches buy across process
//! restarts (PR 5).
//!
//! Three comparisons on the task library:
//!
//! * **decide cold vs warm-from-disk** — a full library pass against an
//!   empty store, versus the same pass after restoring the snapshots a
//!   previous "process" wrote (`load_cache_dir` simulates the restart by
//!   wiping the in-memory store first);
//! * **snapshot / restore cost** — the raw price of `persist_now` over a
//!   fully populated store and of reloading those files, the overhead a
//!   long-lived service pays per checkpoint;
//! * **series dump** — restored-entry counts and on-disk snapshot sizes,
//!   the numbers behind EXPERIMENTS.md §E10.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

use chromata::{
    analyze_batch, clear_stage_caches, load_cache_dir, persist_now, CacheDirConfig, PipelineOptions,
};
use chromata_task::library::{
    adaptive_renaming, approximate_agreement, consensus, hourglass, identity_task, leader_election,
    majority_consensus, pinwheel, two_set_agreement,
};
use chromata_task::Task;

fn library() -> Vec<Task> {
    vec![
        identity_task(3),
        hourglass(),
        pinwheel(),
        two_set_agreement(),
        majority_consensus(),
        consensus(3),
        leader_election(),
        approximate_agreement(1),
        adaptive_renaming(),
    ]
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chromata-bench-e10-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Populates the store with a full library pass and snapshots it,
/// returning the digests the warm runs must reproduce.
fn seed_snapshots(tasks: &[Task], config: &CacheDirConfig) -> Vec<u64> {
    clear_stage_caches();
    let cold = analyze_batch(tasks, PipelineOptions::default());
    persist_now(config)
        .expect("persistence enabled")
        .expect("snapshot write");
    cold.iter()
        .map(|a| a.evidence.deterministic_digest())
        .collect()
}

fn bench_decide_cold_vs_warm_disk(c: &mut Criterion) {
    let tasks = library();
    let dir = scratch_dir();
    let config = CacheDirConfig::at(&dir);
    let digests = seed_snapshots(&tasks, &config);

    let mut group = c.benchmark_group("persist/decide");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            clear_stage_caches();
            analyze_batch(black_box(&tasks), PipelineOptions::default()).len()
        });
    });
    group.bench_function("warm-from-disk", |b| {
        b.iter(|| {
            // A restart: empty store, then restore and decide.
            clear_stage_caches();
            let loaded = load_cache_dir(&config).expect("persistence enabled");
            assert_eq!(loaded.recovery_events(), 0, "{loaded:?}");
            let warm = analyze_batch(black_box(&tasks), PipelineOptions::default());
            for (a, d) in warm.iter().zip(&digests) {
                assert_eq!(a.evidence.deterministic_digest(), *d);
            }
            warm.len()
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_snapshot_and_restore(c: &mut Criterion) {
    let tasks = library();
    let dir = scratch_dir();
    let config = CacheDirConfig::at(&dir);
    seed_snapshots(&tasks, &config);

    let mut group = c.benchmark_group("persist/io");
    group.sample_size(10);
    group.bench_function("snapshot", |b| {
        b.iter(|| {
            persist_now(black_box(&config))
                .expect("persistence enabled")
                .expect("snapshot write")
                .entries_written
        });
    });
    group.bench_function("restore", |b| {
        b.iter(|| {
            clear_stage_caches();
            load_cache_dir(black_box(&config))
                .expect("persistence enabled")
                .restored
        });
    });
    group.finish();

    // The numbers behind EXPERIMENTS.md §E10.
    clear_stage_caches();
    let loaded = load_cache_dir(&config).expect("persistence enabled");
    println!(
        "[series] warm-restart: restored {} rejected {} torn {} corrupt {}",
        loaded.restored, loaded.rejected_snapshots, loaded.torn_entries, loaded.corrupt_entries
    );
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                println!(
                    "[series] snapshot-bytes {}: {}",
                    entry.file_name().to_string_lossy(),
                    meta.len()
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_decide_cold_vs_warm_disk,
    bench_snapshot_and_restore
);
criterion_main!(benches);
