//! Scaling of the pipeline with input-complex size: multi-valued
//! consensus has `v³` input facets, approximate agreement scales its
//! output strips with the resolution `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chromata::{analyze, PipelineOptions};
use chromata_task::library::{approximate_agreement, multi_valued_consensus};

fn bench_input_facets(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/input-facets");
    group.sample_size(10);
    for v in [2i64, 3] {
        let t = multi_valued_consensus(v);
        println!(
            "[series] consensus-3x{v}: {} input facets",
            t.input().facet_count()
        );
        group.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, _| {
            b.iter(|| {
                analyze(black_box(&t), PipelineOptions::default())
                    .verdict
                    .is_unsolvable()
            });
        });
    }
    group.finish();
}

fn bench_output_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/output-resolution");
    group.sample_size(10);
    for k in [1i64, 2, 4] {
        let t = approximate_agreement(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                analyze(black_box(&t), PipelineOptions::default())
                    .verdict
                    .is_solvable()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: the series shapes matter, not σ.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_input_facets, bench_output_resolution
}
criterion_main!(benches);
