//! F5 — the splitting deformation (§4): LAP detection and full
//! elimination (Theorem 4.3) across the library and on synthetic fans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chromata::{laps, split_all};
use chromata_task::library::{hourglass, majority_consensus, pinwheel};
use chromata_task::{canonicalize, Task};
use chromata_topology::{Complex, Simplex, Vertex};

/// A synthetic "fan" task: `n` triangles sharing the single vertex
/// `(0, 0)` — one articulation point with `n` link components, the
/// worst case for a single split.
fn fan_task(n: i64) -> Task {
    let facet = Simplex::from_iter((0..3).map(|i| Vertex::of(i, 0)));
    let input = Complex::from_facets([facet]);
    let hub = Vertex::of(0, 0);
    let triangles: Vec<Simplex> = (0..n)
        .map(|k| Simplex::from_iter([hub.clone(), Vertex::of(1, k), Vertex::of(2, k)]))
        .collect();
    Task::from_facet_delta("fan", input, move |_| triangles.clone()).expect("valid")
}

fn bench_lap_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("laps/detect");
    for t in [hourglass(), pinwheel(), majority_consensus()] {
        let canonical = canonicalize(&t);
        println!("[series] {}: {} LAPs", t.name(), laps(&canonical).len());
        group.bench_function(t.name().to_owned(), |b| {
            b.iter(|| laps(black_box(&canonical)).len());
        });
    }
    group.finish();
}

fn bench_split_all_library(c: &mut Criterion) {
    let mut group = c.benchmark_group("laps/split_all");
    group.sample_size(20);
    for t in [hourglass(), pinwheel(), majority_consensus()] {
        let canonical = canonicalize(&t);
        let out = split_all(&canonical);
        println!(
            "[series] {}: {} split steps, O' {} facets, {} components",
            t.name(),
            out.steps.len(),
            out.task.output().facet_count(),
            out.task.output().connected_components().len()
        );
        group.bench_function(t.name().to_owned(), |b| {
            b.iter(|| split_all(black_box(&canonical)).steps.len());
        });
    }
    group.finish();
}

fn bench_split_fan(c: &mut Criterion) {
    let mut group = c.benchmark_group("laps/fan");
    group.sample_size(20);
    for n in [2i64, 4, 8, 16] {
        let canonical = canonicalize(&fan_task(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| split_all(black_box(&canonical)).steps.len());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: the series shapes matter, not σ.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_lap_detection,
    bench_split_all_library,
    bench_split_fan
}
criterion_main!(benches);
