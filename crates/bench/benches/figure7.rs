//! F7 — the Figure 7 algorithm (§5.2): cost of exhaustive verification
//! and of single random schedules, plus negotiation length versus link
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chromata_runtime::{explore, initial_memory, processes_for, run_random, Fig7Config};
use chromata_task::library::{constant_task, identity_task, two_set_agreement};
use chromata_task::Task;
use chromata_topology::{Complex, Simplex, Vertex};

/// A "cycle task": the two non-pivot colors negotiate along an `n`-cycle
/// link around the hub vertex `(0, 0)` — negotiation paths grow with `n`.
fn cycle_task(n: i64) -> Task {
    let facet = Simplex::from_iter((0..3).map(|i| Vertex::of(i, 0)));
    let input = Complex::from_facets([facet]);
    let hub = Vertex::of(0, 0);
    // Triangles {hub, (1,k), (2,k)} and {hub, (1,k+1), (2,k)}: the link of
    // the hub is a 2n-cycle.
    let mut triangles = Vec::new();
    for k in 0..n {
        triangles.push(Simplex::from_iter([
            hub.clone(),
            Vertex::of(1, k),
            Vertex::of(2, k),
        ]));
        triangles.push(Simplex::from_iter([
            hub.clone(),
            Vertex::of(1, (k + 1) % n),
            Vertex::of(2, k),
        ]));
    }
    Task::from_facet_delta("cycle", input, move |_| triangles.clone()).expect("valid")
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7/exhaustive");
    group.sample_size(10);
    for t in [identity_task(3), constant_task(3)] {
        let sigma = t.input().facets().next().unwrap().clone();
        let config = Fig7Config::new(t.clone());
        let r = explore(
            processes_for(&sigma),
            initial_memory(),
            &config,
            5_000_000,
            500,
        )
        .expect("budget");
        println!(
            "[series] {}: {} states, {} outcomes",
            t.name(),
            r.states,
            r.outcomes.len()
        );
        group.bench_function(t.name().to_owned(), |b| {
            b.iter(|| {
                explore(
                    processes_for(black_box(&sigma)),
                    initial_memory(),
                    &config,
                    5_000_000,
                    500,
                )
                .map(|r| r.states)
            });
        });
    }
    group.finish();
}

fn bench_random_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7/random-schedule");
    for t in [identity_task(3), two_set_agreement()] {
        let sigma = t.input().facets().next().unwrap().clone();
        let config = Fig7Config::new(t.clone());
        group.bench_function(t.name().to_owned(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_random(
                    processes_for(black_box(&sigma)),
                    initial_memory(),
                    &config,
                    seed,
                    100_000,
                )
                .expect("terminates")
            });
        });
    }
    group.finish();
}

fn bench_negotiation_scaling(c: &mut Criterion) {
    // Termination is proportional to the longest link path (§5.2): random
    // schedules on growing cycle links.
    let mut group = c.benchmark_group("figure7/link-cycle");
    for n in [3i64, 6, 12] {
        let t = cycle_task(n);
        let sigma = t.input().facets().next().unwrap().clone();
        let config = Fig7Config::new(t.clone());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_random(
                    processes_for(&sigma),
                    initial_memory(),
                    &config,
                    seed,
                    1_000_000,
                )
                .expect("terminates")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: the series shapes matter, not σ.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_exhaustive,
    bench_random_schedules,
    bench_negotiation_scaling
}
criterion_main!(benches);
