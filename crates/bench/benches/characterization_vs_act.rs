//! E5 — the headline comparison: deciding solvability with the paper's
//! pipeline (canonicalize → split → continuous check, Theorem 5.1) versus
//! the bounded Herlihy–Shavit ACT search the paper supersedes.
//!
//! The *shape* reproduced: the pipeline answers with a fixed amount of
//! combinatorial work per task, while the ACT baseline must search maps
//! from `Ch^r(I)` whose size grows `13^r` — and for unsolvable tasks an
//! exhausted search at round `r` is still inconclusive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chromata::{analyze, solve_act, PipelineOptions};
use chromata_task::library::{
    adaptive_renaming, approximate_agreement, consensus, hourglass, identity_task, leader_election,
    majority_consensus, pinwheel, two_set_agreement,
};
use chromata_task::Task;

fn library() -> Vec<Task> {
    vec![
        identity_task(3),
        hourglass(),
        pinwheel(),
        two_set_agreement(),
        majority_consensus(),
        consensus(3),
        leader_election(),
        approximate_agreement(1),
        adaptive_renaming(),
    ]
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide/pipeline");
    group.sample_size(10);
    for t in library() {
        let v = analyze(&t, PipelineOptions::default()).verdict;
        println!(
            "[series] pipeline {}: {}",
            t.name(),
            if v.is_solvable() {
                "solvable"
            } else if v.is_unsolvable() {
                "unsolvable"
            } else {
                "unknown"
            }
        );
        group.bench_function(t.name().to_owned(), |b| {
            b.iter(|| {
                analyze(black_box(&t), PipelineOptions::default())
                    .verdict
                    .is_solvable()
            });
        });
    }
    group.finish();
}

fn bench_act_rounds(c: &mut Criterion) {
    // The baseline at increasing round budgets on one solvable and one
    // unsolvable task: the unsolvable side shows the exhaustive blow-up.
    let mut group = c.benchmark_group("decide/act");
    group.sample_size(10);
    for t in [identity_task(3), hourglass()] {
        for r in 0..=1usize {
            group.bench_with_input(BenchmarkId::new(t.name().to_owned(), r), &r, |b, &r| {
                b.iter(|| solve_act(black_box(&t), r).is_solvable());
            });
        }
    }
    group.finish();
}

fn bench_act_library(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide/act-r1");
    group.sample_size(10);
    for t in library() {
        println!(
            "[series] act(r≤1) {}: {}",
            t.name(),
            if solve_act(&t, 1).is_solvable() {
                "map found"
            } else {
                "exhausted (inconclusive)"
            }
        );
        group.bench_function(t.name().to_owned(), |b| {
            b.iter(|| solve_act(black_box(&t), 1).is_solvable());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: the series shapes matter, not σ.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_pipeline, bench_act_rounds, bench_act_library
}
criterion_main!(benches);
