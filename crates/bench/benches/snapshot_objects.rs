//! S11 — substrate microbenchmarks: the multi-threaded double-collect
//! atomic snapshot and the simulated memory operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chromata_runtime::{AtomicSnapshot, Cell, Memory};

fn bench_atomic_snapshot_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot/uncontended");
    for n in [3usize, 8, 16] {
        let snap: AtomicSnapshot<u64> = AtomicSnapshot::new(n);
        for i in 0..n {
            snap.update(i, i as u64);
        }
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| black_box(&snap).scan());
        });
        group.bench_with_input(BenchmarkId::new("update", n), &n, |b, _| {
            let mut k = 0u64;
            b.iter(|| {
                k += 1;
                black_box(&snap).update(0, k);
            });
        });
    }
    group.finish();
}

fn bench_atomic_snapshot_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot/contended-scan");
    group.sample_size(20);
    let snap: AtomicSnapshot<u64> = AtomicSnapshot::new(3);
    group.bench_function("3-writers", |b| {
        b.iter_custom(|iters| {
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let mut writers = Vec::new();
            for w in 0..3usize {
                let s = snap.clone();
                let stop = stop.clone();
                writers.push(std::thread::spawn(move || {
                    let mut k = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        k += 1;
                        s.update(w, k);
                    }
                }));
            }
            let start = std::time::Instant::now();
            for _ in 0..iters {
                let _ = black_box(snap.scan());
            }
            let elapsed = start.elapsed();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            for w in writers {
                w.join().expect("writer");
            }
            elapsed
        });
    });
    group.finish();
}

fn bench_simulated_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory/simulated");
    let mut m = Memory::with_objects(&["a", "b"], 3);
    m.update("a", 0, Cell::Int(1));
    group.bench_function("update", |b| {
        b.iter(|| {
            let mut m2 = m.clone();
            m2.update("a", 1, Cell::Int(7));
            m2
        });
    });
    group.bench_function("scan", |b| {
        b.iter(|| black_box(&m).scan("a"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: the series shapes matter, not σ.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_atomic_snapshot_uncontended,
    bench_atomic_snapshot_contended,
    bench_simulated_memory
}
criterion_main!(benches);
