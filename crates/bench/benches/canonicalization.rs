//! F3/F4 — the canonical-form transformation (§3): cost and output size
//! across the task library.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chromata_task::library::{
    consensus, hourglass, majority_consensus, pinwheel, simple_example_task, two_set_agreement,
};
use chromata_task::{canonicalize, is_canonical, Task};

fn library() -> Vec<Task> {
    vec![
        simple_example_task(),
        hourglass(),
        pinwheel(),
        two_set_agreement(),
        majority_consensus(),
        consensus(3),
    ]
}

fn bench_canonicalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonicalize");
    for t in library() {
        let canonical = canonicalize(&t);
        println!(
            "[series] {}: |O| {} -> |O*| {} facets (canonical: {})",
            t.name(),
            t.output().facet_count(),
            canonical.output().facet_count(),
            is_canonical(&canonical),
        );
        group.bench_function(t.name().to_owned(), |b| {
            b.iter(|| canonicalize(black_box(&t)));
        });
    }
    group.finish();
}

fn bench_canonicity_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("is_canonical");
    for t in library() {
        let canonical = canonicalize(&t);
        group.bench_function(t.name().to_owned(), |b| {
            b.iter(|| is_canonical(black_box(&canonical)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: the series shapes matter, not σ.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_canonicalize, bench_canonicity_check
}
criterion_main!(benches);
