//! E4 — protocol-complex growth: `Ch^r(Δ²)` has `13^r` facets (§2.4).
//!
//! Regenerates the growth series behind the paper's complaint about the
//! original ACT characterization: the object one must search grows
//! exponentially in the number of rounds `r`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chromata_subdivision::{chromatic_subdivision, iterated_chromatic_subdivision};
use chromata_topology::{Complex, Simplex, Vertex};

fn triangle_complex() -> Complex {
    Complex::from_facets([Simplex::from_iter((0..3).map(|i| Vertex::of(i, 0)))])
}

fn bench_iterated_subdivision(c: &mut Criterion) {
    let k = triangle_complex();
    let mut group = c.benchmark_group("subdivision/iterated");
    for r in 0..=3usize {
        // Print the series the paper's Table-free evaluation relies on.
        let sub = iterated_chromatic_subdivision(&k, r);
        println!(
            "[series] Ch^{r}(Δ²): facets={} vertices={}",
            sub.complex.facet_count(),
            sub.complex.vertex_count()
        );
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| {
                iterated_chromatic_subdivision(black_box(&k), r)
                    .complex
                    .facet_count()
            });
        });
    }
    group.finish();
}

fn bench_single_round_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("subdivision/one-round");
    let edge = Complex::from_facets([Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0)])]);
    let tri = triangle_complex();
    let two_tri = {
        let a = Vertex::of(0, 0);
        let b = Vertex::of(1, 0);
        Complex::from_facets([
            Simplex::from_iter([a.clone(), b.clone(), Vertex::of(2, 0)]),
            Simplex::from_iter([a, b, Vertex::of(2, 1)]),
        ])
    };
    for (name, k) in [
        ("edge", edge),
        ("triangle", tri),
        ("two-triangles", two_tri),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| chromatic_subdivision(black_box(&k)).complex.facet_count());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: the series shapes matter, not σ.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_iterated_subdivision,
    bench_single_round_shapes
}
criterion_main!(benches);
