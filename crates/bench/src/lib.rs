//! Benchmark harness for the chromata workspace; see `benches/`.
//!
//! Each bench target regenerates one of the paper's figure-level
//! quantities (see DESIGN.md §5 and EXPERIMENTS.md): subdivision growth
//! (E4), canonicalization (F3/F4), LAP elimination (F5),
//! characterization-vs-ACT (E5), Figure 7 (F7), the continuous checker's
//! tiers (E3/§5), input/output scaling, and the snapshot substrate
//! (S11).

#![forbid(unsafe_code)]
