//! The task model: `(I, O, Δ)` triples (paper, §2.3).

use std::fmt;

use chromata_topology::{CarrierMap, CarrierViolation, Complex, Simplex};

/// Errors raised by task validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TaskError {
    /// The input complex is not chromatic.
    InputNotChromatic,
    /// The output complex is not chromatic.
    OutputNotChromatic,
    /// The carrier map `Δ` is invalid over the input complex.
    InvalidCarrier(Vec<CarrierViolation>),
    /// Some image simplex of `Δ` is not a simplex of the output complex.
    ImageOutsideOutput(Simplex),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::InputNotChromatic => write!(f, "input complex is not chromatic"),
            TaskError::OutputNotChromatic => write!(f, "output complex is not chromatic"),
            TaskError::InvalidCarrier(errs) => {
                write!(
                    f,
                    "invalid carrier map ({} violations; first: {})",
                    errs.len(),
                    errs.first().map_or_else(String::new, ToString::to_string)
                )
            }
            TaskError::ImageOutsideOutput(s) => {
                write!(f, "image simplex {s} is not in the output complex")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// A distributed task `(I, O, Δ)`: chromatic input and output complexes
/// and a carrier map assigning legal outputs to every input simplex
/// (paper, §2.3).
///
/// # Examples
///
/// ```
/// use chromata_task::library::consensus;
///
/// let t = consensus(3);
/// assert_eq!(t.process_count(), 3);
/// assert_eq!(t.input().dimension(), Some(2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Task {
    name: String,
    input: Complex,
    output: Complex,
    delta: CarrierMap,
}

impl Task {
    /// Creates a task, validating chromaticity of both complexes, carrier
    /// map validity over the input and containment of all images in the
    /// output complex.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskError`] describing the first class of violation
    /// found.
    pub fn new(
        name: impl Into<String>,
        input: Complex,
        output: Complex,
        delta: CarrierMap,
    ) -> Result<Self, TaskError> {
        if !input.is_chromatic() {
            return Err(TaskError::InputNotChromatic);
        }
        if !output.is_chromatic() {
            return Err(TaskError::OutputNotChromatic);
        }
        delta
            .validate_chromatic(&input)
            .map_err(TaskError::InvalidCarrier)?;
        for (_, img) in delta.iter() {
            for s in img.facets() {
                if !output.contains(s) {
                    return Err(TaskError::ImageOutsideOutput(s.clone()));
                }
            }
        }
        Ok(Task {
            name: name.into(),
            input,
            output,
            delta,
        })
    }

    /// Builds a task from a facet-level specification, deriving `Δ` on
    /// lower-dimensional simplices as the *maximal monotone extension*:
    /// `Δ(τ) = ⋂_{facets σ ⊇ τ} (faces of Δ(σ) with colors id(τ))`.
    ///
    /// The output complex is the union of all images (the reachable
    /// complex). This matches the usual convention for tasks whose
    /// lower-dimensional behaviour is "anything consistent".
    ///
    /// # Errors
    ///
    /// Returns a [`TaskError`] if the derived task fails validation (e.g.
    /// the intersection is empty for some face).
    pub fn from_facet_delta<F>(
        name: impl Into<String>,
        input: Complex,
        mut facet_delta: F,
    ) -> Result<Self, TaskError>
    where
        F: FnMut(&Simplex) -> Vec<Simplex>,
    {
        let facets: Vec<Simplex> = input.facets().cloned().collect();
        let images: Vec<Complex> = facets
            .iter()
            .map(|s| Complex::from_facets(facet_delta(s)))
            .collect();
        let mut delta = CarrierMap::new();
        for tau in input.simplices() {
            let mut acc: Option<Complex> = None;
            for (sigma, img) in facets.iter().zip(&images) {
                if !tau.is_face_of(sigma) {
                    continue;
                }
                let restricted = img.filtered(|s| s.colors() == tau.colors());
                acc = Some(match acc {
                    None => restricted,
                    Some(a) => a.intersection(&restricted),
                });
            }
            delta.insert(tau.clone(), acc.unwrap_or_default());
        }
        let output = delta.full_image();
        Task::new(name, input, output, delta)
    }

    /// Builds a task from an explicit per-simplex specification of the
    /// facets of `Δ(τ)` for *every* simplex `τ` of the input complex.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskError`] if validation fails.
    pub fn from_delta_fn<F>(
        name: impl Into<String>,
        input: Complex,
        mut delta_fn: F,
    ) -> Result<Self, TaskError>
    where
        F: FnMut(&Simplex) -> Vec<Simplex>,
    {
        let delta = CarrierMap::from_fn(&input, &mut delta_fn);
        let output = delta.full_image();
        Task::new(name, input, output, delta)
    }

    /// The task's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input complex `I`.
    #[must_use]
    pub fn input(&self) -> &Complex {
        &self.input
    }

    /// The output complex `O`.
    #[must_use]
    pub fn output(&self) -> &Complex {
        &self.output
    }

    /// The input–output relation `Δ`.
    #[must_use]
    pub fn delta(&self) -> &CarrierMap {
        &self.delta
    }

    /// Number of processes (colors appearing in the input complex).
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.input.colors().len()
    }

    /// A copy of the task whose output complex is restricted to the
    /// reachable part `⋃_σ Δ(σ)` (assumed by the splitting machinery,
    /// paper §4).
    #[must_use]
    pub fn restricted_to_reachable(&self) -> Task {
        Task {
            name: self.name.clone(),
            input: self.input.clone(),
            output: self.delta.full_image(),
            delta: self.delta.clone(),
        }
    }

    /// Whether every output facet in every `Δ(σ)` image of a facet `σ` is
    /// link-connected *within that image* — the paper's link-connectivity
    /// property of tasks (§4.3): no local articulation points w.r.t. any
    /// input facet.
    #[must_use]
    pub fn is_link_connected(&self) -> bool {
        self.input.facets().all(|sigma| {
            self.delta
                .image_of(sigma)
                .disconnected_link_vertices()
                .is_empty()
        })
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Task '{}': |I| = {} facets, |O| = {} facets, {} processes",
            self.name,
            self.input.facet_count(),
            self.output.facet_count(),
            self.process_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_topology::{Value, Vertex};

    fn v(c: u8, x: i64) -> Vertex {
        Vertex::of(c, x)
    }

    /// The identity task: each process outputs its input.
    fn identity_task() -> Task {
        let tri = Simplex::from_iter([v(0, 0), v(1, 0), v(2, 0)]);
        let input = Complex::from_facets([tri]);
        Task::from_delta_fn("identity", input, |s| vec![s.clone()]).expect("valid")
    }

    #[test]
    fn identity_task_valid() {
        let t = identity_task();
        assert_eq!(t.process_count(), 3);
        assert_eq!(t.output(), t.input());
        assert!(t.is_link_connected());
        assert!(format!("{t}").contains("identity"));
    }

    #[test]
    fn invalid_carrier_rejected() {
        let tri = Simplex::from_iter([v(0, 0), v(1, 0), v(2, 0)]);
        let input = Complex::from_facets([tri.clone()]);
        // Wrong-color image.
        let mut delta = CarrierMap::from_fn(&input, |s| vec![s.clone()]);
        delta.insert(
            Simplex::vertex(v(0, 0)),
            Complex::from_facets([Simplex::vertex(v(1, 0))]),
        );
        let err = Task::new("bad", input, Complex::from_facets([tri]), delta).unwrap_err();
        assert!(matches!(err, TaskError::InvalidCarrier(_)));
    }

    #[test]
    fn image_outside_output_rejected() {
        let tri = Simplex::from_iter([v(0, 0), v(1, 0), v(2, 0)]);
        let input = Complex::from_facets([tri.clone()]);
        let delta = CarrierMap::from_fn(&input, |s| vec![s.clone()]);
        // Output complex missing the triangle.
        let small_output = Complex::from_facets([Simplex::from_iter([v(0, 0), v(1, 0)])]);
        let err = Task::new("bad", input, small_output, delta).unwrap_err();
        assert!(matches!(err, TaskError::ImageOutsideOutput(_)));
    }

    #[test]
    fn non_chromatic_input_rejected() {
        let bad = Complex::from_facets([Simplex::from_iter([v(0, 0), v(0, 1)])]);
        let err = Task::new("bad", bad, Complex::new(), CarrierMap::new()).unwrap_err();
        assert_eq!(err, TaskError::InputNotChromatic);
    }

    #[test]
    fn facet_delta_derivation_intersects() {
        // Two input triangles sharing edge {B, C}; facet images share one
        // facet G, so the derived Δ on the shared edge is G's edge only
        // when both images contain it.
        let a0 = v(0, 0);
        let a1 = v(0, 1);
        let b = v(1, 0);
        let c = v(2, 0);
        let sigma = Simplex::from_iter([a0.clone(), b.clone(), c.clone()]);
        let sigma2 = Simplex::from_iter([a1.clone(), b.clone(), c.clone()]);
        let input = Complex::from_facets([sigma.clone(), sigma2.clone()]);
        let g = Simplex::from_iter([v(0, 10), v(1, 10), v(2, 10)]);
        let h = Simplex::from_iter([v(0, 11), v(1, 11), v(2, 11)]);
        let t = Task::from_facet_delta("shared", input, |s| {
            if *s == sigma {
                vec![g.clone()]
            } else {
                vec![g.clone(), h.clone()]
            }
        })
        .expect("valid");
        // Shared edge {b, c}: only g's edge survives the intersection.
        let shared = Simplex::from_iter([b, c]);
        let img = t.delta().image_of(&shared);
        assert_eq!(img.facet_count(), 1);
        // σ2's own vertex can reach both g and h vertices.
        let img_a1 = t.delta().image_of(&Simplex::vertex(a1));
        assert_eq!(img_a1.facet_count(), 2);
        let _ = Value::Int(0);
    }

    #[test]
    fn reachability_restriction() {
        let tri = Simplex::from_iter([v(0, 0), v(1, 0), v(2, 0)]);
        let input = Complex::from_facets([tri.clone()]);
        let delta = CarrierMap::from_fn(&input, |s| vec![s.clone()]);
        let mut bigger = Complex::from_facets([tri.clone()]);
        bigger.add_simplex(Simplex::vertex(v(0, 99)));
        let t = Task::new("padded", input, bigger, delta).expect("valid");
        let r = t.restricted_to_reachable();
        assert!(!r.output().contains_vertex(&v(0, 99)));
        assert_eq!(r.output().facet_count(), 1);
    }
}
