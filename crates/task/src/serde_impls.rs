//! Serde support for [`Task`]: the on-disk task-file format used by the
//! `chromata` CLI. Deserialization runs the full task validation, so a
//! loaded task is as trustworthy as a constructed one.

use serde::de::Error as DeError;
use serde::ser::Error as _;
use serde::{Content, Deserialize, Deserializer, Serialize, Serializer};

use chromata_topology::{CarrierMap, Complex};

use crate::task::Task;

/// Mirror of [`Task`] in the on-disk format:
/// `{"name": …, "input": …, "output": …, "delta": …}`.
struct TaskRepr {
    name: String,
    input: Complex,
    output: Complex,
    delta: CarrierMap,
}

impl Serialize for TaskRepr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let err = |e: serde::ser::ContentError| S::Error::custom(e.0);
        s.serialize_content(Content::Map(vec![
            ("name".to_owned(), Content::Str(self.name.clone())),
            (
                "input".to_owned(),
                serde::ser::to_content(&self.input).map_err(err)?,
            ),
            (
                "output".to_owned(),
                serde::ser::to_content(&self.output).map_err(err)?,
            ),
            (
                "delta".to_owned(),
                serde::ser::to_content(&self.delta).map_err(err)?,
            ),
        ]))
    }
}

impl<'de> Deserialize<'de> for TaskRepr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let content = d.deserialize_content()?;
        let Content::Map(entries) = content else {
            return Err(D::Error::custom("expected a task object"));
        };
        let field = |name: &str| -> Result<Content, D::Error> {
            entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| D::Error::custom(format!("missing task field '{name}'")))
        };
        let name = match field("name")? {
            Content::Str(s) => s,
            other => {
                return Err(D::Error::custom(format!(
                    "expected a string name, found {other:?}"
                )))
            }
        };
        let de_err = |e: serde::de::ContentError| D::Error::custom(e.0);
        Ok(TaskRepr {
            name,
            input: serde::de::from_content(field("input")?).map_err(de_err)?,
            output: serde::de::from_content(field("output")?).map_err(de_err)?,
            delta: serde::de::from_content(field("delta")?).map_err(de_err)?,
        })
    }
}

impl Serialize for Task {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        TaskRepr {
            name: self.name().to_owned(),
            input: self.input().clone(),
            output: self.output().clone(),
            delta: self.delta().clone(),
        }
        .serialize(s)
    }
}

impl<'de> Deserialize<'de> for Task {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let r = TaskRepr::deserialize(d)?;
        Task::new(r.name, r.input, r.output, r.delta)
            .map_err(|e| D::Error::custom(format!("invalid task: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use crate::library::{hourglass, pinwheel};
    use crate::Task;

    #[test]
    fn library_tasks_roundtrip() {
        for t in [hourglass(), pinwheel()] {
            let json = serde_json::to_string(&t).expect("serialize");
            let back: Task = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, t);
        }
    }

    #[test]
    fn invalid_tasks_rejected_on_load() {
        let t = hourglass();
        let mut json = serde_json::to_value(&t).expect("serialize");
        // Remove the output complex entirely: images escape the output.
        json["output"] = serde_json::json!([]);
        let err = serde_json::from_value::<Task>(json).unwrap_err();
        assert!(err.to_string().contains("invalid task"), "{err}");
    }

    #[test]
    fn format_contains_the_name() {
        let json = serde_json::to_string(&hourglass()).unwrap();
        assert!(json.contains("\"hourglass\""));
    }
}
