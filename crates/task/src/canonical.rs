//! Canonical tasks (paper, §3).
//!
//! A task is transformed into *canonical* form `T* = (I, O*, Δ*)` by making
//! every process output its input alongside its decision: output vertices
//! become pairs `(input, output)`. Δ* is then "one-to-one" — each output
//! vertex has a unique input-vertex pre-image — which is what the splitting
//! deformation of §4 relies on. Theorem 3.1: `T` is solvable iff `T*` is.

use chromata_topology::{
    product_simplex, project_first, project_second, CarrierMap, Complex, Simplex, Vertex,
};

use crate::task::Task;

/// The canonical form `T* = (I, O*, Δ*)` of a task (paper, §3):
/// `Δ*(X) = { X × Y : Y ∈ Δ(X) }` and `O*` is the union of the images.
///
/// # Examples
///
/// ```
/// use chromata_task::{canonicalize, is_canonical, library::consensus};
///
/// let t = consensus(3);
/// assert!(!is_canonical(&t)); // value 0 is decidable from many inputs
/// let c = canonicalize(&t);
/// assert!(is_canonical(&c));
/// assert_eq!(c.input(), t.input());
/// ```
///
/// # Panics
///
/// Panics if the task's carrier map is malformed (impossible for validated
/// [`Task`]s).
#[must_use]
pub fn canonicalize(task: &Task) -> Task {
    let mut delta = CarrierMap::new();
    for (tau, img) in task.delta().iter() {
        let facets: Vec<Simplex> = img
            .facets()
            .map(|y| {
                product_simplex(tau, y)
                    // chromata-lint: allow(P1): carrier images carry their domain's colors, enforced by CarrierMap validation
                    .expect("carrier images have the colors of their domain simplex")
            })
            .collect();
        delta.insert(tau.clone(), Complex::from_facets(facets));
    }
    let output = delta.full_image();
    Task::new(
        format!("{}*", task.name()),
        task.input().clone(),
        output,
        delta,
    )
    .expect("canonicalization preserves task validity") // chromata-lint: allow(P1): canonicalization of a validated task preserves validity (paper section 3)
}

/// Whether the task is canonical: `Δ` is "one-to-one" in the paper's
/// sense — for any two *distinct* input simplices of the same dimension
/// `d`, their images share no `d`-dimensional simplex. (The `d = 0` case
/// is the unique-pre-image property of output vertices that Claim 1
/// relies on.)
#[must_use]
pub fn is_canonical(task: &Task) -> bool {
    let simplices: Vec<&Simplex> = task.input().simplices().collect();
    for (i, t1) in simplices.iter().enumerate() {
        // chromata-lint: allow(P3): `i` enumerates `simplices`, so
        // `i + 1 <= len` and the range slice cannot be out of bounds
        for t2 in &simplices[i + 1..] {
            if t1.dimension() != t2.dimension() {
                continue;
            }
            let d = t1.dimension();
            let img1 = task.delta().image_of(t1);
            let img2 = task.delta().image_of(t2);
            if img1.simplices_of_dim(d).any(|s| img2.contains(s)) {
                return false;
            }
        }
    }
    true
}

/// The unique input vertex of which a canonical output vertex is an
/// output, recovered from its paired value.
///
/// Returns `None` if the vertex does not carry a `Pair` value. Split
/// copies produced by the §4 deformation keep their pre-image: the split
/// wrapper is stripped before projecting.
#[must_use]
pub fn canonical_preimage(w: &Vertex) -> Option<Vertex> {
    let base = w.with_value(w.value().unsplit().clone());
    project_first(&base)
}

/// The underlying original-task decision of a canonical output vertex.
///
/// Returns `None` if the vertex does not carry a `Pair` value.
#[must_use]
pub fn canonical_decision(w: &Vertex) -> Option<Vertex> {
    let base = w.with_value(w.value().unsplit().clone());
    project_second(&base)
}

/// Projects a solution of `T*` down to a solution of `T` at the level of
/// decided simplices: maps each canonical output simplex to the original
/// output simplex (Theorem 3.1, easy direction).
///
/// Returns `None` if some vertex is not canonical.
#[must_use]
pub fn project_canonical_simplex(s: &Simplex) -> Option<Simplex> {
    let verts: Option<Vec<Vertex>> = s.iter().map(canonical_decision).collect();
    Some(Simplex::new(verts?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_topology::Value;

    fn v(c: u8, x: i64) -> Vertex {
        Vertex::of(c, x)
    }

    /// Two-facet task where both inputs can produce the same output facet
    /// (the Fig. 3 pattern).
    fn shared_output_task() -> Task {
        let sigma = Simplex::from_iter([v(0, 0), v(1, 0), v(2, 0)]);
        let sigma2 = Simplex::from_iter([v(0, 1), v(1, 0), v(2, 0)]);
        let input = Complex::from_facets([sigma, sigma2]);
        let g = Simplex::from_iter([v(0, 10), v(1, 10), v(2, 10)]);
        Task::from_facet_delta("fig3-like", input, |_| vec![g.clone()]).expect("valid")
    }

    #[test]
    fn non_canonical_detected() {
        let t = shared_output_task();
        assert!(!is_canonical(&t), "g0 is the output of two input vertices");
    }

    #[test]
    fn canonicalization_is_canonical_and_separates_facets() {
        let t = shared_output_task();
        let c = canonicalize(&t);
        assert!(is_canonical(&c));
        // The single output facet g splits into one copy per input facet.
        assert_eq!(c.output().facet_count(), 2);
        // Images of distinct facets are facet-disjoint.
        let facets: Vec<Simplex> = c.input().facets().cloned().collect();
        let img0 = c.delta().image_of(&facets[0]);
        let img1 = c.delta().image_of(&facets[1]);
        assert!(img0.facets().all(|f| !img1.contains(f)));
        // But they still share the sub-simplices of the shared input face.
        let shared_edge = Simplex::from_iter([v(1, 0), v(2, 0)]);
        let edge_img = c.delta().image_of(&shared_edge);
        assert!(edge_img.is_subcomplex_of(&img0.intersection(img1)));
    }

    #[test]
    fn projections_roundtrip() {
        let t = shared_output_task();
        let c = canonicalize(&t);
        for w in c.output().vertices() {
            let x = canonical_preimage(w).expect("canonical vertex");
            let y = canonical_decision(w).expect("canonical vertex");
            assert_eq!(x.color(), w.color());
            assert_eq!(y.color(), w.color());
            assert!(t.input().contains_vertex(&x));
            assert!(t.output().contains_vertex(&y));
        }
    }

    #[test]
    fn projection_of_simplices() {
        let t = shared_output_task();
        let c = canonicalize(&t);
        for (tau, img) in c.delta().iter() {
            for f in img.facets() {
                let back = project_canonical_simplex(f).expect("canonical");
                assert!(t.delta().carries(tau, &back));
            }
        }
    }

    #[test]
    fn preimage_strips_split_wrappers() {
        let w = Vertex::new(
            chromata_topology::Color::new(1),
            Value::split(Value::pair(Value::Int(7), Value::Int(9)), 2),
        );
        assert_eq!(canonical_preimage(&w), Some(v(1, 7)));
        assert_eq!(canonical_decision(&w), Some(v(1, 9)));
    }

    #[test]
    fn canonicalizing_twice_is_still_canonical() {
        let t = shared_output_task();
        let cc = canonicalize(&canonicalize(&t));
        assert!(is_canonical(&cc));
    }

    #[test]
    fn idempotent_on_inputless_tasks() {
        // Single-facet tasks are not automatically canonical unless Δ is
        // injective at vertices — the identity task is.
        let tri = Simplex::from_iter([v(0, 0), v(1, 0), v(2, 0)]);
        let input = Complex::from_facets([tri]);
        let t = Task::from_delta_fn("identity", input, |s| vec![s.clone()]).unwrap();
        assert!(is_canonical(&t));
        let c = canonicalize(&t);
        assert!(is_canonical(&c));
        assert_eq!(c.output().facet_count(), 1);
    }
}
