//! Distributed tasks `(I, O, Δ)`, canonical forms and a library of the
//! paper's example tasks.
//!
//! This crate implements §2.3 and §3 of *"Solvability Characterization for
//! General Three-Process Tasks"* (PODC 2025):
//!
//! * [`Task`] — validated task triples with facet-level and explicit
//!   constructors;
//! * [`canonicalize`] / [`is_canonical`] — the canonical form `T*`
//!   (Theorem 3.1) in which every output vertex remembers its input;
//! * [`library`] — consensus, 2-set agreement, majority consensus (Fig. 1),
//!   the hourglass (Fig. 2), the pinwheel (Fig. 8), loop agreement on stock
//!   surfaces, and trivial control tasks.
//!
//! # Example
//!
//! ```
//! use chromata_task::{canonicalize, is_canonical, library::hourglass};
//!
//! let t = hourglass();
//! assert!(!t.is_link_connected()); // the pinch vertex is a LAP
//! let c = canonicalize(&t);
//! assert!(is_canonical(&c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
pub mod library;
mod ops;
mod serde_impls;
mod task;

pub use canonical::{
    canonical_decision, canonical_preimage, canonicalize, is_canonical, project_canonical_simplex,
};
pub use ops::{
    facet_restriction, mutate_task, mutate_with, restricted_to_participants,
    two_process_restrictions, MutationKind, MUTATION_KINDS,
};
pub use task::{Task, TaskError};
