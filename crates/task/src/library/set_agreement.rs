//! 2-set agreement with fixed distinct inputs.
//!
//! chromata-lint: allow(P3): indices enumerate the generator's own fixed-size color/value tables; every site is advisory-flagged by P2 for per-site review

use chromata_topology::{Complex, Simplex, Value, Vertex};

use crate::task::Task;

/// 2-set agreement for three processes with fixed inputs `1, 2, 3`
/// (process `Pᵢ` starts with `i + 1`): every process decides the input of
/// a participant, and at most two distinct values are decided overall.
///
/// Wait-free unsolvable (Borowsky–Gafni / Herlihy–Shavit / Saks–Zaharoglou)
/// — but *not* because of local articulation points: its output complex is
/// link-connected and the obstruction is the colorless one (the annulus's
/// essential boundary loop). The pinwheel (Fig. 8) is obtained from this
/// task by removing output triangles.
///
/// # Examples
///
/// ```
/// use chromata_task::library::two_set_agreement;
///
/// let t = two_set_agreement();
/// assert_eq!(t.input().facet_count(), 1);
/// // 27 chromatic assignments minus 6 rainbow ones.
/// let sigma = t.input().facets().next().unwrap().clone();
/// assert_eq!(t.delta().image_of(&sigma).facet_count(), 21);
/// ```
#[must_use]
pub fn two_set_agreement() -> Task {
    let input = Complex::from_facets([input_facet()]);
    Task::from_delta_fn("2-set-agreement", input, |tau| set_agreement_images(tau, 2))
        .expect("2-set agreement is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

/// The fixed input facet `{(P0,1), (P1,2), (P2,3)}`.
pub(crate) fn input_facet() -> Simplex {
    Simplex::from_iter((0..3u8).map(|i| Vertex::of(i, i64::from(i) + 1)))
}

/// All decision simplices for participants `tau` with at most `k` distinct
/// decided values, each a participant's input.
pub(crate) fn set_agreement_images(tau: &Simplex, k: usize) -> Vec<Simplex> {
    let vals: Vec<i64> = tau
        .iter()
        .map(|u| u.value().as_int().expect("integer inputs")) // chromata-lint: allow(P1): the input complex built in this constructor carries only integer values
        .collect();
    let m = tau.len();
    let mut out = Vec::new();
    // Enumerate all assignments of participant values to participants.
    let mut idx = vec![0usize; m];
    loop {
        let decided: Vec<i64> = idx.iter().map(|&j| vals[j]).collect();
        let mut distinct = decided.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() <= k {
            out.push(Simplex::from_iter(
                tau.iter()
                    .zip(&decided)
                    .map(|(u, &d)| u.with_value(Value::Int(d))),
            ));
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == m {
                return out;
            }
            idx[i] += 1;
            if idx[i] < m {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facet_image_excludes_rainbow_triangles() {
        let t = two_set_agreement();
        let sigma = t.input().facets().next().unwrap().clone();
        let img = t.delta().image_of(&sigma);
        assert_eq!(img.facet_count(), 21);
        let rainbow = Simplex::from_iter([Vertex::of(0, 1), Vertex::of(1, 2), Vertex::of(2, 3)]);
        assert!(!img.contains(&rainbow));
        // ... but permuted rainbow assignments are also excluded.
        let permuted = Simplex::from_iter([Vertex::of(0, 2), Vertex::of(1, 3), Vertex::of(2, 1)]);
        assert!(!img.contains(&permuted));
    }

    #[test]
    fn edges_allow_all_pairs() {
        let t = two_set_agreement();
        let e = Simplex::from_iter([Vertex::of(0, 1), Vertex::of(1, 2)]);
        assert_eq!(t.delta().image_of(&e).facet_count(), 4);
    }

    #[test]
    fn solo_decides_own_input() {
        let t = two_set_agreement();
        for i in 0..3u8 {
            let x = Simplex::vertex(Vertex::of(i, i64::from(i) + 1));
            let img = t.delta().image_of(&x);
            assert_eq!(img.facet_count(), 1);
        }
    }

    #[test]
    fn output_is_link_connected() {
        // No local articulation points: the obstruction is colorless.
        let t = two_set_agreement();
        assert!(t.is_link_connected());
    }

    #[test]
    fn output_is_an_annulus() {
        // The ≤2-values subcomplex of the 3×3 chromatic triangle complex
        // deformation-retracts to a circle: b0 = 1, b1 = 1.
        let t = two_set_agreement();
        let h = chromata_algebra::homology(t.output());
        assert_eq!((h.betti0, h.betti1), (1, 1));
        assert!(h.torsion1.is_empty());
    }
}
