//! Adaptive `(2p − 1)`-renaming for three processes.

use chromata_topology::{Complex, Simplex, Value, Vertex};

use crate::task::Task;

/// Adaptive renaming: when `p` processes participate, they acquire
/// pairwise-distinct names from `{1, …, 2p − 1}` — a process running solo
/// must take name 1, two participants share `{1, 2, 3}`, three share
/// `{1, …, 5}`.
///
/// Renaming is the historical motivating *chromatic* task (Attiya et al.,
/// J.ACM '90; reference \[3\] of the paper): it cannot be stated colorlessly,
/// yet adaptive `(2p − 1)`-renaming is wait-free solvable — a positive
/// counterpart to the hourglass/pinwheel obstructions. The relation does
/// not depend on input values, so a single input facet captures the task.
///
/// # Examples
///
/// ```
/// use chromata_task::library::adaptive_renaming;
///
/// let t = adaptive_renaming();
/// let solo = t.input().simplices_of_dim(0).next().unwrap().clone();
/// assert_eq!(t.delta().image_of(&solo).facet_count(), 1); // name 1 forced
/// ```
#[must_use]
pub fn adaptive_renaming() -> Task {
    let facet = Simplex::from_iter((0..3).map(|i| Vertex::of(i, i64::from(i))));
    let input = Complex::from_facets([facet]);
    Task::from_delta_fn("adaptive-renaming", input, |tau| {
        let p = tau.len();
        let names: Vec<i64> = (1..=(2 * p as i64 - 1)).collect();
        // All injective assignments of names to the participants.
        let mut out = Vec::new();
        let mut assignment = Vec::with_capacity(p);
        injective_assignments(&names, p, &mut assignment, &mut |a| {
            out.push(Simplex::from_iter(
                tau.iter()
                    .zip(a)
                    .map(|(u, &name)| u.with_value(Value::Int(name))),
            ));
        });
        out
    })
    .expect("adaptive renaming is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

/// Non-adaptive `m`-renaming on a single input facet: all participants
/// (however many) draw distinct names from `{1, …, m}`.
///
/// As a finite *task* this is wait-free solvable for every `m ≥ 3`:
/// task solvability lets algorithms use process identifiers, so "process
/// `i` takes name `i + 1`" already works. The celebrated renaming lower
/// bounds (`2n − 1` in general, `2n − 2` exactly when `n` is not a prime
/// power) constrain *symmetric / comparison-based* algorithms over
/// unbounded name spaces — a restriction outside the task formalism, as
/// the pipeline's `Solvable` verdicts on `m = 3, 4` make tangible.
///
/// # Panics
///
/// Panics if `m < 3` (no injective naming exists).
#[must_use]
pub fn renaming(m: i64) -> Task {
    assert!(m >= 3, "three processes need at least three names");
    let facet = Simplex::from_iter((0..3).map(|i| Vertex::of(i, i64::from(i))));
    let input = Complex::from_facets([facet]);
    Task::from_delta_fn(format!("renaming-{m}"), input, move |tau| {
        let names: Vec<i64> = (1..=m).collect();
        let mut out = Vec::new();
        let mut assignment = Vec::with_capacity(tau.len());
        injective_assignments(&names, tau.len(), &mut assignment, &mut |a| {
            out.push(Simplex::from_iter(
                tau.iter()
                    .zip(a)
                    .map(|(u, &name)| u.with_value(Value::Int(name))),
            ));
        });
        out
    })
    .expect("renaming is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

fn injective_assignments(
    names: &[i64],
    p: usize,
    acc: &mut Vec<i64>,
    emit: &mut impl FnMut(&[i64]),
) {
    if acc.len() == p {
        emit(acc);
        return;
    }
    for &n in names {
        if !acc.contains(&n) {
            acc.push(n);
            injective_assignments(names, p, acc, emit);
            acc.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_shapes() {
        let t = adaptive_renaming();
        let sigma = t.input().facets().next().unwrap().clone();
        // 5·4·3 injective triples.
        assert_eq!(t.delta().image_of(&sigma).facet_count(), 60);
        let edge = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1)]);
        // 3·2 injective pairs from {1,2,3}.
        assert_eq!(t.delta().image_of(&edge).facet_count(), 6);
    }

    #[test]
    fn adaptive_solo_forced_to_one() {
        let t = adaptive_renaming();
        for i in 0..3u8 {
            let x = Simplex::vertex(Vertex::of(i, i64::from(i)));
            let img = t.delta().image_of(&x);
            assert_eq!(img.facet_count(), 1);
            assert!(img.contains_vertex(&Vertex::of(i, 1)));
        }
    }

    #[test]
    fn output_names_always_distinct() {
        let t = adaptive_renaming();
        let sigma = t.input().facets().next().unwrap().clone();
        for f in t.delta().image_of(&sigma).facets() {
            let mut names: Vec<i64> = f.iter().map(|v| v.value().as_int().unwrap()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), 3, "duplicate names in {f}");
        }
    }

    #[test]
    fn adaptive_is_link_connected() {
        // No articulation points: the solvable side of the dichotomy.
        assert!(adaptive_renaming().is_link_connected());
    }

    #[test]
    fn non_adaptive_shapes() {
        let five = renaming(5);
        let sigma = five.input().facets().next().unwrap().clone();
        assert_eq!(five.delta().image_of(&sigma).facet_count(), 60);
        let four = renaming(4);
        assert_eq!(four.delta().image_of(&sigma).facet_count(), 24);
        // Non-adaptive solo may take any of the m names.
        let x = Simplex::vertex(Vertex::of(0, 0));
        assert_eq!(four.delta().image_of(&x).facet_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least three names")]
    fn too_few_names_rejected() {
        let _ = renaming(2);
    }
}
