//! Trivially solvable control tasks.

use chromata_topology::{Complex, Simplex, Value, Vertex};

use crate::task::Task;

/// The identity task for `n` processes on a single input facet: every
/// process outputs its own input. Solvable without communication.
///
/// # Examples
///
/// ```
/// use chromata_task::library::identity_task;
///
/// let t = identity_task(3);
/// assert_eq!(t.output(), t.input());
/// ```
#[must_use]
pub fn identity_task(n: usize) -> Task {
    let facet = Simplex::from_iter((0..n).map(|i| Vertex::of(i as u8, i64::from(i as u8))));
    let input = Complex::from_facets([facet]);
    Task::from_delta_fn(format!("identity-{n}"), input, |tau| vec![tau.clone()])
        .expect("identity is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

/// The constant task for `n` processes: everyone outputs 0 regardless of
/// participation. Solvable without communication.
#[must_use]
pub fn constant_task(n: usize) -> Task {
    let facet = Simplex::from_iter((0..n).map(|i| Vertex::of(i as u8, i64::from(i as u8))));
    let input = Complex::from_facets([facet]);
    Task::from_delta_fn(format!("constant-{n}"), input, |tau| {
        vec![Simplex::from_iter(
            tau.iter().map(|u| u.with_value(Value::Int(0))),
        )]
    })
    .expect("constant is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_link_connected() {
        let t = identity_task(3);
        assert!(t.is_link_connected());
        assert_eq!(t.input().facet_count(), 1);
    }

    #[test]
    fn constant_output_is_single_facet() {
        let t = constant_task(3);
        assert_eq!(t.output().facet_count(), 1);
        assert_eq!(t.output().vertex_count(), 3);
        assert!(t.is_link_connected());
    }

    #[test]
    fn two_process_variants() {
        assert_eq!(identity_task(2).process_count(), 2);
        assert_eq!(constant_task(2).process_count(), 2);
    }
}
