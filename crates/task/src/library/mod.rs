//! Library of concrete tasks from the paper and the classical literature.
//!
//! * [`consensus`] — binary consensus (FLP; unsolvable for any `n ≥ 2`);
//! * [`two_set_agreement`] — 2-set agreement with fixed distinct inputs
//!   (unsolvable for 3 processes; the pinwheel's ambient task);
//! * [`majority_consensus`] — Fig. 1 (chromatic obstruction);
//! * [`hourglass`] — Fig. 2 / §6.1 (the motivating counterexample);
//! * [`pinwheel`] — Fig. 8 / §6.2;
//! * [`loop_agreement`] — §1.3, with stock complexes ([`sphere_complex`],
//!   [`torus_complex`], [`projective_plane_complex`], [`disk_complex`]);
//! * [`adaptive_renaming`] / [`renaming`] — the historical chromatic task
//!   (solvable at 2p−1 names);
//! * [`leader_election`] — test-and-set as a task (unsolvable from
//!   registers);
//! * [`approximate_agreement`] — the classic solvable relaxation;
//! * [`grid_surface`] / [`klein_bottle_doubled_loop`] — grid-quotient
//!   surfaces whose loop agreement exercises the undecidable residue;
//! * [`identity_task`], [`constant_task`] — trivially solvable controls;
//! * [`simple_example_task`] — Fig. 3's running example.

mod approximate;
mod consensus;
mod hourglass;
mod leader;
mod loop_agreement;
mod majority;
mod pinwheel;
mod renaming;
mod set_agreement;
mod simple;
mod surfaces;
mod trivial;

pub use approximate::approximate_agreement;
pub use consensus::{consensus, multi_valued_consensus, two_process_consensus};
pub use hourglass::hourglass;
pub use leader::{leader_election, two_process_leader_election};
pub use loop_agreement::{
    disk_complex, loop_agreement, projective_plane_complex, sphere_complex, torus_complex, LoopSpec,
};
pub use majority::majority_consensus;
pub use pinwheel::pinwheel;
pub use renaming::{adaptive_renaming, renaming};
pub use set_agreement::two_set_agreement;
pub use simple::simple_example_task;
pub use surfaces::{grid_surface, grid_torus, klein_bottle_doubled_loop, klein_bottle_single_loop};
pub use trivial::{constant_task, identity_task};
