//! Programmatic surface triangulations: grid quotients.
//!
//! Builds triangulated tori and Klein bottles as quotients of an `m × n`
//! grid, for loop agreement tasks whose fundamental groups exercise every
//! tier of the contractibility machinery — including the honest `Unknown`
//! verdict on the Klein bottle, where the doubled orientation-reversing
//! loop is trivial in H₁ yet non-trivial in the (non-abelian, infinite)
//! fundamental group: exactly the undecidable residue of §7.
//!
//! chromata-lint: allow(P3): surface triangulation tables are generated with fixed arity before any index is taken; every site is advisory-flagged by P2 for per-site review

use chromata_topology::{Color, Complex, Simplex, Value, Vertex};

use crate::library::loop_agreement::LoopSpec;

fn grid_vertex(m: i64, n: i64, x: i64, y: i64, flip: bool) -> Vertex {
    // Normalize through the identifications: (x mod m with optional flip
    // of y), y mod n.
    let mut x = x;
    let mut y = y.rem_euclid(n);
    while x >= m {
        x -= m;
        if flip {
            y = (n - y).rem_euclid(n);
        }
    }
    while x < 0 {
        x += m;
        if flip {
            y = (n - y).rem_euclid(n);
        }
    }
    Vertex::new(Color::new(0), Value::Int(x * 1000 + y))
}

/// A triangulated grid quotient: the torus (`flip = false`) or the Klein
/// bottle (`flip = true`), with `m × n` squares split into two triangles
/// each.
///
/// # Panics
///
/// Panics if the grid is too small to give a simplicial quotient
/// (`m < 3 || n < 3`).
#[must_use]
pub fn grid_surface(m: i64, n: i64, flip: bool) -> Complex {
    assert!(
        m >= 3 && n >= 3,
        "grids below 3×3 do not quotient simplicially"
    );
    let v = |x: i64, y: i64| grid_vertex(m, n, x, y, flip);
    let mut k = Complex::new();
    for x in 0..m {
        for y in 0..n {
            k.add_simplex(Simplex::from_iter([v(x, y), v(x + 1, y), v(x + 1, y + 1)]));
            k.add_simplex(Simplex::from_iter([v(x, y), v(x, y + 1), v(x + 1, y + 1)]));
        }
    }
    k
}

/// Loop agreement on a `4 × 4` Klein bottle with the *doubled*
/// orientation-reversing loop: the loop is null-homologous
/// (`2a = 0` in `H₁ = ℤ ⊕ ℤ/2`) but not null-homotopic
/// (`a² ≠ 1` in `π₁ = ⟨a, b | abab⁻¹⟩`).
///
/// The task is genuinely unsolvable, but no tier of the pipeline can
/// certify it: the H₁ system is feasible, the group is neither trivial,
/// free, evidently abelian, nor finite — the pipeline answers `Unknown`,
/// the honest outcome for the undecidable residue (§7).
#[must_use]
pub fn klein_bottle_doubled_loop() -> LoopSpec {
    let (m, n) = (4i64, 4);
    let complex = grid_surface(m, n, true);
    let val = |x: i64, y: i64| grid_vertex(m, n, x, y, true).into_value();
    // The vertical loop a at x = 0 is the H₁ torsion generator (the
    // horizontal loop, which crosses the flipped identification, is the
    // free generator); a² walks it twice. Distinguished vertices split
    // the doubled walk into three segments.
    let a_twice: Vec<Value> = (0..=2 * n).map(|y| val(0, y)).collect();
    let d0 = 0usize;
    let d1 = 3usize;
    let d2 = 6usize;
    LoopSpec {
        complex,
        paths: [a_twice[d0..=d1].to_vec(), a_twice[d1..=d2].to_vec(), {
            let mut rest = a_twice[d2..].to_vec();
            rest.push(val(0, 0));
            rest.dedup();
            rest
        }],
    }
}

/// Loop agreement on the same Klein bottle with the loop traversed
/// *once*: the class is the H₁ torsion generator, so the torsion tier
/// certifies unsolvability exactly.
#[must_use]
pub fn klein_bottle_single_loop() -> LoopSpec {
    let (m, n) = (4i64, 4);
    let complex = grid_surface(m, n, true);
    let val = |x: i64, y: i64| grid_vertex(m, n, x, y, true).into_value();
    let a_once: Vec<Value> = (0..=n).map(|y| val(0, y)).collect();
    LoopSpec {
        complex,
        paths: [a_once[0..=1].to_vec(), a_once[1..=2].to_vec(), {
            let mut rest = a_once[2..].to_vec();
            rest.dedup();
            rest
        }],
    }
}

/// A larger torus than the 7-vertex minimal one, built as a `4 × 4` grid
/// quotient — for scaling benchmarks and as a cross-check that grid and
/// minimal triangulations agree on homology.
#[must_use]
pub fn grid_torus() -> Complex {
    grid_surface(4, 4, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_algebra::{homology, loop_contractible, Triviality};

    #[test]
    fn grid_torus_homology() {
        let t = grid_torus();
        assert_eq!(t.vertex_count(), 16);
        assert_eq!(t.simplices_of_dim(2).count(), 32);
        let h = homology(&t);
        assert_eq!((h.betti0, h.betti1, h.betti2), (1, 2, 1));
        assert!(h.torsion1.is_empty());
    }

    #[test]
    fn klein_bottle_homology() {
        let k = grid_surface(4, 4, true);
        assert_eq!(k.vertex_count(), 16);
        let h = homology(&k);
        assert_eq!((h.betti0, h.betti1), (1, 1), "H1 = Z ⊕ Z/2");
        assert_eq!(h.torsion1, vec![2]);
        assert_eq!(h.betti2, 0, "non-orientable: no fundamental class");
    }

    #[test]
    fn doubled_loop_is_null_homologous_but_not_contractible() {
        let spec = klein_bottle_doubled_loop();
        spec.validate();
        let cc = chromata_algebra::ChainComplex::new(&spec.complex);
        let walk: Vec<Vertex> = spec
            .loop_walk()
            .iter()
            .map(|v| Vertex::new(Color::new(0), v.clone()))
            .collect();
        let z = cc.walk_to_chain(&walk).expect("edge walk");
        assert!(cc.is_cycle(&z));
        assert!(cc.is_boundary(&z), "2a = 0 in H1");
        // The word problem cannot certify either way here (a² ≠ 1 in the
        // infinite non-abelian π1, but no tier proves it).
        assert_eq!(
            loop_contractible(&spec.complex, &walk),
            Some(Triviality::Unknown)
        );
    }

    #[test]
    fn single_loop_is_torsion() {
        let spec = klein_bottle_single_loop();
        spec.validate();
        let cc = chromata_algebra::ChainComplex::new(&spec.complex);
        let walk: Vec<Vertex> = spec
            .loop_walk()
            .iter()
            .map(|v| Vertex::new(Color::new(0), v.clone()))
            .collect();
        let z = cc.walk_to_chain(&walk).expect("edge walk");
        assert!(cc.is_cycle(&z));
        assert!(
            !cc.is_boundary(&z),
            "the torsion generator is not a boundary"
        );
        assert_eq!(
            loop_contractible(&spec.complex, &walk),
            Some(Triviality::Nontrivial)
        );
    }

    #[test]
    fn triangles_are_simplicial() {
        for flip in [false, true] {
            let k = grid_surface(4, 4, flip);
            for t in k.simplices_of_dim(2) {
                assert_eq!(t.len(), 3, "degenerate triangle {t}");
            }
            assert_eq!(k.simplices_of_dim(2).count(), 32);
            // Closed surface: every edge in exactly two triangles.
            for e in k.simplices_of_dim(1) {
                let cofaces = k.simplices_of_dim(2).filter(|t| e.is_face_of(t)).count();
                assert_eq!(cofaces, 2, "edge {e} has {cofaces} cofaces");
            }
        }
    }

    #[test]
    #[should_panic(expected = "3×3")]
    fn tiny_grids_rejected() {
        let _ = grid_surface(2, 3, false);
    }
}
