//! Loop agreement tasks (paper, §1.3).
//!
//! A loop agreement task is specified by a 2-dimensional (colorless)
//! complex `K` and a loop through three distinguished vertices. Solo
//! processes decide their distinguished vertex; two participants decide on
//! a common edge (or vertex) along the loop segment joining their
//! distinguished vertices; three participants may decide any simplex of
//! `K`. Loop agreement is solvable iff the loop is contractible in `|K|` —
//! the undecidable residue of the paper's characterization (§7).
//!
//! chromata-lint: allow(P3): indices address generator-built vertex/edge tables whose lengths are fixed by the construction arity; every site is advisory-flagged by P2 for per-site review

use chromata_topology::{Color, Complex, Simplex, Value, Vertex};

use crate::task::Task;

/// A loop in a colorless complex: three path segments
/// `p01 : d0 → d1`, `p12 : d1 → d2`, `p20 : d2 → d0`, each a walk along
/// edges of the complex.
#[derive(Clone, Debug)]
pub struct LoopSpec {
    /// The ambient colorless complex (vertex colors are ignored; stock
    /// complexes use color 0 everywhere).
    pub complex: Complex,
    /// The three path segments; `paths[i]` runs from distinguished vertex
    /// `d_i` to `d_{(i+1) mod 3}`.
    pub paths: [Vec<Value>; 3],
}

impl LoopSpec {
    /// The distinguished vertex values `d0, d1, d2`.
    ///
    /// # Panics
    ///
    /// Panics if a path is empty.
    #[must_use]
    pub fn distinguished(&self) -> [Value; 3] {
        [
            self.paths[0].first().expect("non-empty path").clone(), // chromata-lint: allow(P1): documented # Panics contract: paths must be non-empty
            self.paths[1].first().expect("non-empty path").clone(), // chromata-lint: allow(P1): documented # Panics contract: paths must be non-empty
            self.paths[2].first().expect("non-empty path").clone(), // chromata-lint: allow(P1): documented # Panics contract: paths must be non-empty
        ]
    }

    /// The full loop walk `d0 … d1 … d2 … d0` as a vertex-value sequence.
    #[must_use]
    pub fn loop_walk(&self) -> Vec<Value> {
        let mut walk = self.paths[0].clone();
        walk.extend(self.paths[1].iter().skip(1).cloned());
        walk.extend(self.paths[2].iter().skip(1).cloned());
        walk
    }

    /// Validates that consecutive path values are edges (or equal), that
    /// the segments chain up (`end(p_i) = start(p_{i+1})`), and that the
    /// loop closes.
    ///
    /// # Panics
    ///
    /// Panics on an invalid specification (these are programmer errors in
    /// stock task definitions).
    pub fn validate(&self) {
        for i in 0..3 {
            let p = &self.paths[i];
            assert!(!p.is_empty(), "path {i} is empty");
            for w in p.windows(2) {
                if w[0] == w[1] {
                    continue;
                }
                let e = Simplex::from_iter([raw(&w[0]), raw(&w[1])]);
                assert!(self.complex.contains(&e), "path {i} uses a non-edge {e}");
            }
            let next = &self.paths[(i + 1) % 3];
            assert_eq!(
                p.last(),
                next.first(),
                "segment {i} does not chain into the next"
            );
        }
    }
}

fn raw(v: &Value) -> Vertex {
    Vertex::new(Color::new(0), v.clone())
}

fn colored(c: u8, v: &Value) -> Vertex {
    Vertex::new(Color::new(c), v.clone())
}

/// Builds the three-process loop agreement task for `spec`.
///
/// # Panics
///
/// Panics if the loop specification is invalid.
///
/// # Examples
///
/// ```
/// use chromata_task::library::{loop_agreement, sphere_complex};
///
/// let t = loop_agreement("sphere-loop", sphere_complex());
/// assert_eq!(t.input().facet_count(), 1);
/// ```
#[must_use]
pub fn loop_agreement(name: &str, spec: LoopSpec) -> Task {
    spec.validate();
    let d = spec.distinguished();
    let input = Complex::from_facets([Simplex::from_iter(
        (0..3u8).map(|i| Vertex::of(i, i64::from(i))),
    )]);
    let k = spec.complex.clone();
    let paths = spec.paths.clone();
    Task::from_delta_fn(name, input, move |tau| {
        let colors: Vec<u8> = tau.iter().map(|u| u.color().index()).collect();
        match colors.as_slice() {
            [i] => vec![Simplex::vertex(colored(*i, &d[*i as usize]))],
            [i, j] => {
                // Path segment joining d_i to d_j: segment i when j = i+1
                // (mod 3), traversed forward; the pair (0, 2) uses segment
                // 2 (d2 → d0).
                let seg = match (i, j) {
                    (0, 1) => &paths[0],
                    (1, 2) => &paths[1],
                    (0, 2) => &paths[2],
                    other => unreachable!("unexpected color pair {other:?}"), // chromata-lint: allow(P1): delta is evaluated only on simplices of the 3-process input complex built above
                };
                let mut out = Vec::new();
                for w in seg.windows(2) {
                    if w[0] == w[1] {
                        continue;
                    }
                    // Both orientations: either process may take either
                    // endpoint of the edge.
                    out.push(Simplex::from_iter([colored(*i, &w[0]), colored(*j, &w[1])]));
                    out.push(Simplex::from_iter([colored(*i, &w[1]), colored(*j, &w[0])]));
                }
                // Same-vertex decisions along the segment.
                for v in seg {
                    out.push(Simplex::from_iter([colored(*i, v), colored(*j, v)]));
                }
                out
            }
            [0, 1, 2] => {
                // Any simplex of K: all chromatic triangles whose value
                // set is a simplex of K.
                let mut out = Vec::new();
                let verts: Vec<Value> = k.vertices().map(|u| u.value().clone()).collect();
                for a in &verts {
                    for b in &verts {
                        for c in &verts {
                            let set = Simplex::from_iter([raw(a), raw(b), raw(c)]);
                            if k.contains(&set) {
                                out.push(Simplex::from_iter([
                                    colored(0, a),
                                    colored(1, b),
                                    colored(2, c),
                                ]));
                            }
                        }
                    }
                }
                out
            }
            other => unreachable!("unexpected color set {other:?}"), // chromata-lint: allow(P1): delta is evaluated only on simplices of the 3-process input complex built above
        }
    })
    .expect("loop agreement is a valid task") // chromata-lint: allow(P1): loop-agreement construction yields a valid task for every validated LoopSpec
}

/// The boundary of a tetrahedron (a 2-sphere), vertices `1..=4`, with the
/// loop `1 → 2 → 3 → 1` (contractible: loop agreement is solvable).
#[must_use]
pub fn sphere_complex() -> LoopSpec {
    let mut k = Complex::new();
    for skip in 1..=4i64 {
        k.add_simplex(Simplex::from_iter(
            (1..=4i64)
                .filter(|&x| x != skip)
                .map(|x| raw(&Value::Int(x))),
        ));
    }
    LoopSpec {
        complex: k,
        paths: [
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(2), Value::Int(3)],
            vec![Value::Int(3), Value::Int(1)],
        ],
    }
}

/// A single filled triangle (a disk), vertices `1..=3`, boundary loop.
/// Trivially contractible.
#[must_use]
pub fn disk_complex() -> LoopSpec {
    let k = Complex::from_facets([Simplex::from_iter((1..=3i64).map(|x| raw(&Value::Int(x))))]);
    LoopSpec {
        complex: k,
        paths: [
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(2), Value::Int(3)],
            vec![Value::Int(3), Value::Int(1)],
        ],
    }
}

/// The 7-vertex (Möbius–Kantor/Császár) triangulation of the torus:
/// vertices `0..=6`, faces `{i, i+1, i+3}` and `{i, i+2, i+3}` (mod 7).
/// The default loop `0 → 1 → 2 → 0` is *essential* (class `(1, ·)` in
/// `H₁ = ℤ²`), so the loop agreement task is unsolvable.
#[must_use]
pub fn torus_complex() -> LoopSpec {
    let mut k = Complex::new();
    for i in 0..7i64 {
        for (a, b) in [(1, 3), (2, 3)] {
            k.add_simplex(Simplex::from_iter([
                raw(&Value::Int(i)),
                raw(&Value::Int((i + a) % 7)),
                raw(&Value::Int((i + b) % 7)),
            ]));
        }
    }
    LoopSpec {
        complex: k,
        paths: [
            vec![Value::Int(0), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(2), Value::Int(0)],
        ],
    }
}

/// Kühnel's 6-vertex triangulation of the projective plane (vertices
/// `1..=6`). The default loop `1 → 2 → 5 → 1` is not the boundary of a
/// face and is essential (`H₁ = ℤ/2`): loop agreement on it is
/// unsolvable, detected through the torsion obstruction.
#[must_use]
pub fn projective_plane_complex() -> LoopSpec {
    let faces = [
        [1, 2, 3],
        [1, 2, 4],
        [1, 3, 5],
        [1, 4, 6],
        [1, 5, 6],
        [2, 3, 6],
        [2, 4, 5],
        [2, 5, 6],
        [3, 4, 5],
        [3, 4, 6],
    ];
    let mut k = Complex::new();
    for f in faces {
        k.add_simplex(Simplex::from_iter(f.iter().map(|&x| raw(&Value::Int(x)))));
    }
    LoopSpec {
        complex: k,
        paths: [
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(2), Value::Int(5)],
            vec![Value::Int(5), Value::Int(1)],
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_algebra::{homology, ChainComplex};

    #[test]
    fn stock_complex_homology() {
        let s = homology(&sphere_complex().complex);
        assert_eq!((s.betti0, s.betti1, s.betti2), (1, 0, 1));
        let t = homology(&torus_complex().complex);
        assert_eq!((t.betti0, t.betti1, t.betti2), (1, 2, 1));
        let p = homology(&projective_plane_complex().complex);
        assert_eq!((p.betti0, p.betti1), (1, 0));
        assert_eq!(p.torsion1, vec![2]);
    }

    #[test]
    fn default_loops_have_expected_homology_classes() {
        for (spec, essential) in [
            (sphere_complex(), false),
            (disk_complex(), false),
            (torus_complex(), true),
        ] {
            let cc = ChainComplex::new(&spec.complex);
            let walk: Vec<Vertex> = spec.loop_walk().iter().map(raw).collect();
            let z = cc.walk_to_chain(&walk).expect("loop along edges");
            assert!(cc.is_cycle(&z));
            assert_eq!(!cc.is_boundary(&z), essential, "spec mismatch");
        }
        // RP²: the essential loop is 2-torsion — its double is a boundary
        // but the loop itself is not.
        let spec = projective_plane_complex();
        let cc = ChainComplex::new(&spec.complex);
        let walk: Vec<Vertex> = spec.loop_walk().iter().map(raw).collect();
        let z = cc.walk_to_chain(&walk).unwrap();
        assert!(!cc.is_boundary(&z));
        let double: Vec<i64> = z.iter().map(|x| 2 * x).collect();
        assert!(cc.is_boundary(&double));
    }

    #[test]
    fn task_construction_valid() {
        for (name, spec) in [
            ("sphere", sphere_complex()),
            ("disk", disk_complex()),
            ("torus", torus_complex()),
            ("rp2", projective_plane_complex()),
        ] {
            let t = loop_agreement(name, spec);
            assert_eq!(t.process_count(), 3);
            assert_eq!(t.input().facet_count(), 1);
        }
    }

    #[test]
    fn solo_decides_distinguished_vertex() {
        let t = loop_agreement("sphere", sphere_complex());
        let img = t.delta().image_of(&Simplex::vertex(Vertex::of(0, 0)));
        assert!(img.contains_vertex(&colored(0, &Value::Int(1))));
        assert_eq!(img.facet_count(), 1);
    }

    #[test]
    fn pair_decisions_live_on_the_segment() {
        let t = loop_agreement("torus", torus_complex());
        let e = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1)]);
        let img = t.delta().image_of(&e);
        // Segment 0 → 1 (one edge): both orientations + two same-vertex
        // decisions = 4 facets.
        assert_eq!(img.facet_count(), 4);
    }

    #[test]
    fn triple_decisions_cover_all_complex_simplices() {
        let t = loop_agreement("disk", disk_complex());
        let sigma = t.input().facets().next().unwrap().clone();
        // 27 assignments; K = full triangle so all sets are simplices.
        assert_eq!(t.delta().image_of(&sigma).facet_count(), 27);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn invalid_path_rejected() {
        let mut spec = disk_complex();
        spec.paths[0] = vec![Value::Int(1), Value::Int(99)];
        spec.validate();
    }
}
