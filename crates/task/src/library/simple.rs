//! The running-example task of Figure 3.

use chromata_topology::{Complex, Simplex, Vertex};

use crate::task::Task;

/// A small two-facet task in the shape of Figure 3: the input complex has
/// two triangles sharing an edge, and one output facet (the "green" one)
/// lies in the image of *both* input facets — so the task is not
/// canonical, and Figure 4's canonicalization separates the copies.
///
/// # Examples
///
/// ```
/// use chromata_task::{is_canonical, library::simple_example_task};
///
/// let t = simple_example_task();
/// assert!(!is_canonical(&t));
/// ```
#[must_use]
pub fn simple_example_task() -> Task {
    // Input: triangles σ = {a0, b, c} and σ' = {a1, b, c} sharing {b, c}.
    let a0 = Vertex::of(0, 0);
    let a1 = Vertex::of(0, 1);
    let b = Vertex::of(1, 0);
    let c = Vertex::of(2, 0);
    let sigma = Simplex::from_iter([a0, b.clone(), c.clone()]);
    let sigma2 = Simplex::from_iter([a1, b, c]);
    let input = Complex::from_facets([sigma.clone(), sigma2]);

    // Outputs: the shared "green" facet g and a private facet h for σ'.
    let g = Simplex::from_iter([Vertex::of(0, 10), Vertex::of(1, 10), Vertex::of(2, 10)]);
    let h = Simplex::from_iter([Vertex::of(0, 11), Vertex::of(1, 11), Vertex::of(2, 11)]);

    Task::from_facet_delta("fig3-example", input, move |s| {
        if *s == sigma {
            vec![g.clone()]
        } else {
            vec![g.clone(), h.clone()]
        }
    })
    .expect("the Fig. 3 example is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{canonicalize, is_canonical};

    #[test]
    fn shares_a_facet_between_images() {
        let t = simple_example_task();
        let facets: Vec<Simplex> = t.input().facets().cloned().collect();
        let img0 = t.delta().image_of(&facets[0]);
        let img1 = t.delta().image_of(&facets[1]);
        assert!(img0.facets().any(|f| img1.contains(f)));
        assert!(!is_canonical(&t));
    }

    #[test]
    fn canonical_form_matches_figure4() {
        let t = simple_example_task();
        let c = canonicalize(&t);
        assert!(is_canonical(&c));
        // g appears once per input facet; h once: 3 facets.
        assert_eq!(c.output().facet_count(), 3);
    }
}
