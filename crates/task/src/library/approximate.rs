//! Discrete approximate agreement.

use chromata_topology::{Complex, Simplex, Value, Vertex};

use crate::task::Task;

/// Discrete approximate agreement with binary inputs on a resolution-`k`
/// grid: processes start with 0 or 1 and decide grid values in
/// `{0, 1, …, k}` (representing `j/k`) that (a) pairwise differ by at
/// most one grid step and (b) lie within the interval spanned by the
/// participants' inputs (scaled: input `b` is grid value `b·k`).
///
/// Wait-free solvable for every `k ≥ 1` — the classic positive result
/// that survives the FLP-style impossibilities; its output complexes are
/// subdivided strips, so the pipeline certifies solvability through the
/// simply-connected tier. With `k = 1` the task degenerates into a
/// solvable relaxation of consensus where mixed outputs `{0, 1}` are
/// allowed.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// use chromata_task::library::approximate_agreement;
///
/// let t = approximate_agreement(3);
/// assert_eq!(t.input().facet_count(), 8);
/// assert!(t.is_link_connected());
/// ```
#[must_use]
pub fn approximate_agreement(k: i64) -> Task {
    assert!(k >= 1, "resolution must be positive");
    let mut input = Complex::new();
    for mask in 0..8u32 {
        input.add_simplex(Simplex::from_iter(
            (0..3).map(|i| Vertex::of(i, i64::from(mask >> i & 1))),
        ));
    }
    Task::from_facet_delta(format!("approx-agreement-{k}"), input, move |sigma| {
        let inputs: Vec<i64> = sigma
            .iter()
            .map(|u| u.value().as_int().expect("binary inputs") * k) // chromata-lint: allow(P1): the input complex built in this constructor carries only integer values
            .collect();
        let lo = *inputs.iter().min().expect("non-empty"); // chromata-lint: allow(P1): simplices are non-empty by type invariant
        let hi = *inputs.iter().max().expect("non-empty"); // chromata-lint: allow(P1): simplices are non-empty by type invariant
                                                           // All assignments within [lo, hi], pairwise within one grid step:
                                                           // values drawn from {base, base+1} for each base.
        let mut out = Vec::new();
        for base in lo..=hi {
            let top = (base + 1).min(hi);
            // Each process picks base or top.
            for mask in 0..(1u32 << sigma.len()) {
                let facet = Simplex::from_iter(sigma.iter().enumerate().map(|(j, u)| {
                    let v = if mask >> j & 1 == 0 { base } else { top };
                    u.with_value(Value::Int(v))
                }));
                out.push(facet);
            }
        }
        out
    })
    .expect("approximate agreement is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_inputs_pin_outputs() {
        let t = approximate_agreement(3);
        for b in 0..2i64 {
            let sigma = Simplex::from_iter((0..3).map(|i| Vertex::of(i, b)));
            let img = t.delta().image_of(&sigma);
            assert_eq!(img.facet_count(), 1, "all must decide {b}·k");
            assert!(img.contains_vertex(&Vertex::of(0, b * 3)));
        }
    }

    #[test]
    fn mixed_inputs_span_the_strip() {
        let t = approximate_agreement(3);
        let sigma = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 0)]);
        let img = t.delta().image_of(&sigma);
        // Values range over the whole grid.
        assert!(img.contains_vertex(&Vertex::of(0, 0)));
        assert!(img.contains_vertex(&Vertex::of(0, 3)));
        // Spread > 1 is forbidden.
        for f in img.facets() {
            let vals: Vec<i64> = f.iter().map(|v| v.value().as_int().unwrap()).collect();
            let lo = vals.iter().min().unwrap();
            let hi = vals.iter().max().unwrap();
            assert!(hi - lo <= 1, "spread violated: {f}");
        }
    }

    #[test]
    fn strip_is_link_connected_and_contractible() {
        let t = approximate_agreement(2);
        assert!(t.is_link_connected());
        let sigma = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 1)]);
        let h = chromata_algebra::homology(t.delta().image_of(&sigma));
        assert_eq!((h.betti0, h.betti1), (1, 0), "strips are contractible");
    }

    #[test]
    fn solo_outputs_own_scaled_input() {
        let t = approximate_agreement(2);
        let x = Simplex::vertex(Vertex::of(1, 1));
        let img = t.delta().image_of(&x);
        assert_eq!(img.facet_count(), 1);
        assert!(img.contains_vertex(&Vertex::of(1, 2)));
    }

    #[test]
    fn validity_interval_respected() {
        // With all inputs 1, value 0 must not appear anywhere.
        let t = approximate_agreement(4);
        let sigma = Simplex::from_iter((0..3).map(|i| Vertex::of(i, 1)));
        let img = t.delta().image_of(&sigma);
        assert!(!img.contains_vertex(&Vertex::of(0, 0)));
    }
}
