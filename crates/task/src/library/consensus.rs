//! Binary consensus.
//!
//! chromata-lint: allow(P3): indices enumerate the generator's own fixed-size color/value tables; every site is advisory-flagged by P2 for per-site review

use chromata_topology::{Complex, Simplex, Value, Vertex};

use crate::task::Task;

/// Binary consensus for `n` processes: every process starts with 0 or 1;
/// all participants must decide the same value, which must be the input of
/// a participant. Wait-free unsolvable for every `n ≥ 2` (FLP).
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds the supported color range.
///
/// # Examples
///
/// ```
/// use chromata_task::library::consensus;
///
/// let t = consensus(3);
/// assert_eq!(t.input().facet_count(), 8); // all binary input assignments
/// ```
#[must_use]
pub fn consensus(n: usize) -> Task {
    assert!(n >= 1, "consensus needs at least one process");
    let input = binary_input_complex(n);
    Task::from_facet_delta(format!("consensus-{n}"), input, |sigma| {
        let vals: Vec<i64> = sigma
            .iter()
            .map(|u| u.value().as_int().expect("binary inputs")) // chromata-lint: allow(P1): the input complex built in this constructor carries only integer values
            .collect();
        let mut out = Vec::new();
        for d in [0i64, 1] {
            if vals.contains(&d) {
                out.push(Simplex::from_iter(
                    sigma.iter().map(|u| u.with_value(Value::Int(d))),
                ));
            }
        }
        out
    })
    .expect("consensus is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

/// Two-process binary consensus (used by the Proposition 5.4 decider
/// tests).
#[must_use]
pub fn two_process_consensus() -> Task {
    consensus(2)
}

/// Three-process consensus over `v ≥ 2` input values: the input complex
/// has `v³` facets. Used by the input-scaling benchmarks; unsolvable for
/// every `v` (consensus is consensus).
///
/// # Panics
///
/// Panics if `v < 2`.
#[must_use]
pub fn multi_valued_consensus(v: i64) -> Task {
    assert!(v >= 2, "consensus needs at least two values");
    let mut input = Complex::new();
    let mut assign = [0i64; 3];
    loop {
        input.add_simplex(Simplex::from_iter(
            (0..3).map(|i| Vertex::of(i as u8, assign[i])),
        ));
        let mut i = 0;
        loop {
            if i == 3 {
                let t = Task::from_facet_delta(format!("consensus-3x{v}"), input, |sigma| {
                    let vals: Vec<i64> = sigma
                        .iter()
                        .map(|u| u.value().as_int().expect("int inputs")) // chromata-lint: allow(P1): the input complex built in this constructor carries only integer values
                        .collect();
                    let mut distinct = vals.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    distinct
                        .into_iter()
                        .map(|d| {
                            Simplex::from_iter(sigma.iter().map(|u| u.with_value(Value::Int(d))))
                        })
                        .collect()
                })
                .expect("multi-valued consensus is a valid task"); // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
                return t;
            }
            assign[i] += 1;
            if assign[i] < v {
                break;
            }
            assign[i] = 0;
            i += 1;
        }
    }
}

/// The complex of all binary input assignments for `n` processes.
#[must_use]
pub(crate) fn binary_input_complex(n: usize) -> Complex {
    let mut input = Complex::new();
    for mask in 0..(1u32 << n) {
        let facet =
            Simplex::from_iter((0..n).map(|i| Vertex::of(i as u8, i64::from(mask >> i & 1))));
        input.add_simplex(facet);
    }
    input
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_complex_shape() {
        let t = consensus(3);
        assert_eq!(t.input().vertex_count(), 6);
        assert_eq!(t.input().facet_count(), 8);
        assert!(t.input().is_pure());
        assert!(t.input().is_chromatic());
    }

    #[test]
    fn delta_respects_validity() {
        let t = consensus(3);
        // Uniform input: only that value decidable.
        let all0 = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0), Vertex::of(2, 0)]);
        assert_eq!(t.delta().image_of(&all0).facet_count(), 1);
        // Mixed input: both.
        let mixed = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 0)]);
        assert_eq!(t.delta().image_of(&mixed).facet_count(), 2);
    }

    #[test]
    fn solo_decides_own_value() {
        let t = consensus(3);
        for b in 0..2 {
            let x = Simplex::vertex(Vertex::of(1, b));
            let img = t.delta().image_of(&x);
            assert_eq!(img.facet_count(), 1);
            assert!(img.contains_vertex(&Vertex::of(1, b)));
        }
    }

    #[test]
    fn agreement_output_is_disconnected_per_facet() {
        // For a mixed input triangle, Δ(σ) is two disjoint triangles: the
        // geometric source of consensus impossibility.
        let t = consensus(3);
        let mixed = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 0)]);
        let img = t.delta().image_of(&mixed);
        assert_eq!(img.connected_components().len(), 2);
    }

    #[test]
    fn multi_valued_shapes() {
        let t = multi_valued_consensus(3);
        assert_eq!(t.input().facet_count(), 27);
        assert_eq!(t.input().vertex_count(), 9);
        // A rainbow input allows all three unanimous decisions.
        let rainbow = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 2)]);
        assert_eq!(t.delta().image_of(&rainbow).facet_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn multi_valued_needs_two() {
        let _ = multi_valued_consensus(1);
    }

    #[test]
    fn two_process_variant() {
        let t = two_process_consensus();
        assert_eq!(t.process_count(), 2);
        assert_eq!(t.input().facet_count(), 4);
    }
}
