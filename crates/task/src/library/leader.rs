//! Leader election (test-and-set) as a task.

use chromata_topology::{Complex, Simplex, Value, Vertex};

use crate::task::Task;

/// Leader election for three processes: exactly one participant outputs
/// 1 ("leader"), all others output 0. A process running solo must elect
/// itself.
///
/// Equivalent in power to test-and-set, whose consensus number is 2: the
/// task is wait-free unsolvable from read/write registers already for two
/// processes, and the three-process pipeline exposes the obstruction as
/// local articulation points — the three facets of `Δ(σ)` meet pairwise
/// in single vertices, so every output vertex is articulated.
///
/// # Examples
///
/// ```
/// use chromata_task::library::leader_election;
///
/// let t = leader_election();
/// assert!(!t.is_link_connected());
/// ```
#[must_use]
pub fn leader_election() -> Task {
    let facet = Simplex::from_iter((0..3).map(|i| Vertex::of(i, i64::from(i))));
    let input = Complex::from_facets([facet]);
    Task::from_delta_fn("leader-election", input, |tau| {
        // Exactly one participant wins.
        (0..tau.len())
            .map(|winner| {
                Simplex::from_iter(
                    tau.iter()
                        .enumerate()
                        .map(|(k, u)| u.with_value(Value::Int(i64::from(k == winner)))),
                )
            })
            .collect()
    })
    .expect("leader election is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

/// The two-process variant (equivalent to 2-consensus, hence unsolvable).
#[must_use]
pub fn two_process_leader_election() -> Task {
    let facet = Simplex::from_iter((0..2).map(|i| Vertex::of(i, i64::from(i))));
    let input = Complex::from_facets([facet]);
    Task::from_delta_fn("leader-election-2", input, |tau| {
        (0..tau.len())
            .map(|winner| {
                Simplex::from_iter(
                    tau.iter()
                        .enumerate()
                        .map(|(k, u)| u.with_value(Value::Int(i64::from(k == winner)))),
                )
            })
            .collect()
    })
    .expect("valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let t = leader_election();
        let sigma = t.input().facets().next().unwrap().clone();
        assert_eq!(t.delta().image_of(&sigma).facet_count(), 3);
        // Solo: self-election forced.
        for i in 0..3u8 {
            let img = t
                .delta()
                .image_of(&Simplex::vertex(Vertex::of(i, i64::from(i))));
            assert_eq!(img.facet_count(), 1);
            assert!(img.contains_vertex(&Vertex::of(i, 1)));
        }
    }

    #[test]
    fn exactly_one_winner_per_facet() {
        let t = leader_election();
        let sigma = t.input().facets().next().unwrap().clone();
        for f in t.delta().image_of(&sigma).facets() {
            let winners = f.iter().filter(|v| v.value().as_int() == Some(1)).count();
            assert_eq!(winners, 1);
        }
    }

    #[test]
    fn every_output_vertex_is_articulated() {
        let t = leader_election();
        let sigma = t.input().facets().next().unwrap().clone();
        let img = t.delta().image_of(&sigma);
        // Facets meet pairwise in single vertices: a "tripod" of
        // triangles. Every vertex shared by two facets has a
        // disconnected link.
        let laps = img.disconnected_link_vertices();
        assert_eq!(laps.len(), 3, "the three loser vertices, laps = {laps:?}");
    }

    #[test]
    fn two_process_variant_shapes() {
        let t = two_process_leader_election();
        assert_eq!(t.process_count(), 2);
        let sigma = t.input().facets().next().unwrap().clone();
        assert_eq!(t.delta().image_of(&sigma).facet_count(), 2);
    }
}
