//! The hourglass task (paper, Fig. 2 and §6.1).

use chromata_topology::{Complex, Simplex, Vertex};

use crate::task::Task;

/// The hourglass task: a single input triangle; each process decides 0
/// when solo; `P0` running with `P1` or `P2` may additionally decide 1 (and
/// so may the partner); `P1` and `P2` running together may additionally
/// decide 2; with all three participating, any triangle of the output
/// complex is legal.
///
/// The output complex is the standard chromatic subdivision of a triangle
/// "pinched at the waist": `P0`'s two edge-interior vertices are
/// identified, creating a local articulation point at `(P0, 1)` whose link
/// has two connected components. The task satisfies the colorless ACT but
/// is wait-free unsolvable (§6.1); after splitting, Corollary 5.5 applies.
///
/// # Examples
///
/// ```
/// use chromata_task::library::hourglass;
///
/// let t = hourglass();
/// assert_eq!(t.output().vertex_count(), 8);
/// assert_eq!(t.output().facet_count(), 5);
/// assert!(!t.is_link_connected());
/// ```
#[must_use]
pub fn hourglass() -> Task {
    let x: Vec<Vertex> = (0..3).map(|i| Vertex::of(i, 0)).collect();
    let sigma = Simplex::from_iter(x.clone());
    let input = Complex::from_facets([sigma.clone()]);

    // Output vertices (color, value): solos (i, 0); the pinch vertex
    // (0, 1); partners (1, 1), (2, 1); and the P1/P2 pair vertices
    // (1, 2), (2, 2).
    let o = |c: u8, v: i64| Vertex::of(c, v);

    // Top lobe (P0's side of the waist) and bottom lobe.
    let triangles = vec![
        Simplex::from_iter([o(0, 0), o(1, 1), o(2, 1)]),
        Simplex::from_iter([o(0, 1), o(1, 1), o(2, 1)]),
        Simplex::from_iter([o(0, 1), o(1, 0), o(2, 2)]),
        Simplex::from_iter([o(0, 1), o(1, 2), o(2, 2)]),
        Simplex::from_iter([o(0, 1), o(1, 2), o(2, 0)]),
    ];

    // Two-process executions follow the subdivided-edge paths, with P0's
    // interior vertex shared between both of its edges (the pinch).
    let path01 = vec![
        Simplex::from_iter([o(0, 0), o(1, 1)]),
        Simplex::from_iter([o(0, 1), o(1, 1)]),
        Simplex::from_iter([o(0, 1), o(1, 0)]),
    ];
    let path02 = vec![
        Simplex::from_iter([o(0, 0), o(2, 1)]),
        Simplex::from_iter([o(0, 1), o(2, 1)]),
        Simplex::from_iter([o(0, 1), o(2, 0)]),
    ];
    let path12 = vec![
        Simplex::from_iter([o(1, 0), o(2, 2)]),
        Simplex::from_iter([o(1, 2), o(2, 2)]),
        Simplex::from_iter([o(1, 2), o(2, 0)]),
    ];

    Task::from_delta_fn("hourglass", input, move |tau| {
        let colors: Vec<u8> = tau.iter().map(|u| u.color().index()).collect();
        match colors.as_slice() {
            [i] => vec![Simplex::vertex(o(*i, 0))],
            [0, 1] => path01.clone(),
            [0, 2] => path02.clone(),
            [1, 2] => path12.clone(),
            [0, 1, 2] => triangles.clone(),
            other => unreachable!("unexpected color set {other:?}"), // chromata-lint: allow(P1): delta is evaluated only on simplices of the 3-process input complex built above
        }
    })
    .expect("the hourglass is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape() {
        let t = hourglass();
        assert_eq!(t.output().vertex_count(), 8);
        assert_eq!(t.output().facet_count(), 5);
        assert!(t.output().is_pure());
        assert!(t.output().is_chromatic());
    }

    #[test]
    fn pinch_vertex_is_the_unique_articulation_point() {
        let t = hourglass();
        let sigma = t.input().facets().next().unwrap().clone();
        let img = t.delta().image_of(&sigma);
        let laps = img.disconnected_link_vertices();
        assert_eq!(laps, vec![Vertex::of(0, 1)]);
        let link = img.link(&Vertex::of(0, 1));
        assert_eq!(link.connected_components().len(), 2);
    }

    #[test]
    fn link_components_match_figure2() {
        // One component is the {(1,1),(2,1)} edge (the top lobe), the
        // other the 4-vertex path of the bottom lobe.
        let t = hourglass();
        let sigma = t.input().facets().next().unwrap().clone();
        let img = t.delta().image_of(&sigma);
        let link = img.link(&Vertex::of(0, 1));
        let comps = link.connected_components();
        let mut sizes: Vec<usize> = comps.iter().map(std::collections::BTreeSet::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 4]);
    }

    #[test]
    fn two_process_paths_are_connected() {
        let t = hourglass();
        for pair in [[0u8, 1], [0, 2], [1, 2]] {
            let e = Simplex::from_iter(pair.iter().map(|&c| Vertex::of(c, 0)));
            let img = t.delta().image_of(&e);
            assert_eq!(img.facet_count(), 3, "subdivided edge");
            assert!(img.is_connected());
        }
    }

    #[test]
    fn solo_values_are_zero() {
        let t = hourglass();
        for i in 0..3u8 {
            let img = t.delta().image_of(&Simplex::vertex(Vertex::of(i, 0)));
            assert!(img.contains_vertex(&Vertex::of(i, 0)));
            assert_eq!(img.facet_count(), 1);
        }
    }

    #[test]
    fn output_is_simply_connected_wedge_of_disks() {
        // The hourglass output is two disks glued at a point: b0 = 1,
        // b1 = 0 — hence a colorless continuous map exists (checked at the
        // pipeline level in integration tests).
        let t = hourglass();
        let h = chromata_algebra::homology(t.output());
        assert_eq!((h.betti0, h.betti1), (1, 0));
    }
}
