//! Majority consensus (paper, Fig. 1).

use chromata_topology::{Simplex, Value};

use crate::library::consensus::binary_input_complex;
use crate::task::Task;

/// The majority-consensus task of Figure 1: three processes with binary
/// inputs; each decides a value that appeared as an input of a
/// participant; when all three participate they either agree, or strictly
/// more processes decide 0 than 1.
///
/// The task satisfies the colorless ACT (a continuous `|I| → |O|` map
/// exists) yet is wait-free *unsolvable*: after splitting its local
/// articulation points, the solo output of `P0` and the `(1,1)` edge land
/// in different components (Corollary 5.5).
///
/// # Examples
///
/// ```
/// use chromata_task::library::majority_consensus;
///
/// let t = majority_consensus();
/// assert_eq!(t.process_count(), 3);
/// ```
#[must_use]
pub fn majority_consensus() -> Task {
    let input = binary_input_complex(3);
    Task::from_facet_delta("majority-consensus", input, |sigma| {
        let vals: Vec<i64> = sigma
            .iter()
            .map(|u| u.value().as_int().expect("binary inputs")) // chromata-lint: allow(P1): the input complex built in this constructor carries only integer values
            .collect();
        let mut out = Vec::new();
        // Unanimous decisions on any appearing value.
        for d in [0i64, 1] {
            if vals.contains(&d) {
                out.push(Simplex::from_iter(
                    sigma.iter().map(|u| u.with_value(Value::Int(d))),
                ));
            }
        }
        // Majority-0 decisions (two 0s, one 1) need both values present.
        if vals.contains(&0) && vals.contains(&1) {
            for one_holder in 0..3 {
                out.push(Simplex::from_iter(sigma.iter().enumerate().map(
                    |(k, u)| u.with_value(Value::Int(i64::from(k == one_holder))),
                )));
            }
        }
        out
    })
    .expect("majority consensus is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_topology::Vertex;

    #[test]
    fn triangle_images() {
        let t = majority_consensus();
        let mixed = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 1)]);
        // all-0, all-1, and three two-0-one-1 patterns.
        assert_eq!(t.delta().image_of(&mixed).facet_count(), 5);
        let all1 = Simplex::from_iter([Vertex::of(0, 1), Vertex::of(1, 1), Vertex::of(2, 1)]);
        assert_eq!(t.delta().image_of(&all1).facet_count(), 1);
    }

    #[test]
    fn mixed_edge_allows_all_combinations() {
        let t = majority_consensus();
        let e = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1)]);
        assert_eq!(t.delta().image_of(&e).facet_count(), 4);
    }

    #[test]
    fn uniform_edge_is_pinned() {
        let t = majority_consensus();
        let e = Simplex::from_iter([Vertex::of(1, 1), Vertex::of(2, 1)]);
        let img = t.delta().image_of(&e);
        assert_eq!(img.facet_count(), 1);
        assert!(img.contains(&Simplex::from_iter([Vertex::of(1, 1), Vertex::of(2, 1)])));
    }

    #[test]
    fn solo_decides_own_input() {
        let t = majority_consensus();
        for b in 0..2 {
            let img = t.delta().image_of(&Simplex::vertex(Vertex::of(2, b)));
            assert_eq!(img.facet_count(), 1);
            assert!(img.contains_vertex(&Vertex::of(2, b)));
        }
    }

    #[test]
    fn majority_one_is_forbidden() {
        let t = majority_consensus();
        let mixed = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 1)]);
        let img = t.delta().image_of(&mixed);
        // Two 1s and one 0 would be a 1-majority: not allowed.
        let bad = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 1)]);
        assert!(!img.contains(&bad));
    }
}
