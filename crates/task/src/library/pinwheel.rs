//! The pinwheel task (paper, Fig. 8 and §6.2).

use chromata_topology::{Complex, Simplex, Vertex};

use crate::library::set_agreement::{input_facet, set_agreement_images};
use crate::task::Task;

/// The pinwheel task: 2-set agreement with fixed inputs `1, 2, 3`, with
/// output *triangles* removed (all edges and vertices stay, so one- and
/// two-process behaviour is unchanged).
///
/// The removed triangles create local articulation points; splitting them
/// disconnects the output complex into three components, and the task is
/// unsolvable by Corollary 5.6 (Corollary 5.5 does not apply: paths that
/// avoid crossing articulation points still exist between adjacent solo
/// outputs, §6.2). As a colorless task it *also* lacks a continuous map —
/// it is a subtask of 2-set agreement.
///
/// The nine kept triangles are three rotation-symmetric orbits of
/// two-valued triangles (decided values at `(P0, P1, P2)`):
/// `(1,2,1) (2,2,3) (1,3,3)`, `(1,1,3) (1,2,2) (3,2,3)` and
/// `(3,1,1) (2,1,2) (3,3,2)`. With this choice every solo output vertex
/// `(i, i+1)` is a LAP whose partners in each incident edge image straddle
/// *both* link components, so after splitting each input vertex may decide
/// two copies — "one copy per connected component" (§6.2).
///
/// # Examples
///
/// ```
/// use chromata_task::library::pinwheel;
///
/// let t = pinwheel();
/// let sigma = t.input().facets().next().unwrap().clone();
/// assert_eq!(t.delta().image_of(&sigma).facet_count(), 9);
/// assert!(!t.is_link_connected());
/// ```
#[must_use]
pub fn pinwheel() -> Task {
    let input = Complex::from_facets([input_facet()]);
    let kept: Vec<[i64; 3]> = vec![
        // Orbit of (1,2,1) under the color/value rotation.
        [1, 2, 1],
        [2, 2, 3],
        [1, 3, 3],
        // Orbit of (1,1,3).
        [1, 1, 3],
        [1, 2, 2],
        [3, 2, 3],
        // Orbit of (3,1,1).
        [3, 1, 1],
        [2, 1, 2],
        [3, 3, 2],
    ];
    let triangles: Vec<Simplex> = kept
        .iter()
        .map(|vals| {
            Simplex::from_iter(
                vals.iter()
                    .enumerate()
                    .map(|(i, &v)| Vertex::of(i as u8, v)),
            )
        })
        .collect();
    Task::from_delta_fn("pinwheel", input, move |tau| {
        if tau.dimension() == 2 {
            triangles.clone()
        } else {
            // Vertices and edges are untouched 2-set agreement.
            set_agreement_images(tau, 2)
        }
    })
    .expect("the pinwheel is a valid task") // chromata-lint: allow(P1): library task is built from compile-time constants; validation cannot fail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facet_image() -> Complex {
        let t = pinwheel();
        let sigma = t.input().facets().next().unwrap().clone();
        t.delta().image_of(&sigma).clone()
    }

    #[test]
    fn shape() {
        let img = facet_image();
        assert_eq!(img.facet_count(), 9);
        assert_eq!(img.vertex_count(), 9);
        assert!(img.is_pure());
    }

    #[test]
    fn is_a_subtask_of_two_set_agreement() {
        let t = pinwheel();
        let full = crate::library::two_set_agreement();
        for (tau, img) in t.delta().iter() {
            let big = full.delta().image_of(tau);
            assert!(
                img.is_subcomplex_of(big),
                "Δ_pinwheel(τ) ⊆ Δ_2SA(τ) at {tau}"
            );
        }
    }

    #[test]
    fn edges_and_vertices_unchanged() {
        let t = pinwheel();
        let full = crate::library::two_set_agreement();
        for (tau, img) in t.delta().iter() {
            if tau.dimension() < 2 {
                assert_eq!(img, full.delta().image_of(tau), "lower Δ intact at {tau}");
            }
        }
    }

    #[test]
    fn articulation_points_exist() {
        let img = facet_image();
        let laps = img.disconnected_link_vertices();
        // Every output vertex is articulated in this construction; the
        // solo vertices (i, i+1) have exactly two link components.
        assert!(laps.contains(&Vertex::of(0, 1)), "laps = {laps:?}");
        assert!(laps.contains(&Vertex::of(1, 2)));
        assert!(laps.contains(&Vertex::of(2, 3)));
        assert_eq!(laps.len(), 9);
        for solo in [Vertex::of(0, 1), Vertex::of(1, 2), Vertex::of(2, 3)] {
            assert_eq!(img.link(&solo).connected_components().len(), 2);
        }
    }

    #[test]
    fn solo_partners_straddle_both_components() {
        // §6.2 prerequisite: in each edge image, the solo LAP's partners
        // hit both of its link components, so both copies remain
        // decidable by the solo process after splitting.
        let t = pinwheel();
        let img = facet_image();
        for (solo, edge_mates) in [
            (Vertex::of(0, 1), [Vertex::of(1, 1), Vertex::of(1, 2)]),
            (Vertex::of(0, 1), [Vertex::of(2, 1), Vertex::of(2, 3)]),
        ] {
            let comps = img.link(&solo).connected_components();
            let idx = |z: &Vertex| comps.iter().position(|c| c.contains(z));
            assert_ne!(idx(&edge_mates[0]), idx(&edge_mates[1]));
            let _ = &t;
        }
    }

    #[test]
    fn rotation_symmetry() {
        // The kept triangle set is invariant under (color +1, value +1).
        let img = facet_image();
        let rotate = |s: &Simplex| {
            Simplex::from_iter(s.iter().map(|u| {
                let c = (u.color().index() + 1) % 3;
                let v = u.value().as_int().unwrap() % 3 + 1;
                Vertex::of(c, v)
            }))
        };
        for f in img.facets() {
            assert!(img.contains(&rotate(f)), "rotation of {f} missing");
        }
    }

    #[test]
    fn connected_before_splitting() {
        let img = facet_image();
        assert!(img.is_connected());
    }
}
