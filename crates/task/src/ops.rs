//! Task combinators.
//!
//! Operations deriving new tasks from existing ones; the workhorse is
//! [`restricted_to_participants`], which produces the sub-task seen by a
//! subset of the processes — solvability of the whole task implies
//! solvability of every restriction (run the same protocol), giving a
//! cheap necessary condition that the test suite cross-checks against the
//! two-process decider.

use chromata_topology::{CarrierMap, ColorSet, Complex, Simplex, Value, Vertex};

use crate::task::Task;

/// The sub-task induced by a set of participating colors: input simplices
/// whose colors lie in `participants`, with `Δ` restricted accordingly.
///
/// # Panics
///
/// Panics if no input simplex survives the restriction (the participant
/// set shares no process with the task).
///
/// # Examples
///
/// ```
/// use chromata_task::{library::consensus, restricted_to_participants};
/// use chromata_topology::{Color, ColorSet};
///
/// let two: ColorSet = [Color::new(0), Color::new(2)].into_iter().collect();
/// let sub = restricted_to_participants(&consensus(3), two);
/// assert_eq!(sub.process_count(), 2);
/// assert_eq!(sub.input().facet_count(), 4); // binary inputs for two processes
/// ```
#[must_use]
pub fn restricted_to_participants(task: &Task, participants: ColorSet) -> Task {
    let input = Complex::from_facets(
        task.input()
            .simplices()
            .filter(|s| s.colors().is_subset_of(participants))
            .cloned(),
    );
    assert!(
        !input.is_empty(),
        "no input simplex has colors within {participants}"
    );
    let delta: CarrierMap = task
        .delta()
        .iter()
        .filter(|(s, _)| input.contains(s))
        .map(|(s, img)| (s.clone(), img.clone()))
        .collect();
    let output = delta.full_image();
    Task::new(
        format!("{}|{participants}", task.name()),
        input,
        output,
        delta,
    )
    .expect("restriction of a valid task is valid") // chromata-lint: allow(P1): restricting a validated task to a sub-complex preserves validity
}

/// The branch sub-task induced by a single input facet: input is the
/// closure of `facet`, `Δ` is restricted to its faces, and the output is
/// the restricted image. The name is erased (empty), so the result is a
/// purely structural key — two tasks that agree on a facet's carrier
/// produce identical branch sub-tasks regardless of how they are named,
/// which is what lets per-branch stage artifacts be shared across edits.
///
/// # Panics
///
/// Panics if `facet` is not a simplex of `task`'s input complex.
#[must_use]
pub fn facet_restriction(task: &Task, facet: &Simplex) -> Task {
    assert!(
        task.input().contains(facet),
        "facet restriction: {facet} is not an input simplex"
    );
    let input = Complex::from_facets([facet.clone()]);
    let delta = task.delta().restricted_to(&input);
    let output = delta.full_image();
    Task::new(String::new(), input, output, delta)
        .expect("facet restriction of a valid task is valid") // chromata-lint: allow(P1): restricting a validated task to one of its input facets preserves validity
}

/// One seeded structural mutation applied to a task.
///
/// Every kind is re-validated through [`Task::new`]; a kind that cannot
/// produce a valid mutant for the given task/draw returns `None` from
/// [`mutate_with`] rather than an invalid task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MutationKind {
    /// Flip one entry of the decision map: enlarge or shrink the image of
    /// one top-level input facet by one output facet.
    FlipEntry,
    /// Drop one input facet (with its carrier entries); the output shrinks
    /// to the remaining image.
    DropSimplex,
    /// Rename one output value to a fresh integer, substituting it across
    /// the output complex and every carrier image.
    RenameValue,
}

/// All mutation kinds, in the order the seeded driver cycles through them.
pub const MUTATION_KINDS: [MutationKind; 3] = [
    MutationKind::FlipEntry,
    MutationKind::DropSimplex,
    MutationKind::RenameValue,
];

/// xorshift64* step — the same tiny deterministic generator the shard
/// router uses; no OS entropy, so a seed fully determines the campaign.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn cloned_delta(task: &Task) -> CarrierMap {
    task.delta()
        .iter()
        .map(|(s, img)| (s.clone(), img.clone()))
        .collect()
}

fn flip_entry(task: &Task, draw: u64, name: String) -> Option<Task> {
    let facets: Vec<&Simplex> = task.input().facets().collect();
    if facets.is_empty() {
        return None;
    }
    let tau = facets[usize::try_from(draw).unwrap_or(usize::MAX) % facets.len()]; // chromata-lint: allow(P3): index is reduced modulo the length of a vec checked non-empty above
    let image = task.delta().image_of(tau);
    let sub_draw = usize::try_from(draw >> 8).unwrap_or(usize::MAX);
    let additions: Vec<&Simplex> = task
        .output()
        .facets()
        .filter(|g| g.colors() == tau.colors() && !image.contains(g))
        .collect();
    let mut delta = cloned_delta(task);
    if additions.is_empty() {
        // Shrink: drop one facet from the image (keeping at least one) and
        // let validation decide whether the result is still a carrier map.
        let img_facets: Vec<&Simplex> = image.facets().collect();
        if img_facets.len() < 2 {
            return None;
        }
        let dropped = sub_draw % img_facets.len();
        let kept = img_facets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != dropped)
            .map(|(_, g)| (*g).clone());
        delta.insert(tau.clone(), Complex::from_facets(kept));
    } else {
        let g = additions[sub_draw % additions.len()]; // chromata-lint: allow(P3): index is reduced modulo the length of a vec checked non-empty in this branch
        let enlarged = Complex::from_facets(image.facets().cloned().chain([g.clone()]));
        delta.insert(tau.clone(), enlarged);
    }
    let output = delta.full_image();
    Task::new(name, task.input().clone(), output, delta).ok()
}

fn drop_simplex(task: &Task, draw: u64, name: String) -> Option<Task> {
    let facets: Vec<&Simplex> = task.input().facets().collect();
    if facets.len() < 2 {
        return None;
    }
    let dropped = usize::try_from(draw).unwrap_or(usize::MAX) % facets.len();
    let input = Complex::from_facets(
        facets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != dropped)
            .map(|(_, s)| (*s).clone()),
    );
    let delta = task.delta().restricted_to(&input);
    let output = delta.full_image();
    Task::new(name, input, output, delta).ok()
}

fn rename_value(task: &Task, draw: u64, name: String) -> Option<Task> {
    let outs: Vec<&Vertex> = task.output().vertices().collect();
    if outs.is_empty() {
        return None;
    }
    let w = outs[usize::try_from(draw).unwrap_or(usize::MAX) % outs.len()].clone(); // chromata-lint: allow(P3): index is reduced modulo the length of a vec checked non-empty above
    let mut salt = draw >> 8;
    let replacement = loop {
        let cand = Vertex::new(
            w.color(),
            Value::Int(1_000_000 + i64::try_from(salt % 100_000).unwrap_or(0)),
        );
        if !task.output().contains_vertex(&cand) {
            break cand;
        }
        salt += 1;
    };
    let subst = |s: &Simplex| -> Simplex {
        if s.iter().any(|v| *v == w) {
            s.substituted(&w, replacement.clone())
        } else {
            s.clone()
        }
    };
    let output = Complex::from_facets(task.output().facets().map(&subst));
    let delta: CarrierMap = task
        .delta()
        .iter()
        .map(|(s, img)| (s.clone(), Complex::from_facets(img.facets().map(&subst))))
        .collect();
    Task::new(name, task.input().clone(), output, delta).ok()
}

/// Applies one mutation of the given kind, deriving all choices from
/// `draw`. Returns `None` when the kind cannot yield a valid mutant here
/// (e.g. dropping a facet from a single-facet input, or a shrink that
/// breaks monotonicity) — the result is always re-validated by
/// [`Task::new`], never constructed unchecked.
#[must_use]
pub fn mutate_with(task: &Task, kind: MutationKind, draw: u64, name: &str) -> Option<Task> {
    match kind {
        MutationKind::FlipEntry => flip_entry(task, draw, name.to_owned()),
        MutationKind::DropSimplex => drop_simplex(task, draw, name.to_owned()),
        MutationKind::RenameValue => rename_value(task, draw, name.to_owned()),
    }
}

/// The `index`-th seeded mutant of a task: cycles through mutation kinds
/// with bounded re-rolls until one validates, falling back to a value
/// rename (which succeeds on any task with a nonempty output). The mutant
/// is named `"{name}#m{index}"`, and `(seed, index)` fully determines it.
#[must_use]
pub fn mutate_task(task: &Task, seed: u64, index: u64) -> Task {
    let mut state = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd6e8_feb8_6659_fd93;
    let name = format!("{}#m{index}", task.name());
    for _ in 0..8 {
        let draw = xorshift(&mut state);
        let kind = MUTATION_KINDS[usize::try_from(draw % 3).unwrap_or(0)]; // chromata-lint: allow(P3): index is reduced modulo the fixed array length
        if let Some(mutant) = mutate_with(task, kind, xorshift(&mut state), &name) {
            return mutant;
        }
    }
    let fallback = xorshift(&mut state);
    mutate_with(task, MutationKind::RenameValue, fallback, &name).unwrap_or_else(|| {
        Task::new(
            name,
            task.input().clone(),
            task.output().clone(),
            cloned_delta(task),
        )
        .expect("clone of a valid task is valid") // chromata-lint: allow(P1): rebuilding a validated task from its own parts preserves validity
    })
}

/// All two-process restrictions of a three-process task, one per pair of
/// colors present in the input complex.
#[must_use]
pub fn two_process_restrictions(task: &Task) -> Vec<Task> {
    let colors: Vec<_> = task.input().colors().iter().collect();
    let mut out = Vec::new();
    for (i, &a) in colors.iter().enumerate() {
        // chromata-lint: allow(P3): `i` enumerates `colors`, so
        // `i + 1 <= len` and the range slice cannot be out of bounds
        for &b in &colors[i + 1..] {
            let pair: ColorSet = [a, b].into_iter().collect();
            out.push(restricted_to_participants(task, pair));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{consensus, hourglass, identity_task, two_set_agreement};
    use chromata_topology::Color;

    fn pair(a: u8, b: u8) -> ColorSet {
        [Color::new(a), Color::new(b)].into_iter().collect()
    }

    #[test]
    fn restriction_shapes() {
        let t = hourglass();
        let sub = restricted_to_participants(&t, pair(0, 1));
        assert_eq!(sub.process_count(), 2);
        assert_eq!(sub.input().facet_count(), 1);
        // Δ(edge) is the subdivided path of the hourglass.
        let e = sub.input().facets().next().unwrap().clone();
        assert_eq!(sub.delta().image_of(&e).facet_count(), 3);
    }

    #[test]
    fn restriction_is_validated() {
        for t in [identity_task(3), consensus(3), two_set_agreement()] {
            for sub in two_process_restrictions(&t) {
                sub.delta()
                    .validate_chromatic(sub.input())
                    .expect("restriction is a valid carrier map");
                assert_eq!(sub.process_count(), 2, "{}", sub.name());
            }
        }
    }

    #[test]
    fn three_pairs_for_three_processes() {
        assert_eq!(two_process_restrictions(&consensus(3)).len(), 3);
    }

    #[test]
    #[should_panic(expected = "no input simplex")]
    fn empty_restriction_rejected() {
        let t = identity_task(3);
        let far: ColorSet = [Color::new(7)].into_iter().collect();
        let _ = restricted_to_participants(&t, far);
    }

    #[test]
    fn facet_restriction_is_name_erased_and_valid() {
        let t = two_set_agreement();
        for facet in t.input().facets() {
            let branch = facet_restriction(&t, facet);
            assert_eq!(branch.name(), "");
            assert_eq!(branch.input().facet_count(), 1);
            branch
                .delta()
                .validate_chromatic(branch.input())
                .expect("branch carrier map is valid");
        }
    }

    #[test]
    fn facet_restriction_ignores_task_name() {
        // Renaming a task must not change any branch sub-task: branches
        // are the structural cache keys for per-branch stage artifacts.
        let t = consensus(3);
        let renamed = Task::new(
            "other-name",
            t.input().clone(),
            t.output().clone(),
            t.delta()
                .iter()
                .map(|(s, img)| (s.clone(), img.clone()))
                .collect(),
        )
        .expect("clone of a valid task is valid");
        for (a, b) in t.input().facets().zip(renamed.input().facets()) {
            assert_eq!(facet_restriction(&t, a), facet_restriction(&renamed, b));
        }
    }

    #[test]
    #[should_panic(expected = "not an input simplex")]
    fn facet_restriction_rejects_foreign_simplex() {
        use chromata_topology::{Simplex, Vertex};
        let t = consensus(3);
        let foreign = Simplex::new(vec![Vertex::of(9, 9)]);
        let _ = facet_restriction(&t, &foreign);
    }

    #[test]
    fn mutants_are_deterministic_and_named() {
        let t = consensus(3);
        let a = mutate_task(&t, 42, 7);
        let b = mutate_task(&t, 42, 7);
        assert_eq!(a, b);
        assert_eq!(a.name(), "consensus-3#m7");
        assert_ne!(mutate_task(&t, 42, 8), a);
    }

    #[test]
    fn every_mutation_kind_validates_or_declines() {
        for t in [
            identity_task(3),
            consensus(3),
            two_set_agreement(),
            hourglass(),
        ] {
            for kind in MUTATION_KINDS {
                for draw in [0u64, 1, 17, 0xdead_beef, u64::MAX] {
                    if let Some(m) = mutate_with(&t, kind, draw, "m") {
                        m.delta()
                            .validate_chromatic(m.input())
                            .expect("mutant carrier map is valid");
                        assert!(!m.input().is_empty());
                    }
                }
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn kinds() -> impl Strategy<Value = MutationKind> {
            prop_oneof![
                Just(MutationKind::FlipEntry),
                Just(MutationKind::DropSimplex),
                Just(MutationKind::RenameValue),
            ]
        }

        fn wide(hi: u32, lo: u32) -> u64 {
            (u64::from(hi) << 32) | u64::from(lo)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn mutate_with_always_validates(kind in kinds(), hi in 0u32.., lo in 0u32..) {
                let draw = wide(hi, lo);
                for t in [identity_task(3), consensus(3), two_set_agreement()] {
                    if let Some(m) = mutate_with(&t, kind, draw, "p") {
                        prop_assert!(m.delta().validate_chromatic(m.input()).is_ok());
                        prop_assert!(!m.input().is_empty());
                    }
                }
            }

            #[test]
            fn mutate_task_is_total_and_valid(hi in 0u32.., lo in 0u32.., index in 0u32..512) {
                let t = two_set_agreement();
                let m = mutate_task(&t, wide(hi, lo), u64::from(index));
                prop_assert!(m.delta().validate_chromatic(m.input()).is_ok());
                prop_assert_eq!(m.name(), format!("{}#m{index}", t.name()));
            }

            #[test]
            fn branch_keys_cover_every_facet(hi in 0u32.., lo in 0u32.., index in 0u32..64) {
                let m = mutate_task(&consensus(3), wide(hi, lo), u64::from(index));
                for facet in m.input().facets() {
                    let branch = facet_restriction(&m, facet);
                    prop_assert_eq!(branch.input().facets().next(), Some(facet));
                }
            }
        }
    }
}
