//! Task combinators.
//!
//! Operations deriving new tasks from existing ones; the workhorse is
//! [`restricted_to_participants`], which produces the sub-task seen by a
//! subset of the processes — solvability of the whole task implies
//! solvability of every restriction (run the same protocol), giving a
//! cheap necessary condition that the test suite cross-checks against the
//! two-process decider.

use chromata_topology::{CarrierMap, ColorSet, Complex};

use crate::task::Task;

/// The sub-task induced by a set of participating colors: input simplices
/// whose colors lie in `participants`, with `Δ` restricted accordingly.
///
/// # Panics
///
/// Panics if no input simplex survives the restriction (the participant
/// set shares no process with the task).
///
/// # Examples
///
/// ```
/// use chromata_task::{library::consensus, restricted_to_participants};
/// use chromata_topology::{Color, ColorSet};
///
/// let two: ColorSet = [Color::new(0), Color::new(2)].into_iter().collect();
/// let sub = restricted_to_participants(&consensus(3), two);
/// assert_eq!(sub.process_count(), 2);
/// assert_eq!(sub.input().facet_count(), 4); // binary inputs for two processes
/// ```
#[must_use]
pub fn restricted_to_participants(task: &Task, participants: ColorSet) -> Task {
    let input = Complex::from_facets(
        task.input()
            .simplices()
            .filter(|s| s.colors().is_subset_of(participants))
            .cloned(),
    );
    assert!(
        !input.is_empty(),
        "no input simplex has colors within {participants}"
    );
    let delta: CarrierMap = task
        .delta()
        .iter()
        .filter(|(s, _)| input.contains(s))
        .map(|(s, img)| (s.clone(), img.clone()))
        .collect();
    let output = delta.full_image();
    Task::new(
        format!("{}|{participants}", task.name()),
        input,
        output,
        delta,
    )
    .expect("restriction of a valid task is valid") // chromata-lint: allow(P1): restricting a validated task to a sub-complex preserves validity
}

/// All two-process restrictions of a three-process task, one per pair of
/// colors present in the input complex.
#[must_use]
pub fn two_process_restrictions(task: &Task) -> Vec<Task> {
    let colors: Vec<_> = task.input().colors().iter().collect();
    let mut out = Vec::new();
    for (i, &a) in colors.iter().enumerate() {
        // chromata-lint: allow(P3): `i` enumerates `colors`, so
        // `i + 1 <= len` and the range slice cannot be out of bounds
        for &b in &colors[i + 1..] {
            let pair: ColorSet = [a, b].into_iter().collect();
            out.push(restricted_to_participants(task, pair));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{consensus, hourglass, identity_task, two_set_agreement};
    use chromata_topology::Color;

    fn pair(a: u8, b: u8) -> ColorSet {
        [Color::new(a), Color::new(b)].into_iter().collect()
    }

    #[test]
    fn restriction_shapes() {
        let t = hourglass();
        let sub = restricted_to_participants(&t, pair(0, 1));
        assert_eq!(sub.process_count(), 2);
        assert_eq!(sub.input().facet_count(), 1);
        // Δ(edge) is the subdivided path of the hourglass.
        let e = sub.input().facets().next().unwrap().clone();
        assert_eq!(sub.delta().image_of(&e).facet_count(), 3);
    }

    #[test]
    fn restriction_is_validated() {
        for t in [identity_task(3), consensus(3), two_set_agreement()] {
            for sub in two_process_restrictions(&t) {
                sub.delta()
                    .validate_chromatic(sub.input())
                    .expect("restriction is a valid carrier map");
                assert_eq!(sub.process_count(), 2, "{}", sub.name());
            }
        }
    }

    #[test]
    fn three_pairs_for_three_processes() {
        assert_eq!(two_process_restrictions(&consensus(3)).len(), 3);
    }

    #[test]
    #[should_panic(expected = "no input simplex")]
    fn empty_restriction_rejected() {
        let t = identity_task(3);
        let far: ColorSet = [Color::new(7)].into_iter().collect();
        let _ = restricted_to_participants(&t, far);
    }
}
