//! Serialization determinism across the whole task library.
//!
//! The interned vertex/simplex representation orders simplices by pointer
//! fast paths internally, but every *observable* iteration (complex
//! simplices, carrier-map entries) must stay deterministic so that task
//! files are reproducible byte-for-byte — across repeated runs, across a
//! serialize→deserialize→serialize roundtrip, and across the `parallel`
//! and `--no-default-features` builds (this test runs identically under
//! both).

use chromata_task::library::{
    adaptive_renaming, approximate_agreement, consensus, constant_task, hourglass, identity_task,
    leader_election, majority_consensus, multi_valued_consensus, pinwheel, renaming,
    simple_example_task, two_process_consensus, two_process_leader_election, two_set_agreement,
};
use chromata_task::Task;

fn library() -> Vec<Task> {
    vec![
        identity_task(1),
        identity_task(2),
        identity_task(3),
        constant_task(3),
        simple_example_task(),
        hourglass(),
        pinwheel(),
        consensus(2),
        consensus(3),
        two_process_consensus(),
        multi_valued_consensus(3),
        majority_consensus(),
        two_set_agreement(),
        leader_election(),
        two_process_leader_election(),
        renaming(4),
        adaptive_renaming(),
        approximate_agreement(2),
    ]
}

#[test]
fn serialization_is_byte_deterministic() {
    for task in library() {
        let first = serde_json::to_string(&task).expect("serialize");
        let second = serde_json::to_string(&task).expect("serialize again");
        assert_eq!(first, second, "unstable serialization for {}", task.name());
    }
}

#[test]
fn roundtrip_then_reserialize_is_identical() {
    for task in library() {
        let bytes = serde_json::to_string(&task).expect("serialize");
        let reloaded: Task = serde_json::from_str(&bytes).expect("deserialize");
        assert_eq!(reloaded, task, "roundtrip changed {}", task.name());
        let again = serde_json::to_string(&reloaded).expect("reserialize");
        assert_eq!(
            bytes,
            again,
            "reloaded task serializes differently for {}",
            task.name()
        );
    }
}

#[test]
fn clones_share_serialization() {
    // Interning means a clone is pointer-identical inside; serialization
    // must not leak any pointer-dependent ordering.
    for task in library() {
        let clone = task.clone();
        assert_eq!(
            serde_json::to_string(&task).unwrap(),
            serde_json::to_string(&clone).unwrap(),
            "clone serialized differently for {}",
            task.name()
        );
    }
}
