//! Throughput/latency benchmark for `chromata serve`.
//!
//! Boots an in-process server (loopback, ephemeral port), then measures
//! three request series against the shared artifact store:
//!
//! 1. `cold/sequential` — one client walks the task set against a
//!    freshly cleared store: per-request latency with every stage cache
//!    missing.
//! 2. `warm/sequential` — the same walk again: every verdict replays
//!    from the store, so this isolates wire + dispatch overhead.
//! 3. `warm/concurrent` — W client threads each issue N requests over
//!    the (rotated) task set: p50/p99 latency and aggregate
//!    requests-per-second under contention.
//!
//! Prints a BENCH_PR6.json-shaped report to stdout. Run with:
//!
//! ```text
//! cargo run --release -p chromata-cli --example serve_bench
//! ```

use std::time::Instant;

use chromata::clear_stage_caches;
use chromata_cli::serve::request_line;
use chromata_cli::{ServeOptions, Server};

/// Overlapping task set: small enough to finish cold in seconds, varied
/// enough to exercise all pipeline stages (solvable and unsolvable).
const TASKS: &[&str] = &["hourglass", "2-set-agreement", "identity", "pinwheel"];

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 24;

fn timed_request(addr: &str, task: &str) -> f64 {
    let line = format!("{{\"task\":\"{task}\"}}");
    let start = Instant::now();
    let resp = request_line(addr, &line, 300).expect("request failed");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        resp.contains("\"status\":\"ok\"") && resp.contains("\"evidence_digest\""),
        "unexpected response: {resp}"
    );
    ms
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn summary(mut samples: Vec<f64>) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    (mean, percentile(&samples, 0.50), percentile(&samples, 0.99))
}

fn main() {
    clear_stage_caches();
    let server = Server::start(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        threads: CLIENTS,
        persist_secs: 0,
        idle_timeout_secs: 60,
        ..ServeOptions::default()
    })
    .expect("server start");
    let addr = server.local_addr().to_string();

    // 1. Cold sequential walk.
    let cold: Vec<f64> = TASKS.iter().map(|t| timed_request(&addr, t)).collect();
    let (cold_mean, cold_p50, cold_p99) = summary(cold);

    // 2. Warm sequential walk (verdict-cache replay).
    let warm: Vec<f64> = TASKS.iter().map(|t| timed_request(&addr, t)).collect();
    let (warm_mean, warm_p50, warm_p99) = summary(warm);

    // 3. Warm concurrent fan-out.
    let wall = Instant::now();
    let samples: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|worker| {
                let addr = addr.clone();
                scope.spawn(move || {
                    (0..REQUESTS_PER_CLIENT)
                        .map(|i| timed_request(&addr, TASKS[(worker + i) % TASKS.len()]))
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    let total = samples.len();
    let rps = total as f64 / wall_secs;
    let (conc_mean, conc_p50, conc_p99) = summary(samples);

    let shutdown = request_line(&addr, r#"{"op":"shutdown"}"#, 60).expect("shutdown");
    assert!(
        shutdown.contains("\"status\":\"ok\""),
        "bad shutdown: {shutdown}"
    );
    let _ = server.wait();

    println!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"crates/cli/examples/serve_bench.rs ",
            "({clients} clients x {per_client} requests, {tasks}-task set)\",\n",
            "  \"series\": {{\n",
            "    \"serve/cold/sequential\": {{\"mean_ms\": {cold_mean:.3}, ",
            "\"p50_ms\": {cold_p50:.3}, \"p99_ms\": {cold_p99:.3}}},\n",
            "    \"serve/warm/sequential\": {{\"mean_ms\": {warm_mean:.3}, ",
            "\"p50_ms\": {warm_p50:.3}, \"p99_ms\": {warm_p99:.3}}},\n",
            "    \"serve/warm/concurrent\": {{\"mean_ms\": {conc_mean:.3}, ",
            "\"p50_ms\": {conc_p50:.3}, \"p99_ms\": {conc_p99:.3}, ",
            "\"requests\": {total}, \"wall_s\": {wall_secs:.3}, ",
            "\"rps\": {rps:.1}}}\n",
            "  }}\n",
            "}}"
        ),
        clients = CLIENTS,
        per_client = REQUESTS_PER_CLIENT,
        tasks = TASKS.len(),
        cold_mean = cold_mean,
        cold_p50 = cold_p50,
        cold_p99 = cold_p99,
        warm_mean = warm_mean,
        warm_p50 = warm_p50,
        warm_p99 = warm_p99,
        conc_mean = conc_mean,
        conc_p50 = conc_p50,
        conc_p99 = conc_p99,
        total = total,
        wall_secs = wall_secs,
        rps = rps,
    );
}
