//! The `chromata` binary: parse, run, print, exit.

fn main() {
    // chromata-lint: allow(D2): process entry point — argv is the CLI's input, read exactly once
    let args: Vec<String> = std::env::args().skip(1).collect();
    match chromata_cli::parse(&args).and_then(chromata_cli::run) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
