//! `chromata chaos` — randomized end-to-end fault campaigns against the
//! serving stack.
//!
//! A campaign replays a seeded mutation-fuzzed task stream (the same
//! generator as `chromata fuzz`) through a live [`Server`] backed by an
//! in-process shard pool, while a [`FaultSchedule`] fires composed
//! faults across every seam the production stack has:
//!
//! * **persist** — ENOSPC / short-write / kill-point injected into the
//!   real snapshot path ([`PersistChaos`]);
//! * **shard** — partitions, stalls, mid-response kills, and
//!   corrupt-but-checksum-valid artifacts ([`ChaosShardIo`]);
//! * **net** — connection floods, slow-loris holds, and malformed
//!   bursts over real TCP against the admission layer;
//! * **signal** — a SIGTERM delivered through the `chromata-signal`
//!   watcher, followed by a warm restart from the cache directory.
//!
//! After every round the campaign asserts the standing invariants: the
//! served verdict and evidence digest match a clean oracle run, the
//! service answered within a bounded recovery deadline, and at the end
//! the cache directory audits clean. Any breach fails the campaign
//! (nonzero exit), and the whole run replays exactly from its seed.
//!
//! This module (like `serve`/`shard`) is exempt from the socket- and
//! clock-confinement lint rules D4/D2: driving real connections and
//! timing recovery is its purpose.

use std::fmt::Write as _;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use chromata::topology::govern::Stopwatch;
use chromata::{
    analyze_governed, audit_cache_dir, clear_decision_cache, clear_remote, clear_stage_caches,
    configure_remote, persist_failures, store_read_through, Budget, CancelToken, ChaosShardIo,
    FaultKind, FaultSchedule, InProcessShards, NetFault, PersistChaos, PlannedFault, RemotePolicy,
    ShardIo, Verdict,
};
use chromata_task::{mutate_task, Task};

use crate::app::CliError;
use crate::registry;
use crate::serve::{request_line, ServeOptions, Server, ShutdownHandle};

/// Base library tasks the mutation stream is derived from: one
/// solvable, one unsolvable-by-homology, one solvable-after-splitting —
/// so faults land on every pipeline shape.
const BASE_TASKS: [&str; 3] = ["identity", "consensus", "hourglass"];

/// Hard per-round recovery deadline: a faulted service must produce the
/// round's correct verdict within this window or the round breaches.
const RECOVERY_DEADLINE_MS: u64 = 30_000;

/// Connections in a flood burst.
const FLOOD_CONNECTIONS: usize = 8;

/// Lines in a malformed burst.
const MALFORMED_LINES: usize = 4;

/// Per-request socket timeout (seconds) used by campaign probes.
const PROBE_TIMEOUT_SECS: u64 = 10;

/// Tuning for one `chromata chaos` campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosOptions {
    /// Seed for both the task mutator and the fault schedule.
    pub seed: u64,
    /// Rounds to run (one mutant task per round).
    pub rounds: usize,
    /// Enabled fault families.
    pub kinds: Vec<FaultKind>,
    /// In-process shard pool size.
    pub shards: usize,
    /// Cache directory (a fresh temp directory when absent).
    pub cache_dir: Option<PathBuf>,
}

/// One running server plus its signal watcher.
struct Daemon {
    server: Server,
    addr: String,
    handle: ShutdownHandle,
    watch: Option<chromata_signal::SignalWatch>,
}

impl Daemon {
    fn boot(dir: &Path, shards: usize) -> Result<Daemon, CliError> {
        let server = Server::start(ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            analysis_slots: None,
            queue: None,
            max_payload: crate::wire::DEFAULT_MAX_PAYLOAD,
            budget_ms: None,
            max_states: usize::MAX,
            cache_dir: Some(dir.to_path_buf()),
            // Persistence is driven explicitly (`op: "persist"`) so the
            // schedule, not a background cadence, decides when the
            // armed persist fault fires.
            persist_secs: 0,
            // A short idle timeout bounds how long a slow-loris socket
            // can pin a worker.
            idle_timeout_secs: 1,
        })?;
        let _ = shards; // the pool is process-wide; recorded for symmetry
        let addr = server.local_addr().to_string();
        let handle = server.shutdown_handle();
        let watch = if chromata_signal::supported() {
            let on_signal = server.shutdown_handle();
            chromata_signal::watch_termination(move |_sig| on_signal.request())
        } else {
            None
        };
        Ok(Daemon {
            server,
            addr,
            handle,
            watch,
        })
    }

    /// Delivers a SIGTERM through the watcher (the real signal path);
    /// degrades to a direct shutdown request where signals are
    /// unsupported. Returns whether the signal path was exercised.
    fn terminate(&self) -> bool {
        if let Some(watch) = &self.watch {
            // The watcher publishes its thread id asynchronously right
            // after boot; poll briefly.
            for _ in 0..200 {
                if watch.deliver(chromata_signal::SIGTERM) {
                    return true;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        self.handle.request();
        false
    }

    /// Joins the server (final persist included) and the watcher.
    fn join(self) -> String {
        let summary = self.server.wait();
        if let Some(watch) = self.watch {
            watch.stop();
        }
        summary
    }
}

fn json_object(entries: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn verdict_label(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Solvable { .. } => "SOLVABLE",
        Verdict::Unsolvable { .. } => "UNSOLVABLE",
        Verdict::Unknown { .. } => "UNKNOWN",
    }
}

/// The wire line analyzing `task` inline (mutants are not registry
/// names, so they travel as full task objects).
fn analyze_line(task: &Task) -> Result<String, CliError> {
    let value =
        serde_json::to_value(task).map_err(|e| CliError(format!("chaos: serialize task: {e}")))?;
    serde_json::to_string(&json_object(vec![
        ("op", serde_json::Value::String("analyze".to_owned())),
        ("task", value),
    ]))
    .map_err(|e| CliError(format!("chaos: serialize request: {e}")))
}

/// Sends `line` until a final answer arrives (honoring overload retry
/// hints and riding out transport errors from in-flight restarts) or
/// the round's recovery deadline passes. Returns the response plus the
/// elapsed milliseconds.
fn request_with_recovery(
    addr: &str,
    line: &str,
    deadline_ms: u64,
) -> Result<(String, u64), String> {
    let clock = Stopwatch::start();
    let mut attempt: u32 = 0;
    loop {
        let elapsed_ms = clock.elapsed().as_millis() as u64;
        if elapsed_ms > deadline_ms {
            return Err(format!(
                "no final answer within the {deadline_ms} ms recovery deadline"
            ));
        }
        let hint = match request_line(addr, line, PROBE_TIMEOUT_SECS) {
            Ok(response) => match crate::wire::overload_retry_hint_of(&response) {
                None => return Ok((response, clock.elapsed().as_millis() as u64)),
                hint => hint,
            },
            Err(_) => None,
        };
        std::thread::sleep(Duration::from_millis(
            crate::wire::retry_backoff_ms(attempt, hint).min(250),
        ));
        attempt = attempt.saturating_add(1);
    }
}

/// Extracts `(verdict, evidence_digest)` from an analyze response.
fn verdict_of(response: &str) -> Option<(String, String)> {
    let doc: serde_json::Value = serde_json::from_str(response).ok()?;
    let serde_json::Value::String(verdict) = &doc["verdict"] else {
        return None;
    };
    let serde_json::Value::String(digest) = &doc["evidence_digest"] else {
        return None;
    };
    Some((verdict.clone(), digest.clone()))
}

/// Applies one net fault over real TCP. Slow-loris sockets are returned
/// to the caller, which holds them across the round.
fn apply_net_fault(addr: &str, fault: NetFault, held: &mut Vec<TcpStream>) {
    match fault {
        NetFault::Flood => {
            for _ in 0..FLOOD_CONNECTIONS {
                let _ = request_line(addr, r#"{"op":"ping"}"#, 2);
            }
        }
        NetFault::SlowLoris => {
            if let Ok(mut stream) = TcpStream::connect(addr) {
                // A partial request line, then silence: the worker must
                // cut the connection off at its read deadline, not hang.
                let _ = stream.write_all(br#"{"op":"ana"#);
                let _ = stream.flush();
                held.push(stream);
            }
        }
        NetFault::MalformedBurst => {
            for i in 0..MALFORMED_LINES {
                let _ = request_line(addr, &format!("{{malformed line {i}"), 2);
            }
        }
    }
}

/// Runs one campaign; the returned report is the command's stdout.
///
/// # Errors
///
/// Returns a [`CliError`] naming every invariant breach (wrong verdict,
/// digest mismatch, blown recovery deadline, dirty cache) — the
/// driver's exit is nonzero exactly when the campaign found one.
pub fn run_campaign(opts: &ChaosOptions) -> Result<String, CliError> {
    if opts.rounds == 0 {
        return Err(CliError("chaos: --rounds must be at least 1".to_owned()));
    }
    if opts.shards == 0 {
        return Err(CliError("chaos: --shards must be at least 1".to_owned()));
    }
    let bases: Vec<Task> = BASE_TASKS
        .iter()
        .map(|name| {
            registry::find(name)
                .ok_or_else(|| CliError(format!("chaos: library task `{name}` missing")))
        })
        .collect::<Result<_, _>>()?;

    // Oracle pass: the same stream, clean process, purely local — the
    // ground truth every faulted round must reproduce.
    clear_remote();
    clear_decision_cache();
    clear_stage_caches();
    let budget = Budget::unlimited();
    let cancel = CancelToken::new();
    let mut stream: Vec<(Task, String, String)> = Vec::with_capacity(opts.rounds);
    for round in 0..opts.rounds {
        let base = &bases[round % bases.len()];
        let mutant = mutate_task(base, opts.seed, round as u64);
        let analysis = analyze_governed(&mutant, Default::default(), &budget, &cancel);
        let label = verdict_label(&analysis.verdict).to_owned();
        let digest = format!("{:016x}", analysis.evidence.deterministic_digest());
        stream.push((mutant, label, digest));
    }

    // Campaign: cold caches, chaos seams installed, live server.
    clear_decision_cache();
    clear_stage_caches();
    let dir = opts.cache_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("chromata-chaos-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    let persist_chaos = PersistChaos::install();
    let shard_io = Arc::new(ChaosShardIo::new(Arc::new(InProcessShards::new(
        opts.shards,
    ))));
    configure_remote(
        Arc::clone(&shard_io) as Arc<dyn ShardIo>,
        RemotePolicy::default(),
    );
    let schedule = FaultSchedule::new(opts.seed, &opts.kinds);

    let mut breaches: Vec<String> = Vec::new();
    let mut fired_by_kind: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let mut parity_ok = 0usize;
    let mut recoveries = 0u64;
    let mut max_recovery_ms = 0u64;
    let mut restarts = 0u64;
    let mut signal_path_restarts = 0u64;
    let mut held_loris: Vec<TcpStream> = Vec::new();

    // `None` after a failed warm restart: the campaign stops there and
    // reports the breach rather than cascading one per round.
    let mut daemon: Option<Daemon> = Some(Daemon::boot(&dir, opts.shards)?);
    for (round, (mutant, want_verdict, want_digest)) in stream.iter().enumerate() {
        // Last round's slow-loris sockets are released here; their EOF
        // mid-line is itself served as a (malformed) request.
        held_loris.clear();
        let seam_fired_before = persist_chaos.fired() + shard_io.fired();
        let plan = schedule.plan(round as u64, opts.shards);
        let clock = Stopwatch::start();
        let mut faults_this_round = 0u64;
        for fault in &plan {
            *fired_by_kind.entry(fault.kind().label()).or_insert(0) += 1;
            faults_this_round += 1;
            match fault {
                PlannedFault::Persist(persist_fault) => {
                    let Some(live) = daemon.as_ref() else {
                        continue;
                    };
                    persist_chaos.arm(*persist_fault);
                    // Fire it through the daemon's real persist path:
                    // the armed save must fail without wedging…
                    match request_line(&live.addr, r#"{"op":"persist"}"#, PROBE_TIMEOUT_SECS) {
                        Ok(response) if response.contains("persist failed") => {}
                        Ok(response) => breaches.push(format!(
                            "round {round}: armed {} did not surface a persist failure: {response}",
                            persist_fault.label()
                        )),
                        Err(e) => breaches
                            .push(format!("round {round}: persist probe failed outright: {e}")),
                    }
                    if !store_read_through() {
                        breaches.push(format!(
                            "round {round}: store not read-through after a failed snapshot"
                        ));
                    }
                    // …and the next cadence, fault cleared, must heal.
                    match request_line(&live.addr, r#"{"op":"persist"}"#, PROBE_TIMEOUT_SECS) {
                        Ok(response) if response.contains(r#""op":"persist""#) => {}
                        Ok(response) => breaches.push(format!(
                            "round {round}: persist did not heal after the fault cleared: {response}"
                        )),
                        Err(e) => breaches.push(format!(
                            "round {round}: healing persist failed outright: {e}"
                        )),
                    }
                }
                PlannedFault::Shard { shard, fault } => {
                    shard_io.arm(*shard, *fault);
                }
                PlannedFault::Net(net_fault) => {
                    if let Some(live) = daemon.as_ref() {
                        apply_net_fault(&live.addr, *net_fault, &mut held_loris);
                    }
                }
                PlannedFault::Signal => {
                    let Some(old) = daemon.take() else { continue };
                    let via_signal = old.terminate();
                    let _ = old.join();
                    restarts += 1;
                    signal_path_restarts += u64::from(via_signal);
                    match Daemon::boot(&dir, opts.shards) {
                        Ok(next) => daemon = Some(next),
                        Err(e) => {
                            breaches.push(format!("round {round}: warm restart failed: {e}"));
                        }
                    }
                }
            }
        }
        // The round's real request must come back correct within the
        // recovery deadline, whatever the schedule just did.
        let Some(live) = daemon.as_ref() else {
            breaches.push(format!(
                "round {round} ({}): no live server after a failed restart",
                mutant.name()
            ));
            break;
        };
        let line = match analyze_line(mutant) {
            Ok(line) => line,
            Err(e) => {
                breaches.push(format!("round {round}: {e}"));
                continue;
            }
        };
        match request_with_recovery(&live.addr, &line, RECOVERY_DEADLINE_MS) {
            Ok((response, elapsed_ms)) => {
                match verdict_of(&response) {
                    Some((verdict, digest)) => {
                        if verdict == *want_verdict && digest == *want_digest {
                            parity_ok += 1;
                        } else {
                            breaches.push(format!(
                                "round {round} ({}): served {verdict}/{digest}, oracle {want_verdict}/{want_digest}",
                                mutant.name()
                            ));
                        }
                    }
                    None => breaches.push(format!(
                        "round {round} ({}): unparseable final response: {response}",
                        mutant.name()
                    )),
                }
                let seam_fired = persist_chaos.fired() + shard_io.fired() - seam_fired_before;
                if faults_this_round > 0 && (seam_fired > 0 || !plan.is_empty()) {
                    recoveries += 1;
                    max_recovery_ms =
                        max_recovery_ms.max(elapsed_ms.max(clock.elapsed().as_millis() as u64));
                }
            }
            Err(e) => breaches.push(format!("round {round} ({}): {e}", mutant.name())),
        }
        // One-shot discipline: a fault the round's traffic never
        // reached does not leak into the next round.
        shard_io.disarm();
        persist_chaos.disarm();
    }
    held_loris.clear();

    // Teardown: graceful shutdown (final persist), seams restored.
    let summary = match daemon.take() {
        Some(live) => {
            live.handle.request();
            live.join()
        }
        None => "serve: server lost mid-campaign".to_owned(),
    };
    PersistChaos::uninstall();
    clear_remote();

    // The surviving cache directory must audit clean: every snapshot
    // the campaign's persists (including the failed ones) left behind
    // is intact or absent, never torn.
    if dir.exists() {
        for audit in audit_cache_dir(&dir) {
            if !audit.is_clean() {
                breaches.push(format!(
                    "cache audit: {} snapshot unclean: {:?}",
                    audit.kind.name(),
                    audit.issues
                ));
            }
        }
    }
    if opts.cache_dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let mut out = String::new();
    let kinds_label: Vec<&str> = opts.kinds.iter().map(|k| k.label()).collect();
    let _ = writeln!(
        out,
        "chaos: seed {}, {} round(s), {}-shard pool, faults: {}",
        opts.seed,
        opts.rounds,
        opts.shards,
        kinds_label.join(",")
    );
    let fired: Vec<String> = fired_by_kind
        .iter()
        .map(|(kind, count)| format!("{kind} x{count}"))
        .collect();
    let _ = writeln!(
        out,
        "faults fired: {} (persist seam {}, shard seam {})",
        if fired.is_empty() {
            "none".to_owned()
        } else {
            fired.join(", ")
        },
        persist_chaos.fired(),
        shard_io.fired(),
    );
    let _ = writeln!(
        out,
        "recoveries: {recoveries}, max recovery: {max_recovery_ms} ms; \
         restarts: {restarts} ({signal_path_restarts} via SIGTERM)"
    );
    let _ = writeln!(
        out,
        "persist failures observed: {} (read-through now: {})",
        persist_failures(),
        store_read_through()
    );
    let _ = writeln!(out, "digest parity: {parity_ok}/{} ok", stream.len());
    let _ = writeln!(out, "invariant breaches: {}", breaches.len());
    let _ = writeln!(out, "{summary}");
    if breaches.is_empty() {
        Ok(out)
    } else {
        let mut message = format!("chaos: {} invariant breach(es):\n", breaches.len());
        for breach in &breaches {
            let _ = writeln!(message, "  {breach}");
        }
        let _ = write!(message, "{out}");
        Err(CliError(message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_campaign_holds_every_invariant() {
        // One seeded round per fault family keeps the test fast while
        // still driving the full boot → fault → verify → audit loop.
        let out = run_campaign(&ChaosOptions {
            seed: 3,
            rounds: 4,
            kinds: vec![FaultKind::Persist, FaultKind::Shard, FaultKind::Net],
            shards: 2,
            cache_dir: None,
        })
        .unwrap_or_else(|e| panic!("campaign breached: {e}"));
        assert!(out.contains("digest parity: 4/4 ok"), "{out}");
        assert!(out.contains("invariant breaches: 0"), "{out}");
    }

    #[test]
    fn zero_rounds_is_a_named_error() {
        let err = run_campaign(&ChaosOptions {
            seed: 1,
            rounds: 0,
            kinds: vec![FaultKind::Persist],
            shards: 1,
            cache_dir: None,
        })
        .unwrap_err();
        assert!(err.0.contains("--rounds"), "{err}");
    }
}
