//! Name → task registry for the CLI.

use chromata_task::library as lib;
use chromata_task::Task;

/// A library task entry: name, one-line description, constructor.
pub struct Entry {
    /// The name accepted on the command line.
    pub name: &'static str,
    /// One-line description shown by `chromata list`.
    pub description: &'static str,
    build: fn() -> Task,
}

impl Entry {
    /// Builds the task.
    #[must_use]
    pub fn build(&self) -> Task {
        (self.build)()
    }
}

/// All registered library tasks.
#[must_use]
pub fn entries() -> Vec<Entry> {
    vec![
        Entry {
            name: "identity",
            description: "each process outputs its input (solvable control)",
            build: || lib::identity_task(3),
        },
        Entry {
            name: "constant",
            description: "everyone outputs 0 (solvable control)",
            build: || lib::constant_task(3),
        },
        Entry {
            name: "consensus",
            description: "binary consensus, 3 processes (FLP: unsolvable)",
            build: || lib::consensus(3),
        },
        Entry {
            name: "consensus-2",
            description: "binary consensus, 2 processes (unsolvable)",
            build: lib::two_process_consensus,
        },
        Entry {
            name: "majority",
            description: "majority consensus — paper Fig. 1 (unsolvable)",
            build: lib::majority_consensus,
        },
        Entry {
            name: "hourglass",
            description: "the hourglass — paper Fig. 2 / §6.1 (unsolvable)",
            build: lib::hourglass,
        },
        Entry {
            name: "pinwheel",
            description: "the pinwheel — paper Fig. 8 / §6.2 (unsolvable)",
            build: lib::pinwheel,
        },
        Entry {
            name: "2-set-agreement",
            description: "2-set agreement, fixed inputs (unsolvable, colorless obstruction)",
            build: lib::two_set_agreement,
        },
        Entry {
            name: "adaptive-renaming",
            description: "adaptive (2p−1)-renaming (solvable)",
            build: lib::adaptive_renaming,
        },
        Entry {
            name: "renaming-5",
            description: "non-adaptive 5-renaming (solvable)",
            build: || lib::renaming(5),
        },
        Entry {
            name: "leader-election",
            description: "test-and-set as a task (unsolvable from registers)",
            build: lib::leader_election,
        },
        Entry {
            name: "approximate-agreement",
            description: "discrete approximate agreement, resolution 3 (solvable)",
            build: || lib::approximate_agreement(3),
        },
        Entry {
            name: "loop-disk",
            description: "loop agreement on a disk (solvable)",
            build: || lib::loop_agreement("loop-disk", lib::disk_complex()),
        },
        Entry {
            name: "loop-sphere",
            description: "loop agreement on the 2-sphere (solvable)",
            build: || lib::loop_agreement("loop-sphere", lib::sphere_complex()),
        },
        Entry {
            name: "loop-torus",
            description: "loop agreement on the torus, essential loop (unsolvable)",
            build: || lib::loop_agreement("loop-torus", lib::torus_complex()),
        },
        Entry {
            name: "loop-rp2",
            description: "loop agreement on the projective plane (unsolvable, torsion)",
            build: || lib::loop_agreement("loop-rp2", lib::projective_plane_complex()),
        },
        Entry {
            name: "loop-klein-torsion",
            description: "loop agreement on the Klein bottle, torsion loop (unsolvable)",
            build: || lib::loop_agreement("loop-klein-torsion", lib::klein_bottle_single_loop()),
        },
        Entry {
            name: "loop-klein-squared",
            description: "Klein bottle, doubled loop — the undecidable residue (verdict: unknown)",
            build: || lib::loop_agreement("loop-klein-squared", lib::klein_bottle_doubled_loop()),
        },
        Entry {
            name: "fig3-example",
            description: "the running example of paper Fig. 3",
            build: lib::simple_example_task,
        },
    ]
}

/// Looks a task up by registry name.
#[must_use]
pub fn find(name: &str) -> Option<Task> {
    entries()
        .into_iter()
        .find(|e| e.name == name)
        .map(|e| e.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = entries().iter().map(|e| e.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn every_entry_builds() {
        for e in entries() {
            let t = e.build();
            assert!(!t.name().is_empty());
            assert!(t.process_count() >= 2);
        }
    }

    #[test]
    fn lookup() {
        assert!(find("hourglass").is_some());
        assert!(find("nope").is_none());
    }
}
