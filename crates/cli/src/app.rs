//! CLI argument parsing and command dispatch (no external parser: the
//! grammar is four subcommands with a handful of flags).

use std::fmt::Write as _;
use std::path::PathBuf;

use chromata::{
    analyze, analyze_batch_persistent, analyze_governed, analyze_persistent, audit_cache_dir,
    clear_cache_dir, laps, persist_now, solve_act, stage_cache_stats, warm_start, ActOutcome,
    Budget, CacheDirConfig, CancelToken, PersistenceReport, PipelineOptions, Verdict,
};
use chromata_runtime::{verify_figure7, verify_figure7_with_crashes, VerifyError};
use chromata_task::Task;

use crate::registry;

/// A parsed CLI invocation.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `chromata list`
    List,
    /// `chromata analyze <task> [--act-fallback N]`
    Analyze {
        /// Registry name or path to a task JSON file.
        task: String,
        /// ACT fallback rounds for undetermined verdicts.
        act_fallback: usize,
    },
    /// `chromata explain <task> [--act-fallback N] [--json]` — the
    /// verdict plus its evidence chain: which stages ran (or replayed),
    /// what each concluded, per-stage work/wall-clock counters, and the
    /// process-wide stage-cache statistics.
    Explain {
        /// Registry name or path to a task JSON file.
        task: String,
        /// ACT fallback rounds for undetermined verdicts.
        act_fallback: usize,
        /// Emit machine-readable JSON instead of the text table.
        json: bool,
        /// Durable stage-cache directory (`--cache-dir`, falling back
        /// to `CHROMATA_CACHE_DIR`).
        cache_dir: Option<PathBuf>,
    },
    /// `chromata batch [--act-fallback N] [--cache-dir DIR]
    /// [--shards A,B,C] [--digests] [task...]` — analyze many tasks through the
    /// shared artifact store (whole library if no tasks are named), one
    /// verdict line per task. With `--shards`, stage execution fans out
    /// across the named `chromata worker` processes (degrading to local
    /// recompute on any fault; verdicts and digests are unchanged).
    Batch {
        /// Registry names or paths (empty = the whole library).
        tasks: Vec<String>,
        /// ACT fallback rounds for undetermined verdicts.
        act_fallback: usize,
        /// Durable stage-cache directory (`--cache-dir`, falling back
        /// to `CHROMATA_CACHE_DIR`).
        cache_dir: Option<PathBuf>,
        /// Worker shard addresses (`--shards`, comma-separated; empty =
        /// purely local execution).
        shards: Vec<String>,
        /// Print each task's 16-hex evidence digest (`--digests`) —
        /// the chaos CI greps these against single-machine goldens.
        digests: bool,
    },
    /// `chromata act <task> [--rounds N]`
    Act {
        /// Registry name or path to a task JSON file.
        task: String,
        /// Maximum subdivision rounds to search.
        rounds: usize,
    },
    /// `chromata export <task> [-o FILE]`
    Export {
        /// Registry name.
        task: String,
        /// Output path (stdout if absent).
        output: Option<PathBuf>,
    },
    /// `chromata inspect <task>`
    Inspect {
        /// Registry name or path to a task JSON file.
        task: String,
    },
    /// `chromata verify-fig7 <task> [--max-states N]`
    VerifyFig7 {
        /// Registry name or path to a task JSON file.
        task: String,
        /// State budget for the model checker.
        max_states: usize,
    },
    /// `chromata decide <task> [--budget-ms N] [--max-states N]
    /// [--act-rounds N] [--max-crashes N]` — the governed end-to-end
    /// decision: pipeline verdict plus crash-tolerant wait-freedom check,
    /// degrading to a structured UNKNOWN (exit 0) on budget exhaustion.
    Decide {
        /// Registry name or path to a task JSON file.
        task: String,
        /// Wall-clock budget in milliseconds (unlimited if absent).
        budget_ms: Option<u64>,
        /// State budget for the crash-injected model checker.
        max_states: usize,
        /// ACT fallback / escalation-ladder round cap.
        act_rounds: usize,
        /// Maximum crash faults injected by the wait-freedom check.
        max_crashes: usize,
        /// Durable stage-cache directory (`--cache-dir`, falling back
        /// to `CHROMATA_CACHE_DIR`).
        cache_dir: Option<PathBuf>,
    },
    /// `chromata serve [--addr A] [--threads N] [--admission N]
    /// [--queue N] [--max-payload N] [--budget-ms N] [--cache-dir DIR]
    /// [--persist-secs N] [--idle-secs N]` — the long-lived verdict
    /// daemon: newline-delimited JSON requests over TCP, a shared warm
    /// artifact store, layered admission control, and background
    /// persistence (see `crate::serve`).
    Serve {
        /// Bind address (port 0 = OS-assigned; printed on boot).
        addr: String,
        /// Worker threads (0 = available parallelism).
        threads: usize,
        /// Concurrent-analysis permits (default: one per worker).
        admission: Option<usize>,
        /// Pending-connection queue bound (default: 4 × workers).
        queue: Option<usize>,
        /// Per-request payload bound in bytes.
        max_payload: usize,
        /// Server-side per-request wall-clock cap in milliseconds.
        budget_ms: Option<u64>,
        /// Durable stage-cache directory (`--cache-dir`, falling back
        /// to `CHROMATA_CACHE_DIR`).
        cache_dir: Option<PathBuf>,
        /// Background persistence cadence in seconds (0 = off).
        persist_secs: u64,
        /// Per-connection idle read timeout in seconds.
        idle_secs: u64,
        /// Worker shard addresses (`--shards`, comma-separated): the
        /// server dispatches stage execution across them, degrading to
        /// local recompute on any fault.
        shards: Vec<String>,
        /// Hedge a straggling stage dispatch against a second shard
        /// after this many milliseconds (`--hedge-ms`; off if absent).
        hedge_ms: Option<u64>,
    },
    /// `chromata worker [--addr A] [--threads N] [--admission N]
    /// [--queue N] [--max-payload N] [--cache-dir DIR]
    /// [--persist-secs N] [--idle-secs N]` — a stage-execution shard:
    /// the same wire protocol and admission control as `serve`, booted
    /// to answer `op: "stage"` requests from a sharded server or batch.
    /// Workers never re-dispatch remotely, so a worker pool cannot
    /// recurse.
    Worker {
        /// Bind address (port 0 = OS-assigned; printed on boot).
        addr: String,
        /// Worker threads (0 = available parallelism).
        threads: usize,
        /// Concurrent-analysis permits (default: one per worker).
        admission: Option<usize>,
        /// Pending-connection queue bound (default: 4 × workers).
        queue: Option<usize>,
        /// Per-request payload bound in bytes.
        max_payload: usize,
        /// Durable stage-cache directory (`--cache-dir`, falling back
        /// to `CHROMATA_CACHE_DIR`).
        cache_dir: Option<PathBuf>,
        /// Background persistence cadence in seconds (0 = off).
        persist_secs: u64,
        /// Per-connection idle read timeout in seconds.
        idle_secs: u64,
    },
    /// `chromata request [--addr A] [--op OP] [--act-fallback N]
    /// [--budget-ms N] [--max-states N] [--retry N] [--json] [task]` —
    /// one-shot client for a running `chromata serve`.
    Request {
        /// Server address.
        addr: String,
        /// Wire op: analyze (default), ping, stats, persist, shutdown.
        op: String,
        /// Task for analyze: registry name or path to a task JSON file.
        task: Option<String>,
        /// ACT fallback rounds for undetermined verdicts.
        act_fallback: usize,
        /// Requested wall-clock budget in milliseconds.
        budget_ms: Option<u64>,
        /// Requested state budget.
        max_states: Option<usize>,
        /// Retry budget for overload rejections: each retry sleeps for
        /// the server's `retry_after_ms` hint (capped exponential
        /// backoff when the response carries none) before resending.
        retry: u32,
        /// Print the raw JSON response line instead of a summary.
        json: bool,
    },
    /// `chromata cache <stats|verify|clear> [--cache-dir DIR]` —
    /// offline maintenance of a durable stage-cache directory. `verify`
    /// exits nonzero when any snapshot is rejected, torn, or corrupt.
    Cache {
        /// `stats`, `verify`, or `clear`.
        action: CacheAction,
        /// The cache directory (`--cache-dir`, falling back to
        /// `CHROMATA_CACHE_DIR`).
        cache_dir: Option<PathBuf>,
    },
    /// `chromata fuzz [--seed N] [--rounds K] [--act-fallback N]
    /// [task...]` — the mutation-fuzzing campaign behind the
    /// incremental re-analysis claim: derive `K` seeded near-duplicate
    /// mutants of each base task (whole library if none are named),
    /// batch-analyze them through the shared per-branch artifact store,
    /// and report the stage-artifact reuse ratio plus a sample of
    /// warm-vs-cold evidence-digest parity lines.
    Fuzz {
        /// Registry names or paths (empty = the whole library).
        tasks: Vec<String>,
        /// Deterministic mutation seed: `(seed, index)` fully
        /// determines each mutant.
        seed: u64,
        /// Mutants derived per base task.
        rounds: usize,
        /// ACT fallback rounds for undetermined verdicts.
        act_fallback: usize,
    },
    /// `chromata chaos [--seed N] [--rounds K] [--faults LIST]
    /// [--shards N] [--cache-dir DIR]` — the randomized end-to-end
    /// fault campaign: replay a seeded mutation-fuzzed task stream
    /// through a live serve + in-process shard pool while a seeded
    /// schedule injects persist/shard/net/signal faults, asserting
    /// verdict and digest parity against a clean oracle run after every
    /// round (see `crate::chaos`).
    Chaos {
        /// Seed for the mutation stream and the fault schedule.
        seed: u64,
        /// Campaign rounds (one mutant per round).
        rounds: usize,
        /// Enabled fault families (`--faults persist,shard,net,signal`).
        faults: Vec<chromata::FaultKind>,
        /// In-process shard pool size.
        shards: usize,
        /// Cache directory (a fresh temp directory when absent).
        cache_dir: Option<PathBuf>,
    },
    /// `chromata lint [--deny-all] [--json] [PATH...]` — the workspace
    /// static-analysis pass (same engine as `cargo xtask lint`).
    Lint {
        /// Workspace-relative paths to lint (whole workspace if empty).
        paths: Vec<String>,
        /// Treat every primary rule as an error.
        deny_all: bool,
        /// Emit the stable machine-readable JSON document instead of
        /// rustc-style diagnostics.
        json: bool,
    },
    /// `chromata help` or `--help`
    Help,
}

/// The three offline `chromata cache` maintenance actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Print per-kind snapshot statistics.
    Stats,
    /// Audit snapshot integrity; nonzero exit on any corruption.
    Verify,
    /// Delete every snapshot (and stray temp file) in the directory.
    Clear,
}

/// Errors produced by parsing or executing a command.
#[derive(Debug, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses raw arguments (without the binary name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first malformed argument.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "analyze" => {
            let task = required(&mut it, "analyze needs a task name or file")?;
            let mut act_fallback = 0usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--act-fallback" => {
                        act_fallback = parse_number(&mut it, "--act-fallback")?;
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Analyze { task, act_fallback })
        }
        "explain" => {
            let task = required(&mut it, "explain needs a task name or file")?;
            let mut act_fallback = 0usize;
            let mut json = false;
            let mut cache_dir = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--act-fallback" => {
                        act_fallback = parse_number(&mut it, "--act-fallback")?;
                    }
                    "--json" => json = true,
                    "--cache-dir" => {
                        cache_dir = Some(PathBuf::from(required(
                            &mut it,
                            "--cache-dir needs a path",
                        )?));
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Explain {
                task,
                act_fallback,
                json,
                cache_dir,
            })
        }
        "batch" => {
            let mut tasks = Vec::new();
            let mut act_fallback = 0usize;
            let mut cache_dir = None;
            let mut shards = Vec::new();
            let mut digests = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--act-fallback" => {
                        act_fallback = parse_number(&mut it, "--act-fallback")?;
                    }
                    "--digests" => digests = true,
                    "--cache-dir" => {
                        cache_dir = Some(PathBuf::from(required(
                            &mut it,
                            "--cache-dir needs a path",
                        )?));
                    }
                    "--shards" => {
                        shards = parse_shard_list(&required(
                            &mut it,
                            "--shards needs a comma-separated address list",
                        )?)?;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError(format!("unknown flag {flag}")));
                    }
                    task => tasks.push(task.to_owned()),
                }
            }
            Ok(Command::Batch {
                tasks,
                act_fallback,
                cache_dir,
                shards,
                digests,
            })
        }
        "act" => {
            let task = required(&mut it, "act needs a task name or file")?;
            let mut rounds = 1usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--rounds" => rounds = parse_number(&mut it, "--rounds")?,
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Act { task, rounds })
        }
        "export" => {
            let task = required(&mut it, "export needs a task name")?;
            let mut output = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "-o" | "--output" => {
                        output = Some(PathBuf::from(required(&mut it, "-o needs a path")?));
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Export { task, output })
        }
        "inspect" => {
            let task = required(&mut it, "inspect needs a task name or file")?;
            if let Some(extra) = it.next() {
                return Err(CliError(format!("unexpected argument {extra}")));
            }
            Ok(Command::Inspect { task })
        }
        "verify-fig7" => {
            let task = required(&mut it, "verify-fig7 needs a task name or file")?;
            let mut max_states = 5_000_000usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--max-states" => max_states = parse_number(&mut it, "--max-states")?,
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::VerifyFig7 { task, max_states })
        }
        "decide" => {
            let task = required(&mut it, "decide needs a task name or file")?;
            let mut budget_ms = None;
            let mut max_states = 5_000_000usize;
            let mut act_rounds = 2usize;
            let mut max_crashes = 2usize;
            let mut cache_dir = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--budget-ms" => {
                        budget_ms = Some(parse_number_u64(&mut it, "--budget-ms")?);
                    }
                    "--max-states" => max_states = parse_number(&mut it, "--max-states")?,
                    "--act-rounds" => act_rounds = parse_number(&mut it, "--act-rounds")?,
                    "--max-crashes" => max_crashes = parse_number(&mut it, "--max-crashes")?,
                    "--cache-dir" => {
                        cache_dir = Some(PathBuf::from(required(
                            &mut it,
                            "--cache-dir needs a path",
                        )?));
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Decide {
                task,
                budget_ms,
                max_states,
                act_rounds,
                max_crashes,
                cache_dir,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7437".to_owned();
            let mut threads = 0usize;
            let mut admission = None;
            let mut queue = None;
            let mut max_payload = crate::wire::DEFAULT_MAX_PAYLOAD;
            let mut budget_ms = None;
            let mut cache_dir = None;
            let mut persist_secs = 30u64;
            let mut idle_secs = 30u64;
            let mut shards = Vec::new();
            let mut hedge_ms = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--addr" => addr = required(&mut it, "--addr needs HOST:PORT")?,
                    "--threads" => threads = parse_number(&mut it, "--threads")?,
                    "--admission" => admission = Some(parse_number(&mut it, "--admission")?),
                    "--queue" => queue = Some(parse_number(&mut it, "--queue")?),
                    "--max-payload" => max_payload = parse_number(&mut it, "--max-payload")?,
                    "--budget-ms" => {
                        budget_ms = Some(parse_number_u64(&mut it, "--budget-ms")?);
                    }
                    "--cache-dir" => {
                        cache_dir = Some(PathBuf::from(required(
                            &mut it,
                            "--cache-dir needs a path",
                        )?));
                    }
                    "--persist-secs" => {
                        persist_secs = parse_number_u64(&mut it, "--persist-secs")?;
                    }
                    "--idle-secs" => idle_secs = parse_number_u64(&mut it, "--idle-secs")?,
                    "--shards" => {
                        shards = parse_shard_list(&required(
                            &mut it,
                            "--shards needs a comma-separated address list",
                        )?)?;
                    }
                    "--hedge-ms" => hedge_ms = Some(parse_number_u64(&mut it, "--hedge-ms")?),
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Serve {
                addr,
                threads,
                admission,
                queue,
                max_payload,
                budget_ms,
                cache_dir,
                persist_secs,
                idle_secs,
                shards,
                hedge_ms,
            })
        }
        "worker" => {
            let mut addr = "127.0.0.1:7438".to_owned();
            let mut threads = 0usize;
            let mut admission = None;
            let mut queue = None;
            let mut max_payload = crate::wire::DEFAULT_MAX_PAYLOAD;
            let mut cache_dir = None;
            let mut persist_secs = 30u64;
            let mut idle_secs = 30u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--addr" => addr = required(&mut it, "--addr needs HOST:PORT")?,
                    "--threads" => threads = parse_number(&mut it, "--threads")?,
                    "--admission" => admission = Some(parse_number(&mut it, "--admission")?),
                    "--queue" => queue = Some(parse_number(&mut it, "--queue")?),
                    "--max-payload" => max_payload = parse_number(&mut it, "--max-payload")?,
                    "--cache-dir" => {
                        cache_dir = Some(PathBuf::from(required(
                            &mut it,
                            "--cache-dir needs a path",
                        )?));
                    }
                    "--persist-secs" => {
                        persist_secs = parse_number_u64(&mut it, "--persist-secs")?;
                    }
                    "--idle-secs" => idle_secs = parse_number_u64(&mut it, "--idle-secs")?,
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Worker {
                addr,
                threads,
                admission,
                queue,
                max_payload,
                cache_dir,
                persist_secs,
                idle_secs,
            })
        }
        "request" => {
            let mut addr = "127.0.0.1:7437".to_owned();
            let mut op = "analyze".to_owned();
            let mut task = None;
            let mut act_fallback = 0usize;
            let mut budget_ms = None;
            let mut max_states = None;
            let mut retry = 0u32;
            let mut json = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--addr" => addr = required(&mut it, "--addr needs HOST:PORT")?,
                    "--op" => op = required(&mut it, "--op needs an op name")?,
                    "--act-fallback" => {
                        act_fallback = parse_number(&mut it, "--act-fallback")?;
                    }
                    "--budget-ms" => {
                        budget_ms = Some(parse_number_u64(&mut it, "--budget-ms")?);
                    }
                    "--max-states" => max_states = Some(parse_number(&mut it, "--max-states")?),
                    "--retry" => {
                        retry = u32::try_from(parse_number(&mut it, "--retry")?)
                            .map_err(|_| CliError("--retry is out of range".to_owned()))?;
                    }
                    "--json" => json = true,
                    flag if flag.starts_with('-') => {
                        return Err(CliError(format!("unknown flag {flag}")));
                    }
                    spec => {
                        if task.is_some() {
                            return Err(CliError("request takes at most one task".to_owned()));
                        }
                        task = Some(spec.to_owned());
                    }
                }
            }
            if op == "analyze" && task.is_none() {
                return Err(CliError(
                    "request needs a task name or file (or --op ping/stats/persist/shutdown)"
                        .to_owned(),
                ));
            }
            if op != "analyze" && task.is_some() {
                return Err(CliError(format!("op `{op}` does not take a task")));
            }
            Ok(Command::Request {
                addr,
                op,
                task,
                act_fallback,
                budget_ms,
                max_states,
                retry,
                json,
            })
        }
        "cache" => {
            let action = match required(&mut it, "cache needs an action: stats, verify or clear")?
                .as_str()
            {
                "stats" => CacheAction::Stats,
                "verify" => CacheAction::Verify,
                "clear" => CacheAction::Clear,
                other => {
                    return Err(CliError(format!(
                        "unknown cache action `{other}`; expected stats, verify or clear"
                    )))
                }
            };
            let mut cache_dir = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--cache-dir" => {
                        cache_dir = Some(PathBuf::from(required(
                            &mut it,
                            "--cache-dir needs a path",
                        )?));
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Cache { action, cache_dir })
        }
        "fuzz" => {
            let mut tasks = Vec::new();
            let mut seed = 1u64;
            let mut rounds = 16usize;
            let mut act_fallback = 0usize;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--seed" => seed = parse_number_u64(&mut it, "--seed")?,
                    "--rounds" => rounds = parse_number(&mut it, "--rounds")?,
                    "--act-fallback" => {
                        act_fallback = parse_number(&mut it, "--act-fallback")?;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError(format!("unknown flag {flag}")));
                    }
                    task => tasks.push(task.to_owned()),
                }
            }
            if rounds == 0 {
                return Err(CliError("--rounds must be at least 1".to_owned()));
            }
            Ok(Command::Fuzz {
                tasks,
                seed,
                rounds,
                act_fallback,
            })
        }
        "chaos" => {
            let mut seed = 1u64;
            let mut rounds = 20usize;
            let mut faults = chromata::ALL_FAULT_KINDS.to_vec();
            let mut shards = 3usize;
            let mut cache_dir = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => seed = parse_number_u64(&mut it, "--seed")?,
                    "--rounds" => rounds = parse_number(&mut it, "--rounds")?,
                    "--faults" => {
                        let spec = required(
                            &mut it,
                            "--faults needs a comma-separated list (persist,shard,net,signal)",
                        )?;
                        faults = chromata::parse_fault_kinds(&spec).map_err(CliError)?;
                    }
                    "--shards" => shards = parse_number(&mut it, "--shards")?,
                    "--cache-dir" => {
                        cache_dir = Some(PathBuf::from(required(
                            &mut it,
                            "--cache-dir needs a path",
                        )?));
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            if rounds == 0 {
                return Err(CliError("--rounds must be at least 1".to_owned()));
            }
            Ok(Command::Chaos {
                seed,
                rounds,
                faults,
                shards,
                cache_dir,
            })
        }
        "lint" => {
            let mut paths = Vec::new();
            let mut deny_all = false;
            let mut json = false;
            for arg in it {
                match arg.as_str() {
                    "--deny-all" => deny_all = true,
                    "--json" => json = true,
                    flag if flag.starts_with('-') => {
                        return Err(CliError(format!("unknown flag {flag}")));
                    }
                    path => paths.push(path.to_owned()),
                }
            }
            Ok(Command::Lint {
                paths,
                deny_all,
                json,
            })
        }
        other => Err(CliError(format!(
            "unknown command {other}; try `chromata help`"
        ))),
    }
}

/// Splits a `--shards` value into its non-empty `host:port` entries.
fn parse_shard_list(value: &str) -> Result<Vec<String>, CliError> {
    let shards: Vec<String> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if shards.is_empty() {
        return Err(CliError(
            "--shards needs at least one HOST:PORT address".to_owned(),
        ));
    }
    Ok(shards)
}

/// Builds an ordered JSON object from string keys (the vendored
/// `serde_json` has no object-literal macro).
fn json_object(entries: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn required(it: &mut std::slice::Iter<'_, String>, msg: &str) -> Result<String, CliError> {
    it.next().cloned().ok_or_else(|| CliError(msg.to_owned()))
}

fn parse_number(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, CliError> {
    let raw = required(it, &format!("{flag} needs a number"))?;
    raw.parse()
        .map_err(|_| CliError(format!("{flag}: `{raw}` is not a number")))
}

/// Parses a flag value as `u64` directly — never through `usize` — so
/// 32-bit targets keep the full range and overflow is an explicit
/// error instead of a silent truncation.
fn parse_number_u64(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, CliError> {
    let raw = required(it, &format!("{flag} needs a number"))?;
    raw.parse::<u64>().map_err(|e| match e.kind() {
        std::num::IntErrorKind::PosOverflow => CliError(format!(
            "{flag}: `{raw}` is out of range (maximum {})",
            u64::MAX
        )),
        _ => CliError(format!("{flag}: `{raw}` is not a number")),
    })
}

/// Renders a server response line as human-readable text. Server-side
/// errors become a nonzero-exit [`CliError`]; non-analyze responses
/// pass through as raw JSON.
fn summarize_response(raw: &str) -> Result<String, CliError> {
    use serde_json::Value;
    let doc: Value = serde_json::from_str(raw)
        .map_err(|e| CliError(format!("unparseable server response ({e}): {raw}")))?;
    if doc["status"] == Value::String("error".to_owned()) {
        let msg = match &doc["error"] {
            Value::String(s) => s.clone(),
            _ => raw.to_owned(),
        };
        return Err(CliError(format!("server error: {msg}")));
    }
    if doc["op"] != Value::String("analyze".to_owned()) {
        return Ok(format!("{raw}\n"));
    }
    let mut out = String::new();
    match (&doc["detail"], &doc["verdict"]) {
        (Value::String(detail), _) => {
            let _ = writeln!(out, "verdict: {detail}");
        }
        (_, Value::String(verdict)) => {
            let _ = writeln!(out, "verdict: {verdict}");
        }
        _ => return Ok(format!("{raw}\n")),
    }
    if let Value::String(reason) = &doc["reason"] {
        let _ = writeln!(out, "  {reason}");
    }
    if let (Value::String(decided_by), Value::String(digest)) =
        (&doc["decided_by"], &doc["evidence_digest"])
    {
        let _ = writeln!(out, "decided by: {decided_by}; evidence digest: {digest}");
    }
    // The vendored parser reads non-negative integers back as `Int`.
    match &doc["retry_after_ms"] {
        Value::Int(ms) => {
            let _ = writeln!(out, "retry after: {ms} ms");
        }
        Value::UInt(ms) => {
            let _ = writeln!(out, "retry after: {ms} ms");
        }
        _ => {}
    }
    Ok(out)
}

/// Appends the persistence bookkeeping lines a command prints when a
/// durable cache directory is active (restores, snapshot writes, and
/// non-fatal save failures).
fn cache_report_lines(out: &mut String, config: &CacheDirConfig, report: &PersistenceReport) {
    let Some(dir) = config.dir() else { return };
    if let Some(loaded) = &report.loaded {
        let _ = writeln!(
            out,
            "cache: restored {} artifact(s) from {} ({} rejected, {} torn, {} corrupt)",
            loaded.restored,
            dir.display(),
            loaded.rejected_snapshots,
            loaded.torn_entries,
            loaded.corrupt_entries
        );
    }
    if let Some(saved) = &report.saved {
        let _ = writeln!(
            out,
            "cache: persisted {} entr{} across {} snapshot(s) to {}",
            saved.entries_written,
            if saved.entries_written == 1 {
                "y"
            } else {
                "ies"
            },
            saved.files_written,
            dir.display()
        );
    }
    if let Some(err) = &report.save_error {
        // Persistence failures never poison a verdict: warn and go on.
        let _ = writeln!(out, "cache: WARNING — snapshot not written: {err}");
    }
}

/// Loads a task by registry name or from a JSON file path.
///
/// # Errors
///
/// Returns a [`CliError`] if neither resolution succeeds.
pub fn load_task(spec: &str) -> Result<Task, CliError> {
    if let Some(t) = registry::find(spec) {
        return Ok(t);
    }
    if spec.ends_with(".json") || std::path::Path::new(spec).exists() {
        let raw = std::fs::read_to_string(spec)
            .map_err(|e| CliError(format!("cannot read {spec}: {e}")))?;
        return serde_json::from_str(&raw)
            .map_err(|e| CliError(format!("cannot parse {spec}: {e}")));
    }
    Err(CliError(format!(
        "`{spec}` is neither a library task nor a readable file; try `chromata list`"
    )))
}

/// Executes a command, returning its stdout text.
///
/// # Errors
///
/// Returns a [`CliError`] on any failure (unknown task, I/O, budget).
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(HELP.to_owned()),
        Command::List => {
            let mut out = String::new();
            for e in registry::entries() {
                let _ = writeln!(out, "{:<24} {}", e.name, e.description);
            }
            Ok(out)
        }
        Command::Analyze { task, act_fallback } => {
            let t = load_task(&task)?;
            let analysis = analyze(
                &t,
                PipelineOptions {
                    act_fallback_rounds: act_fallback,
                },
            );
            let mut out = String::new();
            let _ = writeln!(out, "{t}");
            let lap_list = laps(&t);
            let _ = writeln!(
                out,
                "articulation points: {}; split steps: {}; O' components: {}",
                lap_list.len(),
                analysis.split.steps.len(),
                analysis.split.task.output().connected_components().len()
            );
            match &analysis.verdict {
                Verdict::Solvable { certificate } => {
                    let _ = writeln!(out, "verdict: SOLVABLE\n  {certificate}");
                }
                Verdict::Unsolvable { obstruction } => {
                    let _ = writeln!(out, "verdict: UNSOLVABLE\n  {obstruction}");
                }
                Verdict::Unknown { reason } => {
                    let _ = writeln!(out, "verdict: UNKNOWN\n  {reason}");
                }
            }
            Ok(out)
        }
        Command::Explain {
            task,
            act_fallback,
            json,
            cache_dir,
        } => {
            let t = load_task(&task)?;
            let cache_config = CacheDirConfig::resolve(cache_dir);
            let (analysis, persistence) = analyze_persistent(
                &t,
                PipelineOptions {
                    act_fallback_rounds: act_fallback,
                },
                &cache_config,
            );
            if json {
                use serde_json::Value;
                let stages: Vec<Value> = analysis
                    .evidence
                    .stages
                    .iter()
                    .map(|s| {
                        json_object(vec![
                            ("stage", Value::String(s.stage.to_owned())),
                            ("detail", Value::String(s.detail.clone())),
                            ("work", Value::UInt(s.work)),
                            ("cache", Value::String(s.cache.label().to_owned())),
                            ("origin", Value::String(s.origin.label())),
                            ("reused", Value::Bool(s.reused)),
                            ("subkeys", Value::UInt(s.subkeys as u64)),
                            ("wall_ms", Value::Float(s.wall.as_secs_f64() * 1e3)),
                        ])
                    })
                    .collect();
                let caches: Vec<Value> = stage_cache_stats()
                    .iter()
                    .map(|(kind, stats)| {
                        json_object(vec![
                            ("cache", Value::String(kind.name().to_owned())),
                            ("hits", Value::UInt(stats.hits)),
                            ("reuse_hits", Value::UInt(stats.reuse_hits)),
                            ("misses", Value::UInt(stats.misses)),
                            ("evictions", Value::UInt(stats.evictions)),
                        ])
                    })
                    .collect();
                let doc = json_object(vec![
                    ("task", Value::String(t.name().to_owned())),
                    ("verdict", Value::String(format!("{}", analysis.verdict))),
                    (
                        "decided_by",
                        Value::String(analysis.evidence.decided_by.to_owned()),
                    ),
                    (
                        "evidence_digest",
                        Value::String(format!("{:016x}", analysis.evidence.deterministic_digest())),
                    ),
                    ("stages", Value::Array(stages)),
                    ("stage_caches", Value::Array(caches)),
                ]);
                return serde_json::to_string_pretty(&doc)
                    .map(|mut s| {
                        s.push('\n');
                        s
                    })
                    .map_err(|e| CliError(format!("serialize: {e}")));
            }
            let mut out = String::new();
            let _ = writeln!(out, "{t}");
            let _ = writeln!(out, "verdict: {}", analysis.verdict);
            let _ = write!(out, "{}", analysis.evidence);
            let _ = writeln!(
                out,
                "evidence digest: {:016x}",
                analysis.evidence.deterministic_digest()
            );
            let _ = writeln!(out, "stage caches:");
            for (kind, stats) in stage_cache_stats() {
                let _ = writeln!(
                    out,
                    "  {:<13} hits {:>6} (reuse {:>6})  misses {:>6}  evictions {:>6}  restored {:>6}  recovered {:>3}",
                    kind.name(),
                    stats.hits,
                    stats.reuse_hits,
                    stats.misses,
                    stats.evictions,
                    stats.restored,
                    stats.recovery_events()
                );
            }
            cache_report_lines(&mut out, &cache_config, &persistence);
            Ok(out)
        }
        Command::Batch {
            tasks,
            act_fallback,
            cache_dir,
            shards,
            digests,
        } => {
            let specs: Vec<String> = if tasks.is_empty() {
                registry::entries()
                    .iter()
                    .map(|e| e.name.to_owned())
                    .collect()
            } else {
                tasks
            };
            let loaded: Vec<Task> = specs
                .iter()
                .map(|s| load_task(s))
                .collect::<Result<_, _>>()?;
            if !shards.is_empty() {
                crate::shard::configure_shards(&shards, chromata::RemotePolicy::default())?;
            }
            let cache_config = CacheDirConfig::resolve(cache_dir);
            let (analyses, persistence) = analyze_batch_persistent(
                &loaded,
                PipelineOptions {
                    act_fallback_rounds: act_fallback,
                },
                &cache_config,
            );
            let mut out = String::new();
            for (spec, a) in specs.iter().zip(&analyses) {
                if digests {
                    let _ = writeln!(
                        out,
                        "{:<24} {:016x} decided by {:<9} {}",
                        spec,
                        a.evidence.deterministic_digest(),
                        a.evidence.decided_by,
                        a.verdict
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{:<24} decided by {:<9} {}",
                        spec, a.evidence.decided_by, a.verdict
                    );
                }
            }
            if let Some(stats) = chromata::remote_stats() {
                let _ = writeln!(
                    out,
                    "shards: {} dispatched, {} fetched, {} retried, {} hedged, {} local fallback(s)",
                    stats.dispatched, stats.fetched, stats.retries, stats.hedges, stats.local_fallbacks
                );
                chromata::clear_remote();
            }
            cache_report_lines(&mut out, &cache_config, &persistence);
            Ok(out)
        }
        Command::Fuzz {
            tasks,
            seed,
            rounds,
            act_fallback,
        } => {
            use chromata::topology::govern::Stopwatch;
            let specs: Vec<String> = if tasks.is_empty() {
                registry::entries()
                    .iter()
                    .map(|e| e.name.to_owned())
                    .collect()
            } else {
                tasks
            };
            let bases: Vec<Task> = specs
                .iter()
                .map(|s| load_task(s))
                .collect::<Result<_, _>>()?;
            let options = PipelineOptions {
                act_fallback_rounds: act_fallback,
            };
            // Start cold so the reported ratio is the campaign's own,
            // not inherited from an earlier command in this process.
            chromata::clear_decision_cache();
            let total = bases.len() * rounds;
            let sample_step = (total / 8).max(1);
            let watch = Stopwatch::start();
            let mut analyzed = 0usize;
            let mut sampled: Vec<(Task, u64)> = Vec::new();
            for base in &bases {
                for k in 0..rounds {
                    let mutant = chromata_task::mutate_task(base, seed, k as u64);
                    let a = analyze(&mutant, options);
                    if analyzed.is_multiple_of(sample_step) {
                        sampled.push((mutant, a.evidence.deterministic_digest()));
                    }
                    analyzed += 1;
                }
            }
            let elapsed = watch.elapsed();
            let (mut reuse, mut granular_lookups) = (0u64, 0u64);
            for (kind, stats) in stage_cache_stats() {
                if matches!(
                    kind,
                    chromata::ArtifactKind::LinkGraphs | chromata::ArtifactKind::Presentations
                ) {
                    reuse += stats.reuse_hits;
                    granular_lookups += stats.lookups;
                }
            }
            let mut out = String::new();
            let secs = elapsed.as_secs_f64();
            let rate = if secs > 0.0 {
                analyzed as f64 / secs
            } else {
                f64::INFINITY
            };
            let _ = writeln!(
                out,
                "fuzz: seed {seed}, {} base task(s) x {rounds} mutant(s) = {analyzed} analyses in {:.0} ms ({rate:.0} task/s)",
                bases.len(),
                secs * 1e3,
            );
            let ratio = if granular_lookups > 0 {
                reuse as f64 / granular_lookups as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "stage-artifact reuse: {reuse} reuse hit(s) / {granular_lookups} granular lookup(s) = ratio {ratio:.3}",
            );
            // Warm-vs-cold digest parity on a spread sample: clearing
            // every cache and re-deciding must reproduce each sampled
            // evidence digest byte-for-byte.
            let mut parity_ok = 0usize;
            for (mutant, warm) in &sampled {
                chromata::clear_decision_cache();
                let cold = analyze(mutant, options).evidence.deterministic_digest();
                let verdict = if cold == *warm { "ok" } else { "MISMATCH" };
                parity_ok += usize::from(cold == *warm);
                let _ = writeln!(
                    out,
                    "digest-parity {} warm {warm:016x} cold {cold:016x} {verdict}",
                    mutant.name(),
                );
            }
            let _ = writeln!(out, "digest parity: {parity_ok}/{} ok", sampled.len());
            if parity_ok != sampled.len() {
                return Err(CliError(format!(
                    "digest parity failed for {} of {} sampled mutant(s):\n{out}",
                    sampled.len() - parity_ok,
                    sampled.len()
                )));
            }
            Ok(out)
        }
        Command::Chaos {
            seed,
            rounds,
            faults,
            shards,
            cache_dir,
        } => crate::chaos::run_campaign(&crate::chaos::ChaosOptions {
            seed,
            rounds,
            kinds: faults,
            shards,
            cache_dir,
        }),
        Command::Act { task, rounds } => {
            let t = load_task(&task)?;
            let mut out = String::new();
            match solve_act(&t, rounds) {
                ActOutcome::Solvable { rounds, map } => {
                    let _ = writeln!(
                        out,
                        "SOLVABLE: chromatic decision map found at {rounds} round(s) ({} vertex assignments)",
                        map.len()
                    );
                }
                ActOutcome::Exhausted { max_rounds } => {
                    let _ = writeln!(
                        out,
                        "INCONCLUSIVE: no decision map up to {max_rounds} round(s) — the ACT check is only a semi-decision"
                    );
                }
                ActOutcome::Interrupted {
                    rounds_completed,
                    interrupt,
                } => {
                    let _ = writeln!(
                        out,
                        "INCONCLUSIVE: search {interrupt} after ruling out {rounds_completed} round(s)"
                    );
                }
            }
            Ok(out)
        }
        Command::Export { task, output } => {
            let t = registry::find(&task)
                .ok_or_else(|| CliError(format!("unknown library task `{task}`")))?;
            let json = serde_json::to_string_pretty(&t)
                .map_err(|e| CliError(format!("serialize: {e}")))?;
            match output {
                Some(path) => {
                    std::fs::write(&path, json)
                        .map_err(|e| CliError(format!("write {}: {e}", path.display())))?;
                    Ok(format!("wrote {}\n", path.display()))
                }
                None => Ok(json),
            }
        }
        Command::Inspect { task } => {
            let t = load_task(&task)?;
            let mut out = String::new();
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "canonical: {}; link-connected: {}",
                chromata_task::is_canonical(&t),
                t.is_link_connected()
            );
            for sigma in t.input().facets() {
                let img = t.delta().image_of(sigma);
                let h = chromata::algebra::homology(img);
                let laps = img.disconnected_link_vertices();
                let _ = writeln!(
                    out,
                    "Δ({sigma}): {} facets, {} vertices; H = (b0={}, b1={}, torsion {:?}); LAPs: {}",
                    img.facet_count(),
                    img.vertex_count(),
                    h.betti0,
                    h.betti1,
                    h.torsion1,
                    laps.len()
                );
            }
            Ok(out)
        }
        Command::VerifyFig7 { task, max_states } => {
            let t = load_task(&task)?;
            if !t.is_link_connected() {
                return Err(CliError(format!(
                    "`{}` is not link-connected: Figure 7's hypothesis (Lemma 5.3) fails — \
                     the model checker would reach a disconnected negotiation",
                    t.name()
                )));
            }
            let report = verify_figure7(&t, max_states)
                .map_err(|e| CliError(format!("exploration: {e}")))?;
            Ok(format!(
                "verified: {} participant sets, {} outcomes, {} states — all correct\n",
                report.participant_sets, report.outcomes, report.states
            ))
        }
        Command::Decide {
            task,
            budget_ms,
            max_states,
            act_rounds,
            max_crashes,
            cache_dir,
        } => {
            let t = load_task(&task)?;
            let cache_config = CacheDirConfig::resolve(cache_dir);
            let mut persistence = PersistenceReport {
                loaded: warm_start(&cache_config),
                ..PersistenceReport::default()
            };
            let mut budget = Budget::unlimited()
                .with_max_states(max_states)
                .with_max_steps(500)
                .with_max_act_rounds(act_rounds);
            if let Some(ms) = budget_ms {
                budget = budget.with_deadline_in(std::time::Duration::from_millis(ms));
            }
            let cancel = CancelToken::new();
            let analysis = analyze_governed(
                &t,
                PipelineOptions {
                    act_fallback_rounds: act_rounds,
                },
                &budget,
                &cancel,
            );
            let mut out = String::new();
            let _ = writeln!(out, "{t}");
            match &analysis.verdict {
                Verdict::Solvable { certificate } => {
                    let _ = writeln!(out, "verdict: SOLVABLE\n  {certificate}");
                }
                Verdict::Unsolvable { obstruction } => {
                    let _ = writeln!(out, "verdict: UNSOLVABLE\n  {obstruction}");
                }
                Verdict::Unknown { reason } => {
                    let _ = writeln!(out, "verdict: UNKNOWN\n  {reason}");
                }
            }
            // A solvable, link-connected three-process task is in Figure
            // 7's hypothesis: machine-check wait-freedom under crashes.
            // Budget exhaustion degrades to a structured UNKNOWN (still
            // exit 0) carrying a replayable schedule trace.
            if analysis.verdict.is_solvable() && t.process_count() == 3 && t.is_link_connected() {
                match verify_figure7_with_crashes(&t, &budget, &cancel, max_crashes) {
                    Ok(r) => {
                        let _ = writeln!(
                            out,
                            "wait-freedom: VERIFIED — {} participant sets, {} outcomes \
                             ({} with crashes), {} states, ≤{max_crashes} crash fault(s)",
                            r.participant_sets, r.outcomes, r.crashed_outcomes, r.states
                        );
                    }
                    Err(VerifyError::Explore(e)) => {
                        let _ = writeln!(out, "wait-freedom: UNKNOWN — budget exhausted: {e}");
                    }
                    Err(v @ VerifyError::Violation { .. }) => {
                        return Err(CliError(v.to_string()));
                    }
                }
            }
            match persist_now(&cache_config) {
                Some(Ok(saved)) => persistence.saved = Some(saved),
                Some(Err(error)) => persistence.save_error = Some(error),
                None => {}
            }
            cache_report_lines(&mut out, &cache_config, &persistence);
            Ok(out)
        }
        Command::Serve {
            addr,
            threads,
            admission,
            queue,
            max_payload,
            budget_ms,
            cache_dir,
            persist_secs,
            idle_secs,
            shards,
            hedge_ms,
        } => {
            use std::io::Write as _;
            if !shards.is_empty() {
                let policy = chromata::RemotePolicy {
                    hedge_after_ms: hedge_ms,
                    ..chromata::RemotePolicy::default()
                };
                crate::shard::configure_shards(&shards, policy)?;
            }
            // SIGTERM/SIGINT must be masked before the server spawns
            // its threads so they inherit the mask and delivery funnels
            // to the dedicated watcher below.
            let signals_masked = chromata_signal::block_termination();
            let server = crate::serve::Server::start(crate::serve::ServeOptions {
                addr,
                threads,
                analysis_slots: admission,
                queue,
                max_payload,
                budget_ms,
                max_states: usize::MAX,
                cache_dir,
                persist_secs,
                idle_timeout_secs: idle_secs,
            })?;
            let watch = if signals_masked {
                let handle = server.shutdown_handle();
                chromata_signal::watch_termination(move |_sig| handle.request())
            } else {
                None
            };
            // The banner goes out before the blocking wait (and is
            // flushed) so scripts can scrape an OS-assigned port.
            println!("serve: listening on {}", server.local_addr());
            if watch.is_some() {
                println!("serve: SIGTERM/SIGINT trigger graceful shutdown with persistence");
            }
            if !shards.is_empty() {
                println!("serve: dispatching stages across {} shard(s)", shards.len());
            }
            if let Some(loaded) = server.loaded() {
                println!(
                    "serve: warm-started {} artifact(s) ({} rejected, {} torn, {} corrupt)",
                    loaded.restored,
                    loaded.rejected_snapshots,
                    loaded.torn_entries,
                    loaded.corrupt_entries
                );
            }
            let _ = std::io::stdout().flush();
            let summary = server.wait();
            if let Some(watch) = watch {
                watch.stop();
            }
            Ok(format!("{summary}\n"))
        }
        Command::Worker {
            addr,
            threads,
            admission,
            queue,
            max_payload,
            cache_dir,
            persist_secs,
            idle_secs,
        } => {
            use std::io::Write as _;
            // A worker is a serve that never re-dispatches remotely:
            // stage requests run against the local store only, so a
            // pool of workers cannot recurse through each other.
            chromata::clear_remote();
            let signals_masked = chromata_signal::block_termination();
            let server = crate::serve::Server::start(crate::serve::ServeOptions {
                addr,
                threads,
                analysis_slots: admission,
                queue,
                max_payload,
                budget_ms: None,
                max_states: usize::MAX,
                cache_dir,
                persist_secs,
                idle_timeout_secs: idle_secs,
            })?;
            let watch = if signals_masked {
                let handle = server.shutdown_handle();
                chromata_signal::watch_termination(move |_sig| handle.request())
            } else {
                None
            };
            println!("worker: listening on {}", server.local_addr());
            if watch.is_some() {
                println!("worker: SIGTERM/SIGINT trigger graceful shutdown with persistence");
            }
            if let Some(loaded) = server.loaded() {
                println!(
                    "worker: warm-started {} artifact(s) ({} rejected, {} torn, {} corrupt)",
                    loaded.restored,
                    loaded.rejected_snapshots,
                    loaded.torn_entries,
                    loaded.corrupt_entries
                );
            }
            let _ = std::io::stdout().flush();
            let summary = server.wait();
            if let Some(watch) = watch {
                watch.stop();
            }
            Ok(format!("{summary}\n"))
        }
        Command::Request {
            addr,
            op,
            task,
            act_fallback,
            budget_ms,
            max_states,
            retry,
            json,
        } => {
            use serde_json::Value;
            let line = if op == "analyze" {
                let spec = task.ok_or_else(|| CliError("request needs a task".to_owned()))?;
                // A registry name travels by name; anything else is
                // loaded locally and shipped inline.
                let task_value = if registry::find(&spec).is_some() {
                    Value::String(spec)
                } else {
                    serde_json::to_value(&load_task(&spec)?)
                        .map_err(|e| CliError(format!("serialize task: {e}")))?
                };
                let mut fields = vec![
                    ("op", Value::String("analyze".to_owned())),
                    ("task", task_value),
                ];
                if act_fallback > 0 {
                    fields.push(("act_fallback", Value::UInt(act_fallback as u64)));
                }
                if let Some(ms) = budget_ms {
                    fields.push(("budget_ms", Value::UInt(ms)));
                }
                if let Some(n) = max_states {
                    fields.push(("max_states", Value::UInt(n as u64)));
                }
                serde_json::to_string(&json_object(fields))
                    .map_err(|e| CliError(format!("serialize request: {e}")))?
            } else {
                serde_json::to_string(&json_object(vec![("op", Value::String(op))]))
                    .map_err(|e| CliError(format!("serialize request: {e}")))?
            };
            let mut response = crate::serve::request_line(&addr, &line, 120)?;
            // Overload rejections carry a `retry_after_ms` hint; within
            // the --retry attempt budget, honor it (capped exponential
            // backoff when a response carries none) and resend. Final
            // verdicts — including budget-exhaustion UNKNOWNs, which
            // carry an evidence digest — are never retried.
            let mut attempt = 0u32;
            while attempt < retry {
                let Some(hint) = crate::wire::overload_retry_hint_of(&response) else {
                    break;
                };
                std::thread::sleep(std::time::Duration::from_millis(
                    crate::wire::retry_backoff_ms(attempt, Some(hint)),
                ));
                response = crate::serve::request_line(&addr, &line, 120)?;
                attempt += 1;
            }
            if json {
                return Ok(format!("{response}\n"));
            }
            summarize_response(&response)
        }
        Command::Cache { action, cache_dir } => {
            let config = CacheDirConfig::resolve(cache_dir);
            let Some(dir) = config.dir() else {
                return Err(CliError(
                    "cache needs a directory: pass --cache-dir DIR or set CHROMATA_CACHE_DIR"
                        .to_owned(),
                ));
            };
            let mut out = String::new();
            match action {
                CacheAction::Clear => {
                    let removed = clear_cache_dir(dir).map_err(|e| CliError(e.to_string()))?;
                    let _ = writeln!(
                        out,
                        "removed {removed} snapshot file(s) from {}",
                        dir.display()
                    );
                }
                CacheAction::Stats | CacheAction::Verify => {
                    let audits = audit_cache_dir(dir);
                    let mut dirty = 0usize;
                    for a in &audits {
                        let _ = writeln!(
                            out,
                            "{:<13} {:<8} entries {:>5}  capacity {:>5}  hits {:>6}  misses {:>6}  \
                             evictions {:>6}  torn {:>3}  corrupt {:>3}",
                            a.kind.name(),
                            a.status.label(),
                            a.entries,
                            a.capacity,
                            a.hits,
                            a.misses,
                            a.evictions,
                            a.torn_entries,
                            a.corrupt_entries
                        );
                        for issue in &a.issues {
                            let _ = writeln!(out, "    issue: {issue}");
                        }
                        if !a.is_clean() {
                            dirty += 1;
                        }
                    }
                    if action == CacheAction::Verify {
                        if dirty > 0 {
                            let _ = writeln!(
                                out,
                                "verify: FAILED — {dirty} snapshot(s) rejected, torn or corrupt"
                            );
                            return Err(CliError(out));
                        }
                        let _ = writeln!(out, "verify: OK — every snapshot intact");
                    }
                }
            }
            Ok(out)
        }
        Command::Lint {
            paths,
            deny_all,
            json,
        } => {
            // chromata-lint: allow(D2): the lint subcommand resolves the workspace from the invocation directory — tooling, not decision code
            let cwd = std::env::current_dir()
                .map_err(|e| CliError(format!("cannot read working directory: {e}")))?;
            let root = chromata_xtask::workspace::find_root(&cwd).ok_or_else(|| {
                CliError(format!("no workspace root found above {}", cwd.display()))
            })?;
            let config = if deny_all {
                chromata_xtask::Config::deny_all()
            } else {
                chromata_xtask::Config::default()
            };
            let report = if paths.is_empty() {
                chromata_xtask::lint_workspace(&root, &config)
            } else {
                chromata_xtask::lint_paths(&root, &paths, &config)
            }
            .map_err(|e| CliError(format!("lint failed: {e}")))?;
            if json {
                // The JSON document is the contract either way: CI
                // parses it from stdout on success and from the error
                // text on failure.
                if report.failed() {
                    return Err(CliError(report.to_json()));
                }
                return Ok(format!("{}\n", report.to_json()));
            }
            if report.failed() {
                return Err(CliError(format!("{report}")));
            }
            Ok(format!("{report}\n"))
        }
    }
}

const HELP: &str = "chromata — wait-free solvability of three-process tasks (PODC 2025)

USAGE:
    chromata <COMMAND>

COMMANDS:
    list                         list the built-in task library
    analyze <task> [--act-fallback N]
                                 run the paper's decision pipeline
    explain <task> [--act-fallback N] [--json] [--cache-dir DIR]
                                 verdict plus its evidence chain: deciding
                                 stage, per-stage work/wall-clock counters,
                                 and stage-cache statistics
    batch [--act-fallback N] [--cache-dir DIR] [--shards A,B,C] [--digests] [task...]
                                 analyze many tasks (whole library if none
                                 named) through the shared artifact store;
                                 --shards fans stage execution across worker
                                 processes (verdicts and digests unchanged)
    inspect <task>               complex statistics, homology, LAP counts
    act <task> [--rounds N]      run the Herlihy–Shavit ACT baseline
    export <task> [-o FILE]      dump a library task as JSON
    verify-fig7 <task> [--max-states N]
                                 exhaustively verify the Figure 7 algorithm
    decide <task> [--budget-ms N] [--max-states N] [--act-rounds N] [--max-crashes N]
           [--cache-dir DIR]
                                 governed verdict + crash-tolerant wait-freedom
                                 check; budget exhaustion degrades to a
                                 structured UNKNOWN with a replayable trace
    serve [--addr A] [--threads N] [--admission N] [--queue N] [--max-payload N]
          [--budget-ms N] [--cache-dir DIR] [--persist-secs N] [--idle-secs N]
          [--shards A,B,C] [--hedge-ms N]
                                 long-lived verdict daemon: newline-delimited
                                 JSON over TCP against one shared warm artifact
                                 store; overload degrades to UNKNOWN with a
                                 retry hint, never a dropped connection;
                                 --shards dispatches stage execution to worker
                                 processes with retry/hedge/local-fallback
    worker [--addr A] [--threads N] [--admission N] [--queue N] [--max-payload N]
           [--cache-dir DIR] [--persist-secs N] [--idle-secs N]
                                 a stage-execution shard: the serve protocol
                                 plus `op: \"stage\"`, answering artifacts with
                                 checksums for a sharded serve or batch
    request [--addr A] [--op OP] [--act-fallback N] [--budget-ms N]
            [--max-states N] [--retry N] [--json] [task]
                                 one-shot client for a running serve
                                 (ops: analyze, ping, stats, persist, shutdown);
                                 --retry resends after overload rejections,
                                 honoring the server's retry_after_ms hint
    cache <stats|verify|clear> [--cache-dir DIR]
                                 offline audit / maintenance of a durable
                                 stage-cache directory; `verify` exits nonzero
                                 on any rejected, torn or corrupt snapshot
    fuzz [--seed N] [--rounds K] [--act-fallback N] [task...]
                                 mutation-fuzzing campaign: analyze K seeded
                                 near-duplicate mutants per base task through
                                 the shared per-branch artifact store, then
                                 report the stage-artifact reuse ratio and
                                 warm-vs-cold evidence-digest parity samples
    chaos [--seed N] [--rounds K] [--faults LIST] [--shards N] [--cache-dir DIR]
                                 randomized end-to-end fault campaign: replay
                                 a seeded mutant stream through a live serve
                                 with injected persist/shard/net/signal faults,
                                 asserting verdict + digest parity against a
                                 clean oracle run; nonzero exit on any breach
    lint [--deny-all] [--json] [PATH...]
                                 run the workspace static-analysis rules
                                 (same engine as `cargo xtask lint`);
                                 --json emits the stable machine format
    help                         show this message

<task> is a library name (see `list`) or a path to a task JSON file.
--cache-dir (or the CHROMATA_CACHE_DIR environment variable) makes the
stage caches durable: snapshots are written atomically after each run
and reloaded — tolerating torn or corrupt records — on the next one.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parse_basic_commands() {
        assert_eq!(parse(&args(&["list"])).unwrap(), Command::List);
        assert_eq!(parse(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["--help"])).unwrap(), Command::Help);
        assert_eq!(
            parse(&args(&["analyze", "hourglass"])).unwrap(),
            Command::Analyze {
                task: "hourglass".into(),
                act_fallback: 0
            }
        );
        assert_eq!(
            parse(&args(&["act", "consensus", "--rounds", "2"])).unwrap(),
            Command::Act {
                task: "consensus".into(),
                rounds: 2
            }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&args(&["frobnicate"])).is_err());
        assert!(parse(&args(&["analyze"])).is_err());
        assert!(parse(&args(&["act", "x", "--rounds", "many"])).is_err());
        assert!(parse(&args(&["analyze", "x", "--bogus"])).is_err());
        assert!(parse(&args(&["lint", "--frobnicate"])).is_err());
    }

    #[test]
    fn parse_lint() {
        assert_eq!(
            parse(&args(&["lint"])).unwrap(),
            Command::Lint {
                paths: vec![],
                deny_all: false,
                json: false
            }
        );
        assert_eq!(
            parse(&args(&[
                "lint",
                "--deny-all",
                "--json",
                "crates/core/src/pipeline.rs"
            ]))
            .unwrap(),
            Command::Lint {
                paths: vec!["crates/core/src/pipeline.rs".into()],
                deny_all: true,
                json: true
            }
        );
    }

    #[test]
    fn run_lint_on_a_clean_file() {
        let out = run(Command::Lint {
            paths: vec!["crates/topology/src/govern.rs".into()],
            deny_all: true,
            json: false,
        })
        .unwrap();
        assert!(out.contains("1 file(s) scanned: 0 error(s)"), "{out}");
        // The machine format carries the same verdict and parses as a
        // flat JSON object with the documented top-level keys.
        let out = run(Command::Lint {
            paths: vec!["crates/topology/src/govern.rs".into()],
            deny_all: true,
            json: true,
        })
        .unwrap();
        assert!(out.starts_with("{\"schema_version\":1,"), "{out}");
        assert!(out.contains("\"errors\":0"), "{out}");
        assert!(out.contains("\"diagnostics\":["), "{out}");
    }

    #[test]
    fn run_lint_reports_seeded_violations() {
        // A temp file inside the workspace would pollute the tree, so the
        // failure path is exercised through the library instead: the CLI
        // surface is `Err` iff `Report::failed()`.
        let root =
            chromata_xtask::workspace::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
                .unwrap();
        let report =
            chromata_xtask::lint_workspace(&root, &chromata_xtask::Config::deny_all()).unwrap();
        assert!(!report.failed(), "workspace must lint clean: {report}");
    }

    #[test]
    fn run_list_and_help() {
        let list = run(Command::List).unwrap();
        assert!(list.contains("hourglass"));
        assert!(list.contains("pinwheel"));
        let help = run(Command::Help).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn run_analyze_library_tasks() {
        let out = run(Command::Analyze {
            task: "hourglass".into(),
            act_fallback: 0,
        })
        .unwrap();
        assert!(out.contains("UNSOLVABLE"), "{out}");
        let out = run(Command::Analyze {
            task: "identity".into(),
            act_fallback: 0,
        })
        .unwrap();
        assert!(out.contains("SOLVABLE"), "{out}");
    }

    #[test]
    fn parse_explain_and_batch() {
        assert_eq!(
            parse(&args(&["explain", "consensus", "--json"])).unwrap(),
            Command::Explain {
                cache_dir: None,
                task: "consensus".into(),
                act_fallback: 0,
                json: true
            }
        );
        assert_eq!(
            parse(&args(&["explain", "consensus", "--act-fallback", "2"])).unwrap(),
            Command::Explain {
                cache_dir: None,
                task: "consensus".into(),
                act_fallback: 2,
                json: false
            }
        );
        assert!(parse(&args(&["explain"])).is_err());
        assert_eq!(
            parse(&args(&["batch", "hourglass", "consensus"])).unwrap(),
            Command::Batch {
                cache_dir: None,
                tasks: vec!["hourglass".into(), "consensus".into()],
                act_fallback: 0,
                shards: vec![],
                digests: false
            }
        );
        assert_eq!(
            parse(&args(&["batch"])).unwrap(),
            Command::Batch {
                cache_dir: None,
                tasks: vec![],
                act_fallback: 0,
                shards: vec![],
                digests: false
            }
        );
        assert!(parse(&args(&["batch", "--frobnicate"])).is_err());
    }

    #[test]
    fn parse_fuzz() {
        assert_eq!(
            parse(&args(&[
                "fuzz",
                "--seed",
                "42",
                "--rounds",
                "9",
                "consensus"
            ]))
            .unwrap(),
            Command::Fuzz {
                tasks: vec!["consensus".into()],
                seed: 42,
                rounds: 9,
                act_fallback: 0,
            }
        );
        assert_eq!(
            parse(&args(&["fuzz"])).unwrap(),
            Command::Fuzz {
                tasks: vec![],
                seed: 1,
                rounds: 16,
                act_fallback: 0,
            }
        );
        assert!(parse(&args(&["fuzz", "--rounds", "0"])).is_err());
        assert!(parse(&args(&["fuzz", "--frobnicate"])).is_err());
    }

    #[test]
    fn parse_chaos() {
        assert_eq!(
            parse(&args(&["chaos"])).unwrap(),
            Command::Chaos {
                seed: 1,
                rounds: 20,
                faults: chromata::ALL_FAULT_KINDS.to_vec(),
                shards: 3,
                cache_dir: None,
            }
        );
        assert_eq!(
            parse(&args(&[
                "chaos",
                "--seed",
                "9",
                "--rounds",
                "50",
                "--faults",
                "persist,net",
                "--shards",
                "2",
                "--cache-dir",
                "/tmp/chaos",
            ]))
            .unwrap(),
            Command::Chaos {
                seed: 9,
                rounds: 50,
                faults: vec![chromata::FaultKind::Persist, chromata::FaultKind::Net],
                shards: 2,
                cache_dir: Some(PathBuf::from("/tmp/chaos")),
            }
        );
        assert!(parse(&args(&["chaos", "--rounds", "0"])).is_err());
        assert!(parse(&args(&["chaos", "--faults", "gamma-rays"])).is_err());
        assert!(parse(&args(&["chaos", "--frobnicate"])).is_err());
    }

    #[test]
    fn run_fuzz_reports_reuse_and_digest_parity() {
        let out = run(Command::Fuzz {
            tasks: vec!["consensus".into(), "identity".into()],
            seed: 7,
            rounds: 4,
            act_fallback: 0,
        })
        .unwrap();
        assert!(
            out.contains("2 base task(s) x 4 mutant(s) = 8 analyses"),
            "{out}"
        );
        // Near-duplicate mutants share per-branch artifacts, so the
        // campaign must observe a nonzero reuse ratio.
        let ratio_line = out
            .lines()
            .find(|l| l.starts_with("stage-artifact reuse:"))
            .expect("a reuse line");
        assert!(!ratio_line.contains("ratio 0.000"), "{out}");
        // Every sampled warm digest reproduces cold, and the campaign
        // says so in a greppable summary line.
        assert!(out.contains("digest-parity "), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
        let parity_line = out
            .lines()
            .find(|l| l.starts_with("digest parity:"))
            .expect("a parity summary");
        assert!(parity_line.ends_with("ok"), "{out}");
    }

    #[test]
    fn run_explain_prints_the_evidence_chain() {
        let out = run(Command::Explain {
            cache_dir: None,
            task: "consensus".into(),
            act_fallback: 0,
            json: false,
        })
        .unwrap();
        assert!(out.contains("verdict: UNSOLVABLE"), "{out}");
        assert!(out.contains("decided by: homology"), "{out}");
        for stage in [
            "canonicalize",
            "split",
            "link-graphs",
            "presentations",
            "homology",
        ] {
            assert!(out.contains(stage), "missing {stage}: {out}");
        }
        assert!(out.contains("evidence digest:"), "{out}");
        assert!(out.contains("stage caches:"), "{out}");
    }

    #[test]
    fn run_explain_json_is_machine_readable() {
        // Force a live run: a verdict-cache replay reports subkeys 0
        // (per-branch telemetry is process-circumstantial, not part of
        // the replayable trace).
        chromata::clear_decision_cache();
        let out = run(Command::Explain {
            cache_dir: None,
            task: "consensus".into(),
            act_fallback: 0,
            json: true,
        })
        .unwrap();
        use serde_json::Value;
        let doc: Value = serde_json::from_str(&out).unwrap();
        // The registry's `consensus` entry builds the 3-process task.
        assert_eq!(doc["task"], Value::String("consensus-3".into()));
        assert_eq!(doc["decided_by"], Value::String("homology".into()));
        let Value::Array(stages) = &doc["stages"] else {
            panic!("stages must be an array: {out}");
        };
        assert_eq!(stages[0]["stage"], Value::String("canonicalize".into()));
        assert!(stages
            .iter()
            .any(|s| s["stage"] == Value::String("homology".into())));
        // Every stage reports its incremental-reuse telemetry: the
        // reused flag and the number of per-branch sub-keys consulted.
        for s in stages {
            assert!(
                matches!(s["reused"], Value::Bool(_)),
                "stage must carry a boolean `reused`: {out}"
            );
            assert!(
                matches!(s["subkeys"], Value::UInt(_) | Value::Int(_)),
                "stage must carry an integer `subkeys`: {out}"
            );
        }
        let link_stage = stages
            .iter()
            .find(|s| s["stage"] == Value::String("link-graphs".into()))
            .expect("a link-graphs stage");
        let subkeys = match link_stage["subkeys"] {
            Value::UInt(n) => n,
            Value::Int(n) => u64::try_from(n).expect("subkeys is non-negative"),
            _ => panic!("subkeys must be an integer: {out}"),
        };
        assert!(
            subkeys >= 1,
            "link-graphs must report one sub-key per input facet: {out}"
        );
        let Value::Array(caches) = &doc["stage_caches"] else {
            panic!("stage_caches must be an array: {out}");
        };
        assert_eq!(caches.len(), 6);
        for c in caches {
            assert!(
                matches!(c["reuse_hits"], Value::UInt(_) | Value::Int(_)),
                "cache must carry `reuse_hits`: {out}"
            );
        }
        let Value::String(digest) = &doc["evidence_digest"] else {
            panic!("digest must be a string: {out}");
        };
        assert_eq!(digest.len(), 16);
    }

    #[test]
    fn run_batch_covers_named_tasks() {
        let out = run(Command::Batch {
            cache_dir: None,
            tasks: vec!["identity".into(), "hourglass".into()],
            act_fallback: 0,
            shards: vec![],
            digests: false,
        })
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(
            lines[0].starts_with("identity") && lines[0].contains("SOLVABLE"),
            "{out}"
        );
        assert!(
            lines[1].starts_with("hourglass") && lines[1].contains("UNSOLVABLE"),
            "{out}"
        );
    }

    #[test]
    fn run_act_baseline() {
        let out = run(Command::Act {
            task: "consensus-2".into(),
            rounds: 1,
        })
        .unwrap();
        assert!(out.contains("INCONCLUSIVE"), "{out}");
    }

    #[test]
    fn export_and_reload_roundtrip() {
        let dir = std::env::temp_dir().join("chromata-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hourglass.json");
        run(Command::Export {
            task: "hourglass".into(),
            output: Some(path.clone()),
        })
        .unwrap();
        let out = run(Command::Analyze {
            task: path.display().to_string(),
            act_fallback: 0,
        })
        .unwrap();
        assert!(out.contains("UNSOLVABLE"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_inspect() {
        let out = run(Command::Inspect {
            task: "hourglass".into(),
        })
        .unwrap();
        assert!(out.contains("LAPs: 1"), "{out}");
        assert!(out.contains("link-connected: false"), "{out}");
    }

    #[test]
    fn verify_fig7_rejects_non_link_connected() {
        let err = run(Command::VerifyFig7 {
            task: "hourglass".into(),
            max_states: 1000,
        })
        .unwrap_err();
        assert!(err.0.contains("not link-connected"), "{err}");
    }

    #[test]
    fn parse_decide_flags() {
        assert_eq!(
            parse(&args(&[
                "decide",
                "identity",
                "--budget-ms",
                "500",
                "--max-states",
                "100",
                "--act-rounds",
                "1",
                "--max-crashes",
                "1",
            ]))
            .unwrap(),
            Command::Decide {
                cache_dir: None,
                task: "identity".into(),
                budget_ms: Some(500),
                max_states: 100,
                act_rounds: 1,
                max_crashes: 1,
            }
        );
        assert!(parse(&args(&["decide"])).is_err());
        assert!(parse(&args(&["decide", "x", "--budget-ms", "soon"])).is_err());
    }

    #[test]
    fn budget_ms_parses_the_full_u64_range() {
        // Regression: the flag used to go through `usize` and an `as
        // u64` cast, which truncates on 32-bit targets and hides
        // overflow. u64::MAX must parse exactly...
        let cmd = parse(&args(&[
            "decide",
            "x",
            "--budget-ms",
            "18446744073709551615",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Decide {
                cache_dir: None,
                task: "x".into(),
                budget_ms: Some(u64::MAX),
                max_states: 5_000_000,
                act_rounds: 2,
                max_crashes: 2,
            }
        );
        // ...and u64::MAX + 1 must be an explicit out-of-range error,
        // not a wrapped or truncated value.
        let err = parse(&args(&[
            "decide",
            "x",
            "--budget-ms",
            "18446744073709551616",
        ]))
        .unwrap_err();
        assert!(err.0.contains("--budget-ms"), "{err}");
        assert!(err.0.contains("out of range"), "{err}");
        let err = parse(&args(&["serve", "--budget-ms", "18446744073709551616"])).unwrap_err();
        assert!(err.0.contains("out of range"), "{err}");
    }

    #[test]
    fn parse_serve_and_request() {
        assert_eq!(
            parse(&args(&["serve"])).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7437".into(),
                threads: 0,
                admission: None,
                queue: None,
                max_payload: crate::wire::DEFAULT_MAX_PAYLOAD,
                budget_ms: None,
                cache_dir: None,
                persist_secs: 30,
                idle_secs: 30,
                shards: vec![],
                hedge_ms: None,
            }
        );
        assert_eq!(
            parse(&args(&[
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--admission",
                "0",
                "--queue",
                "8",
                "--budget-ms",
                "250",
                "--cache-dir",
                "/tmp/c",
                "--persist-secs",
                "5",
            ]))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                admission: Some(0),
                queue: Some(8),
                max_payload: crate::wire::DEFAULT_MAX_PAYLOAD,
                budget_ms: Some(250),
                cache_dir: Some(PathBuf::from("/tmp/c")),
                persist_secs: 5,
                idle_secs: 30,
                shards: vec![],
                hedge_ms: None,
            }
        );
        assert!(parse(&args(&["serve", "--frobnicate"])).is_err());
        assert_eq!(
            parse(&args(&[
                "serve",
                "--shards",
                "127.0.0.1:7438, 127.0.0.1:7439",
                "--hedge-ms",
                "40",
            ]))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7437".into(),
                threads: 0,
                admission: None,
                queue: None,
                max_payload: crate::wire::DEFAULT_MAX_PAYLOAD,
                budget_ms: None,
                cache_dir: None,
                persist_secs: 30,
                idle_secs: 30,
                shards: vec!["127.0.0.1:7438".into(), "127.0.0.1:7439".into()],
                hedge_ms: Some(40),
            }
        );
        assert!(parse(&args(&["serve", "--shards", " , "])).is_err());
        assert_eq!(
            parse(&args(&[
                "worker",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2"
            ]))
            .unwrap(),
            Command::Worker {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                admission: None,
                queue: None,
                max_payload: crate::wire::DEFAULT_MAX_PAYLOAD,
                cache_dir: None,
                persist_secs: 30,
                idle_secs: 30,
            }
        );
        // A worker never re-dispatches, so it takes no --shards.
        assert!(parse(&args(&["worker", "--shards", "127.0.0.1:1"])).is_err());
        assert_eq!(
            parse(&args(&["batch", "identity", "--shards", "127.0.0.1:7438"])).unwrap(),
            Command::Batch {
                tasks: vec!["identity".into()],
                act_fallback: 0,
                cache_dir: None,
                shards: vec!["127.0.0.1:7438".into()],
                digests: false,
            }
        );
        assert_eq!(
            parse(&args(&[
                "request",
                "hourglass",
                "--budget-ms",
                "100",
                "--json"
            ]))
            .unwrap(),
            Command::Request {
                addr: "127.0.0.1:7437".into(),
                op: "analyze".into(),
                task: Some("hourglass".into()),
                act_fallback: 0,
                budget_ms: Some(100),
                max_states: None,
                retry: 0,
                json: true,
            }
        );
        assert_eq!(
            parse(&args(&["request", "--op", "ping", "--retry", "5"])).unwrap(),
            Command::Request {
                addr: "127.0.0.1:7437".into(),
                op: "ping".into(),
                task: None,
                act_fallback: 0,
                budget_ms: None,
                max_states: None,
                retry: 5,
                json: false,
            }
        );
        // analyze needs a task; control ops refuse one.
        assert!(parse(&args(&["request"])).is_err());
        assert!(parse(&args(&["request", "--op", "ping", "hourglass"])).is_err());
        assert!(parse(&args(&["request", "a", "b"])).is_err());
    }

    #[test]
    fn parse_cache_dir_flags() {
        assert_eq!(
            parse(&args(&["decide", "identity", "--cache-dir", "/tmp/c"])).unwrap(),
            Command::Decide {
                task: "identity".into(),
                budget_ms: None,
                max_states: 5_000_000,
                act_rounds: 2,
                max_crashes: 2,
                cache_dir: Some(PathBuf::from("/tmp/c")),
            }
        );
        assert_eq!(
            parse(&args(&["explain", "identity", "--cache-dir", "/tmp/c"])).unwrap(),
            Command::Explain {
                task: "identity".into(),
                act_fallback: 0,
                json: false,
                cache_dir: Some(PathBuf::from("/tmp/c")),
            }
        );
        assert_eq!(
            parse(&args(&["batch", "identity", "--cache-dir", "/tmp/c"])).unwrap(),
            Command::Batch {
                tasks: vec!["identity".into()],
                act_fallback: 0,
                cache_dir: Some(PathBuf::from("/tmp/c")),
                shards: vec![],
                digests: false,
            }
        );
        assert!(parse(&args(&["decide", "identity", "--cache-dir"])).is_err());
    }

    #[test]
    fn parse_cache_subcommand() {
        assert_eq!(
            parse(&args(&["cache", "stats", "--cache-dir", "/tmp/c"])).unwrap(),
            Command::Cache {
                action: CacheAction::Stats,
                cache_dir: Some(PathBuf::from("/tmp/c")),
            }
        );
        assert_eq!(
            parse(&args(&["cache", "verify"])).unwrap(),
            Command::Cache {
                action: CacheAction::Verify,
                cache_dir: None,
            }
        );
        assert_eq!(
            parse(&args(&["cache", "clear", "--cache-dir", "/tmp/c"])).unwrap(),
            Command::Cache {
                action: CacheAction::Clear,
                cache_dir: Some(PathBuf::from("/tmp/c")),
            }
        );
        assert!(parse(&args(&["cache"])).is_err());
        assert!(parse(&args(&["cache", "defrag"])).is_err());
    }

    #[test]
    fn cache_subcommand_end_to_end() {
        let dir = std::env::temp_dir().join(format!("chromata-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Without a directory (flag or env) the command refuses to guess.
        let err = run(Command::Cache {
            action: CacheAction::Stats,
            cache_dir: None,
        })
        .unwrap_err();
        assert!(err.0.contains("cache needs a directory"), "{err}");

        // A decide with --cache-dir persists snapshots...
        let out = run(Command::Decide {
            task: "identity".into(),
            budget_ms: None,
            max_states: 10_000,
            act_rounds: 1,
            max_crashes: 1,
            cache_dir: Some(dir.clone()),
        })
        .unwrap();
        assert!(out.contains("cache: persisted"), "{out}");

        // ...which stats and verify then see as intact.
        let stats = run(Command::Cache {
            action: CacheAction::Stats,
            cache_dir: Some(dir.clone()),
        })
        .unwrap();
        assert!(stats.contains("verdict"), "{stats}");
        let verify = run(Command::Cache {
            action: CacheAction::Verify,
            cache_dir: Some(dir.clone()),
        })
        .unwrap();
        assert!(verify.contains("verify: OK"), "{verify}");

        // Corrupt one snapshot byte: verify must fail (nonzero exit).
        let snap = dir.join("verdict.snap");
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();
        let err = run(Command::Cache {
            action: CacheAction::Verify,
            cache_dir: Some(dir.clone()),
        })
        .unwrap_err();
        assert!(err.0.contains("verify: FAILED"), "{err}");

        // Clear removes the snapshots; verify is clean again.
        let cleared = run(Command::Cache {
            action: CacheAction::Clear,
            cache_dir: Some(dir.clone()),
        })
        .unwrap();
        assert!(cleared.contains("removed"), "{cleared}");
        let verify = run(Command::Cache {
            action: CacheAction::Verify,
            cache_dir: Some(dir.clone()),
        })
        .unwrap();
        assert!(verify.contains("verify: OK"), "{verify}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decide_starved_budget_degrades_to_structured_unknown() {
        // The smoke-test contract: a starved state budget must NOT panic
        // or error out — it answers UNKNOWN (exit 0) with a structured
        // reason containing a replayable trace.
        let out = run(Command::Decide {
            cache_dir: None,
            task: "identity".into(),
            budget_ms: None,
            max_states: 50,
            act_rounds: 0,
            max_crashes: 2,
        })
        .unwrap();
        assert!(out.contains("verdict: SOLVABLE"), "{out}");
        assert!(out.contains("wait-freedom: UNKNOWN"), "{out}");
        assert!(out.contains("state budget"), "{out}");
        assert!(out.contains("trace:"), "{out}");
    }

    #[test]
    fn decide_constant_verifies_wait_freedom() {
        let out = run(Command::Decide {
            cache_dir: None,
            task: "constant".into(),
            budget_ms: None,
            max_states: 2_000_000,
            act_rounds: 0,
            max_crashes: 1,
        })
        .unwrap();
        assert!(out.contains("verdict: SOLVABLE"), "{out}");
        assert!(out.contains("wait-freedom: VERIFIED"), "{out}");
        assert!(out.contains("with crashes"), "{out}");
    }

    #[test]
    fn decide_unsolvable_skips_wait_freedom() {
        let out = run(Command::Decide {
            cache_dir: None,
            task: "hourglass".into(),
            budget_ms: None,
            max_states: 1000,
            act_rounds: 0,
            max_crashes: 2,
        })
        .unwrap();
        assert!(out.contains("verdict: UNSOLVABLE"), "{out}");
        assert!(!out.contains("wait-freedom"), "{out}");
    }

    #[test]
    fn unknown_task_reported() {
        let err = load_task("definitely-not-a-task").unwrap_err();
        assert!(err.0.contains("neither a library task"));
    }
}
