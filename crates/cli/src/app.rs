//! CLI argument parsing and command dispatch (no external parser: the
//! grammar is four subcommands with a handful of flags).

use std::fmt::Write as _;
use std::path::PathBuf;

use chromata::{analyze, laps, solve_act, ActOutcome, PipelineOptions, Verdict};
use chromata_runtime::verify_figure7;
use chromata_task::Task;

use crate::registry;

/// A parsed CLI invocation.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `chromata list`
    List,
    /// `chromata analyze <task> [--act-fallback N]`
    Analyze {
        /// Registry name or path to a task JSON file.
        task: String,
        /// ACT fallback rounds for undetermined verdicts.
        act_fallback: usize,
    },
    /// `chromata act <task> [--rounds N]`
    Act {
        /// Registry name or path to a task JSON file.
        task: String,
        /// Maximum subdivision rounds to search.
        rounds: usize,
    },
    /// `chromata export <task> [-o FILE]`
    Export {
        /// Registry name.
        task: String,
        /// Output path (stdout if absent).
        output: Option<PathBuf>,
    },
    /// `chromata inspect <task>`
    Inspect {
        /// Registry name or path to a task JSON file.
        task: String,
    },
    /// `chromata verify-fig7 <task> [--max-states N]`
    VerifyFig7 {
        /// Registry name or path to a task JSON file.
        task: String,
        /// State budget for the model checker.
        max_states: usize,
    },
    /// `chromata help` or `--help`
    Help,
}

/// Errors produced by parsing or executing a command.
#[derive(Debug, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses raw arguments (without the binary name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first malformed argument.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "analyze" => {
            let task = required(&mut it, "analyze needs a task name or file")?;
            let mut act_fallback = 0usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--act-fallback" => {
                        act_fallback = parse_number(&mut it, "--act-fallback")?;
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Analyze { task, act_fallback })
        }
        "act" => {
            let task = required(&mut it, "act needs a task name or file")?;
            let mut rounds = 1usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--rounds" => rounds = parse_number(&mut it, "--rounds")?,
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Act { task, rounds })
        }
        "export" => {
            let task = required(&mut it, "export needs a task name")?;
            let mut output = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "-o" | "--output" => {
                        output = Some(PathBuf::from(required(&mut it, "-o needs a path")?));
                    }
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Export { task, output })
        }
        "inspect" => {
            let task = required(&mut it, "inspect needs a task name or file")?;
            if let Some(extra) = it.next() {
                return Err(CliError(format!("unexpected argument {extra}")));
            }
            Ok(Command::Inspect { task })
        }
        "verify-fig7" => {
            let task = required(&mut it, "verify-fig7 needs a task name or file")?;
            let mut max_states = 5_000_000usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--max-states" => max_states = parse_number(&mut it, "--max-states")?,
                    other => return Err(CliError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::VerifyFig7 { task, max_states })
        }
        other => Err(CliError(format!(
            "unknown command {other}; try `chromata help`"
        ))),
    }
}

fn required(it: &mut std::slice::Iter<'_, String>, msg: &str) -> Result<String, CliError> {
    it.next().cloned().ok_or_else(|| CliError(msg.to_owned()))
}

fn parse_number(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, CliError> {
    let raw = required(it, &format!("{flag} needs a number"))?;
    raw.parse()
        .map_err(|_| CliError(format!("{flag}: `{raw}` is not a number")))
}

/// Loads a task by registry name or from a JSON file path.
///
/// # Errors
///
/// Returns a [`CliError`] if neither resolution succeeds.
pub fn load_task(spec: &str) -> Result<Task, CliError> {
    if let Some(t) = registry::find(spec) {
        return Ok(t);
    }
    if spec.ends_with(".json") || std::path::Path::new(spec).exists() {
        let raw = std::fs::read_to_string(spec)
            .map_err(|e| CliError(format!("cannot read {spec}: {e}")))?;
        return serde_json::from_str(&raw)
            .map_err(|e| CliError(format!("cannot parse {spec}: {e}")));
    }
    Err(CliError(format!(
        "`{spec}` is neither a library task nor a readable file; try `chromata list`"
    )))
}

/// Executes a command, returning its stdout text.
///
/// # Errors
///
/// Returns a [`CliError`] on any failure (unknown task, I/O, budget).
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(HELP.to_owned()),
        Command::List => {
            let mut out = String::new();
            for e in registry::entries() {
                let _ = writeln!(out, "{:<24} {}", e.name, e.description);
            }
            Ok(out)
        }
        Command::Analyze { task, act_fallback } => {
            let t = load_task(&task)?;
            let analysis = analyze(
                &t,
                PipelineOptions {
                    act_fallback_rounds: act_fallback,
                },
            );
            let mut out = String::new();
            let _ = writeln!(out, "{t}");
            let lap_list = laps(&t);
            let _ = writeln!(
                out,
                "articulation points: {}; split steps: {}; O' components: {}",
                lap_list.len(),
                analysis.split.steps.len(),
                analysis.split.task.output().connected_components().len()
            );
            match &analysis.verdict {
                Verdict::Solvable { certificate } => {
                    let _ = writeln!(out, "verdict: SOLVABLE\n  {certificate}");
                }
                Verdict::Unsolvable { obstruction } => {
                    let _ = writeln!(out, "verdict: UNSOLVABLE\n  {obstruction}");
                }
                Verdict::Unknown { reason } => {
                    let _ = writeln!(out, "verdict: UNKNOWN\n  {reason}");
                }
            }
            Ok(out)
        }
        Command::Act { task, rounds } => {
            let t = load_task(&task)?;
            let mut out = String::new();
            match solve_act(&t, rounds) {
                ActOutcome::Solvable { rounds, map } => {
                    let _ = writeln!(
                        out,
                        "SOLVABLE: chromatic decision map found at {rounds} round(s) ({} vertex assignments)",
                        map.len()
                    );
                }
                ActOutcome::Exhausted { max_rounds } => {
                    let _ = writeln!(
                        out,
                        "INCONCLUSIVE: no decision map up to {max_rounds} round(s) — the ACT check is only a semi-decision"
                    );
                }
            }
            Ok(out)
        }
        Command::Export { task, output } => {
            let t = registry::find(&task)
                .ok_or_else(|| CliError(format!("unknown library task `{task}`")))?;
            let json = serde_json::to_string_pretty(&t)
                .map_err(|e| CliError(format!("serialize: {e}")))?;
            match output {
                Some(path) => {
                    std::fs::write(&path, json)
                        .map_err(|e| CliError(format!("write {}: {e}", path.display())))?;
                    Ok(format!("wrote {}\n", path.display()))
                }
                None => Ok(json),
            }
        }
        Command::Inspect { task } => {
            let t = load_task(&task)?;
            let mut out = String::new();
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "canonical: {}; link-connected: {}",
                chromata_task::is_canonical(&t),
                t.is_link_connected()
            );
            for sigma in t.input().facets() {
                let img = t.delta().image_of(sigma);
                let h = chromata::algebra::homology(img);
                let laps = img.disconnected_link_vertices();
                let _ = writeln!(
                    out,
                    "Δ({sigma}): {} facets, {} vertices; H = (b0={}, b1={}, torsion {:?}); LAPs: {}",
                    img.facet_count(),
                    img.vertex_count(),
                    h.betti0,
                    h.betti1,
                    h.torsion1,
                    laps.len()
                );
            }
            Ok(out)
        }
        Command::VerifyFig7 { task, max_states } => {
            let t = load_task(&task)?;
            if !t.is_link_connected() {
                return Err(CliError(format!(
                    "`{}` is not link-connected: Figure 7's hypothesis (Lemma 5.3) fails — \
                     the model checker would reach a disconnected negotiation",
                    t.name()
                )));
            }
            let report = verify_figure7(&t, max_states)
                .map_err(|e| CliError(format!("exploration: {e}")))?;
            Ok(format!(
                "verified: {} participant sets, {} outcomes, {} states — all correct\n",
                report.participant_sets, report.outcomes, report.states
            ))
        }
    }
}

const HELP: &str = "chromata — wait-free solvability of three-process tasks (PODC 2025)

USAGE:
    chromata <COMMAND>

COMMANDS:
    list                         list the built-in task library
    analyze <task> [--act-fallback N]
                                 run the paper's decision pipeline
    inspect <task>               complex statistics, homology, LAP counts
    act <task> [--rounds N]      run the Herlihy–Shavit ACT baseline
    export <task> [-o FILE]      dump a library task as JSON
    verify-fig7 <task> [--max-states N]
                                 exhaustively verify the Figure 7 algorithm
    help                         show this message

<task> is a library name (see `list`) or a path to a task JSON file.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parse_basic_commands() {
        assert_eq!(parse(&args(&["list"])).unwrap(), Command::List);
        assert_eq!(parse(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["--help"])).unwrap(), Command::Help);
        assert_eq!(
            parse(&args(&["analyze", "hourglass"])).unwrap(),
            Command::Analyze {
                task: "hourglass".into(),
                act_fallback: 0
            }
        );
        assert_eq!(
            parse(&args(&["act", "consensus", "--rounds", "2"])).unwrap(),
            Command::Act {
                task: "consensus".into(),
                rounds: 2
            }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&args(&["frobnicate"])).is_err());
        assert!(parse(&args(&["analyze"])).is_err());
        assert!(parse(&args(&["act", "x", "--rounds", "many"])).is_err());
        assert!(parse(&args(&["analyze", "x", "--bogus"])).is_err());
    }

    #[test]
    fn run_list_and_help() {
        let list = run(Command::List).unwrap();
        assert!(list.contains("hourglass"));
        assert!(list.contains("pinwheel"));
        let help = run(Command::Help).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn run_analyze_library_tasks() {
        let out = run(Command::Analyze {
            task: "hourglass".into(),
            act_fallback: 0,
        })
        .unwrap();
        assert!(out.contains("UNSOLVABLE"), "{out}");
        let out = run(Command::Analyze {
            task: "identity".into(),
            act_fallback: 0,
        })
        .unwrap();
        assert!(out.contains("SOLVABLE"), "{out}");
    }

    #[test]
    fn run_act_baseline() {
        let out = run(Command::Act {
            task: "consensus-2".into(),
            rounds: 1,
        })
        .unwrap();
        assert!(out.contains("INCONCLUSIVE"), "{out}");
    }

    #[test]
    fn export_and_reload_roundtrip() {
        let dir = std::env::temp_dir().join("chromata-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hourglass.json");
        run(Command::Export {
            task: "hourglass".into(),
            output: Some(path.clone()),
        })
        .unwrap();
        let out = run(Command::Analyze {
            task: path.display().to_string(),
            act_fallback: 0,
        })
        .unwrap();
        assert!(out.contains("UNSOLVABLE"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_inspect() {
        let out = run(Command::Inspect {
            task: "hourglass".into(),
        })
        .unwrap();
        assert!(out.contains("LAPs: 1"), "{out}");
        assert!(out.contains("link-connected: false"), "{out}");
    }

    #[test]
    fn verify_fig7_rejects_non_link_connected() {
        let err = run(Command::VerifyFig7 {
            task: "hourglass".into(),
            max_states: 1000,
        })
        .unwrap_err();
        assert!(err.0.contains("not link-connected"), "{err}");
    }

    #[test]
    fn unknown_task_reported() {
        let err = load_task("definitely-not-a-task").unwrap_err();
        assert!(err.0.contains("neither a library task"));
    }
}
