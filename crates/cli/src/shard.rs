//! The TCP shard backend for distributed stage execution.
//!
//! [`TcpShardIo`] implements the socket-free core's
//! [`chromata::ShardIo`] seam over the `chromata serve`/`chromata
//! worker` wire protocol: one connection, one request line, one
//! response line per exchange. Together with `crate::serve` this is the
//! only place in the workspace allowed to touch socket types (xtask
//! rule D4); every retry/hedge/fallback decision stays in
//! `chromata::stages::remote`, unit-tested without a network.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use chromata::{configure_remote, RemotePolicy, ShardIo, ShardIoError, ShardStep};

use crate::app::CliError;

/// Fallback connect deadline when an exchange carries no deadline.
const DEFAULT_CONNECT_SECS: u64 = 2;

/// Fallback read/write deadline when an exchange carries no deadline.
const DEFAULT_EXCHANGE_SECS: u64 = 10;

/// A pool of worker addresses speaking the newline-delimited JSON wire
/// protocol. Each [`ShardIo::exchange`] opens a fresh connection —
/// stage dispatches are coarse (a whole pipeline tier), so connection
/// reuse buys little and per-exchange connections make shard death
/// visible immediately as a [`ShardStep::Connect`] fault instead of a
/// poisoned kept-alive socket.
#[derive(Debug)]
pub struct TcpShardIo {
    shards: Vec<Vec<SocketAddr>>,
    labels: Vec<String>,
}

impl TcpShardIo {
    /// Resolves each `host:port` in `addrs` to its socket addresses.
    ///
    /// # Errors
    ///
    /// Fails if the list is empty or an address does not resolve —
    /// misconfiguration should surface at startup, not as per-stage
    /// connect faults.
    pub fn new(addrs: &[String]) -> Result<TcpShardIo, CliError> {
        if addrs.is_empty() {
            return Err(CliError("shards: the address list is empty".to_owned()));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let resolved: Vec<SocketAddr> = addr
                .to_socket_addrs()
                .map_err(|e| CliError(format!("shards: cannot resolve `{addr}`: {e}")))?
                .collect();
            if resolved.is_empty() {
                return Err(CliError(format!(
                    "shards: `{addr}` resolved to no addresses"
                )));
            }
            shards.push(resolved);
        }
        Ok(TcpShardIo {
            shards,
            labels: addrs.to_vec(),
        })
    }

    /// The configured shard address labels, in pool order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    fn connect(&self, shard: usize, deadline: Option<Duration>) -> Result<TcpStream, ShardIoError> {
        let Some(candidates) = self.shards.get(shard) else {
            return Err(ShardIoError::new(
                ShardStep::Connect,
                std::io::ErrorKind::NotFound,
                format!("shard {shard} is not in the pool"),
            ));
        };
        let connect_deadline = deadline.unwrap_or(Duration::from_secs(DEFAULT_CONNECT_SECS));
        let mut last: Option<std::io::Error> = None;
        for addr in candidates {
            match TcpStream::connect_timeout(addr, connect_deadline) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
        let err = last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no candidate address")
        });
        Err(ShardIoError::new(
            ShardStep::Connect,
            err.kind(),
            format!("shard {shard} ({}): {err}", self.labels[shard]),
        ))
    }
}

impl ShardIo for TcpShardIo {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn exchange(
        &self,
        shard: usize,
        line: &str,
        deadline: Option<Duration>,
    ) -> Result<String, ShardIoError> {
        let stream = self.connect(shard, deadline)?;
        let io_deadline = deadline.unwrap_or(Duration::from_secs(DEFAULT_EXCHANGE_SECS));
        let fault = |step: ShardStep, e: &std::io::Error| {
            ShardIoError::new(
                step,
                e.kind(),
                format!("shard {shard} ({}): {e}", self.labels[shard]),
            )
        };
        stream
            .set_write_timeout(Some(io_deadline))
            .and_then(|()| stream.set_read_timeout(Some(io_deadline)))
            .map_err(|e| fault(ShardStep::Connect, &e))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| fault(ShardStep::Connect, &e))?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| fault(ShardStep::Send, &e))?;
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .map_err(|e| fault(ShardStep::Recv, &e))?;
        if response.trim().is_empty() {
            // A mid-response kill shows up as EOF before the newline.
            return Err(ShardIoError::new(
                ShardStep::Recv,
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "shard {shard} ({}): connection closed without a response",
                    self.labels[shard]
                ),
            ));
        }
        Ok(response.trim_end().to_owned())
    }
}

/// Installs a TCP shard pool as this process's remote stage backend:
/// every subsequent analysis routes its stages across `addrs` with the
/// retry/hedge/fallback machinery of `chromata::stages::remote`.
///
/// # Errors
///
/// Fails if an address does not resolve (see [`TcpShardIo::new`]).
pub fn configure_shards(addrs: &[String], policy: RemotePolicy) -> Result<(), CliError> {
    let io = TcpShardIo::new(addrs)?;
    configure_remote(Arc::new(io) as Arc<dyn ShardIo>, policy);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_an_empty_or_unresolvable_pool() {
        assert!(TcpShardIo::new(&[]).is_err());
        let err = TcpShardIo::new(&["definitely-not-a-host.invalid:1".to_owned()]).unwrap_err();
        assert!(err.0.contains("cannot resolve"), "{err}");
    }

    #[test]
    fn a_dead_shard_is_a_connect_fault() {
        // Reserve a port, then close the listener so nothing accepts.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let io = TcpShardIo::new(&[addr]).unwrap();
        let err = io
            .exchange(0, r#"{"op":"ping"}"#, Some(Duration::from_millis(300)))
            .unwrap_err();
        assert_eq!(err.step, ShardStep::Connect, "{err}");
    }
}
