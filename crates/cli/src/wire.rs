//! The `chromata serve` wire protocol: newline-delimited JSON requests
//! and responses over a byte stream, built on the vendored `serde_json`.
//!
//! This module is deliberately socket-free: it parses and renders
//! protocol lines only, so every malformed-input path is unit-testable
//! without a live server. The framing rules:
//!
//! * one request per line, terminated by `\n`, at most
//!   [`DEFAULT_MAX_PAYLOAD`] bytes (the server may configure another
//!   bound) — an oversized line is answered with a structured error and
//!   the stream is re-synchronized at the next newline;
//! * every response is exactly one JSON object on one line;
//! * malformed input (bad JSON, a non-object, an unknown or duplicated
//!   field, a wrong field type) is answered with
//!   `{"status":"error","error":"…"}` — the connection and its worker
//!   stay alive;
//! * overload and budget exhaustion degrade to a `verdict: "UNKNOWN"`
//!   response carrying a `retry_after_ms` hint, never to a dropped
//!   connection or an unbounded queue.

use chromata::Verdict;
use chromata_task::Task;
use serde_json::Value;

/// Default per-request payload bound (bytes). Large enough for any
/// library task and generous inline tasks, small enough that a hostile
/// client cannot balloon a worker's memory.
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 20;

/// The retry hint (milliseconds) attached to admission-control rejects
/// on an otherwise idle server; [`overload_retry_hint`] scales it with
/// the observed load.
pub const OVERLOAD_RETRY_MS: u64 = 25;

/// The wire-protocol version this build speaks. Requests may carry a
/// `proto` field: absent means "whatever the server speaks" (old
/// clients keep working), a matching value is accepted, anything else
/// is answered with a named error rather than a misparse.
///
/// v2: the stage engine re-keyed link-graph/presentation/homology
/// artifacts per split branch, so v1 peers would disagree about which
/// artifacts a shard owns; the version gate keeps mixed fleets honest.
pub const PROTO_VERSION: u64 = 2;

/// Upper bound on the load-derived retry hint (milliseconds).
const MAX_RETRY_HINT_MS: u64 = 5_000;

/// Derives the overload `retry_after_ms` hint from the observed load:
/// the idle-server base plus a term per queued connection and per
/// in-flight analysis, capped at five seconds. Monotone in both inputs,
/// so a deepening queue tells clients to back off harder.
#[must_use]
pub fn overload_retry_hint(pending: usize, in_flight: usize) -> u64 {
    let pending = u64::try_from(pending).unwrap_or(u64::MAX);
    let in_flight = u64::try_from(in_flight).unwrap_or(u64::MAX);
    OVERLOAD_RETRY_MS
        .saturating_add(pending.saturating_mul(10))
        .saturating_add(in_flight.saturating_mul(5))
        .min(MAX_RETRY_HINT_MS)
}

/// The delay before retry `attempt` (0-based), honoring the server's
/// `retry_after_ms` hint when one was given. The server's hint is
/// load-derived and used as-is; without one (e.g. a transport error)
/// the client backs off exponentially from [`OVERLOAD_RETRY_MS`].
/// Either way the delay is capped at [`MAX_RETRY_HINT_MS`].
#[must_use]
pub fn retry_backoff_ms(attempt: u32, hint: Option<u64>) -> u64 {
    let base = hint.unwrap_or_else(|| OVERLOAD_RETRY_MS.saturating_mul(1u64 << attempt.min(8)));
    base.min(MAX_RETRY_HINT_MS)
}

/// Extracts the retry hint from a *non-final* response: an
/// admission-control reject carries `retry_after_ms` but no
/// `evidence_digest`. A completed analysis — even a budget-induced
/// `UNKNOWN`, which also hints — is final and returns `None`, so a
/// retry loop never discards a real verdict.
#[must_use]
pub fn overload_retry_hint_of(response: &str) -> Option<u64> {
    let doc: Value = serde_json::from_str(response).ok()?;
    if matches!(doc["evidence_digest"], Value::String(_)) {
        return None;
    }
    match doc["retry_after_ms"] {
        Value::UInt(ms) => Some(ms),
        Value::Int(ms) => u64::try_from(ms).ok(),
        _ => None,
    }
}

/// A structured protocol error: the message becomes the `error` field
/// of the response line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for WireError {}

/// How an analyze request names its task.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskSpec {
    /// A library registry name (resolved server-side).
    Named(String),
    /// A full inline task object (already validated by `Task::new`
    /// during deserialization).
    Inline(Box<Task>),
}

/// A parsed `op: "analyze"` request.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzeRequest {
    /// The task to decide.
    pub task: TaskSpec,
    /// ACT fallback rounds (0 disables the fallback).
    pub act_fallback: usize,
    /// Requested wall-clock budget in milliseconds; the server clamps
    /// it to its own per-request cap.
    pub budget_ms: Option<u64>,
    /// Requested state budget; the server clamps it to its own cap.
    pub max_states: Option<usize>,
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Decide a task (the default op).
    Analyze(AnalyzeRequest),
    /// Execute one verdict-engine stage (worker mode; the dispatch side
    /// lives in `chromata::stages::remote`).
    Stage(Box<chromata::StageJob>),
    /// Liveness probe.
    Ping,
    /// Server + stage-cache counters.
    Stats,
    /// Snapshot the stage caches to the server's cache directory now.
    Persist,
    /// Graceful shutdown: final persist, then exit.
    Shutdown,
}

/// Reads a non-negative integer field as `u64`.
fn uint_field(key: &str, value: &Value) -> Result<u64, WireError> {
    match value {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        _ => Err(WireError(format!(
            "field `{key}` must be a non-negative integer"
        ))),
    }
}

/// Parses one request line. Every rejection names the offending field
/// so clients can self-correct.
///
/// # Errors
///
/// Returns a [`WireError`] on any framing or validation failure; the
/// caller answers it with [`error_response`] and keeps the connection.
pub fn parse_request(line: &str, max_payload: usize) -> Result<Request, WireError> {
    if line.len() > max_payload {
        return Err(WireError(format!(
            "payload of {} bytes exceeds the {max_payload}-byte limit",
            line.len()
        )));
    }
    let value: Value = serde_json::from_str(line)
        .map_err(|e| WireError(format!("malformed JSON request: {e}")))?;
    let Value::Object(entries) = value else {
        return Err(WireError("request must be a JSON object".to_owned()));
    };
    // Duplicate keys survive the vendored parser (insertion-ordered
    // object repr); a request that says a field twice is ambiguous.
    for (i, (key, _)) in entries.iter().enumerate() {
        if entries.iter().skip(i + 1).any(|(other, _)| other == key) {
            return Err(WireError(format!("duplicate field `{key}`")));
        }
    }
    if let Some((_, value)) = entries.iter().find(|(k, _)| k == "proto") {
        let version = uint_field("proto", value)?;
        if version != PROTO_VERSION {
            return Err(WireError(format!(
                "unsupported proto version {version}; this server speaks {PROTO_VERSION}"
            )));
        }
    }
    let op = match entries.iter().find(|(k, _)| k == "op") {
        None => "analyze".to_owned(),
        Some((_, Value::String(op))) => op.clone(),
        Some(_) => return Err(WireError("field `op` must be a string".to_owned())),
    };
    match op.as_str() {
        "analyze" => parse_analyze(&entries),
        "stage" => chromata::parse_stage_fields(&entries)
            .map(|job| Request::Stage(Box::new(job)))
            .map_err(WireError),
        "ping" | "stats" | "persist" | "shutdown" => {
            if let Some((key, _)) = entries.iter().find(|(k, _)| k != "op" && k != "proto") {
                return Err(WireError(format!("unknown field `{key}` for op `{op}`")));
            }
            Ok(match op.as_str() {
                "ping" => Request::Ping,
                "stats" => Request::Stats,
                "persist" => Request::Persist,
                _ => Request::Shutdown,
            })
        }
        other => Err(WireError(format!(
            "unknown op `{other}`; expected analyze, stage, ping, stats, persist or shutdown"
        ))),
    }
}

fn parse_analyze(entries: &[(String, Value)]) -> Result<Request, WireError> {
    let mut task = None;
    let mut act_fallback = 0usize;
    let mut budget_ms = None;
    let mut max_states = None;
    for (key, value) in entries {
        match key.as_str() {
            "op" | "proto" => {}
            "task" => match value {
                Value::String(name) => task = Some(TaskSpec::Named(name.clone())),
                Value::Object(_) => {
                    let parsed: Task = serde_json::from_value(value.clone())
                        .map_err(|e| WireError(format!("invalid inline task: {e}")))?;
                    task = Some(TaskSpec::Inline(Box::new(parsed)));
                }
                _ => {
                    return Err(WireError(
                        "field `task` must be a library name or a task object".to_owned(),
                    ))
                }
            },
            "act_fallback" => {
                let n = uint_field(key, value)?;
                act_fallback = usize::try_from(n).map_err(|_| {
                    WireError(format!("field `act_fallback` value {n} is out of range"))
                })?;
            }
            "budget_ms" => budget_ms = Some(uint_field(key, value)?),
            "max_states" => {
                let n = uint_field(key, value)?;
                max_states = Some(usize::try_from(n).map_err(|_| {
                    WireError(format!("field `max_states` value {n} is out of range"))
                })?);
            }
            other => return Err(WireError(format!("unknown field `{other}`"))),
        }
    }
    let Some(task) = task else {
        return Err(WireError(
            "analyze request needs a `task` (library name or task object)".to_owned(),
        ));
    };
    Ok(Request::Analyze(AnalyzeRequest {
        task,
        act_fallback,
        budget_ms,
        max_states,
    }))
}

/// Builds an ordered JSON object (the vendored `serde_json` has no
/// object-literal macro).
fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Renders a `Value` as a single response line (no trailing newline;
/// the transport appends it).
fn line(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| {
        // The value trees built here contain no non-serializable parts;
        // degrade to a generic error line rather than panicking a worker.
        r#"{"status":"error","error":"internal: response serialization failed"}"#.to_owned()
    })
}

/// The structured-error response: the request was rejected but the
/// connection stays usable.
#[must_use]
pub fn error_response(error: &str) -> String {
    line(&object(vec![
        ("status", Value::String("error".to_owned())),
        ("error", Value::String(error.to_owned())),
    ]))
}

/// The admission-control reject: a well-formed answer (`UNKNOWN`) with
/// a machine-readable retry hint, sent within a bounded deadline.
#[must_use]
pub fn overload_response(reason: &str, retry_after_ms: u64) -> String {
    line(&object(vec![
        ("status", Value::String("ok".to_owned())),
        ("op", Value::String("analyze".to_owned())),
        ("verdict", Value::String("UNKNOWN".to_owned())),
        ("reason", Value::String(reason.to_owned())),
        ("retry_after_ms", Value::UInt(retry_after_ms)),
    ]))
}

/// A completed analysis. `retry_after_ms` is attached when the verdict
/// is a budget-induced `UNKNOWN` — the client may retry with a larger
/// budget after the hinted delay.
#[must_use]
pub fn analyze_response(
    task_name: &str,
    verdict: &Verdict,
    decided_by: &str,
    evidence_digest: u64,
    wall_ms: f64,
    retry_after_ms: Option<u64>,
) -> String {
    let label = match verdict {
        Verdict::Solvable { .. } => "SOLVABLE",
        Verdict::Unsolvable { .. } => "UNSOLVABLE",
        Verdict::Unknown { .. } => "UNKNOWN",
    };
    let mut fields = vec![
        ("status", Value::String("ok".to_owned())),
        ("op", Value::String("analyze".to_owned())),
        ("task", Value::String(task_name.to_owned())),
        ("verdict", Value::String(label.to_owned())),
        ("detail", Value::String(verdict.to_string())),
        ("decided_by", Value::String(decided_by.to_owned())),
        (
            "evidence_digest",
            Value::String(format!("{evidence_digest:016x}")),
        ),
        ("wall_ms", Value::Float(wall_ms)),
    ];
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms", Value::UInt(ms)));
    }
    line(&object(fields))
}

/// The liveness answer.
#[must_use]
pub fn pong_response() -> String {
    line(&object(vec![
        ("status", Value::String("ok".to_owned())),
        ("op", Value::String("ping".to_owned())),
    ]))
}

/// One stage-cache counter row for the stats response.
#[must_use]
pub fn cache_stats_value(kind: &str, stats: &chromata::DecisionCacheStats) -> Value {
    object(vec![
        ("cache", Value::String(kind.to_owned())),
        ("lookups", Value::UInt(stats.lookups)),
        ("hits", Value::UInt(stats.hits)),
        ("misses", Value::UInt(stats.misses)),
        ("evictions", Value::UInt(stats.evictions)),
        ("restored", Value::UInt(stats.restored)),
        ("coherent", Value::Bool(stats.is_coherent())),
    ])
}

/// Health counters surfaced by the stats response beyond the request
/// tallies: persistence degradation and the poison-quarantine table.
#[derive(Clone, Debug, Default)]
pub struct HealthStats {
    /// Snapshot attempts that failed (ENOSPC, short write, …). The
    /// store stays serving read-through; the persister retries.
    pub persist_failures: u64,
    /// Whether the store is currently in read-through degradation
    /// (the last snapshot attempt failed and has not yet been retried
    /// successfully).
    pub read_through: bool,
    /// Structural fingerprints of quarantined poison tasks, rendered
    /// as 16-hex-digit strings.
    pub quarantined: Vec<u64>,
}

/// The stats answer: server counters plus per-kind cache counters.
#[must_use]
pub fn stats_response(
    served: u64,
    analyzed: u64,
    overloaded: u64,
    malformed: u64,
    in_flight: usize,
    health: &HealthStats,
    caches: Vec<Value>,
) -> String {
    line(&object(vec![
        ("status", Value::String("ok".to_owned())),
        ("op", Value::String("stats".to_owned())),
        ("served", Value::UInt(served)),
        ("analyzed", Value::UInt(analyzed)),
        ("overloaded", Value::UInt(overloaded)),
        ("malformed", Value::UInt(malformed)),
        ("in_flight", Value::UInt(in_flight as u64)),
        ("persist_failures", Value::UInt(health.persist_failures)),
        ("read_through", Value::Bool(health.read_through)),
        (
            "quarantined",
            Value::Array(
                health
                    .quarantined
                    .iter()
                    .map(|fp| Value::String(format!("{fp:016x}")))
                    .collect(),
            ),
        ),
        ("caches", Value::Array(caches)),
    ]))
}

/// The poison-quarantine answer: a task whose analysis panicked a
/// worker repeatedly is refused immediately with a structured
/// `UNKNOWN` naming its fingerprint, instead of burning another
/// worker on it.
#[must_use]
pub fn poisoned_response(task_name: &str, fingerprint: u64) -> String {
    line(&object(vec![
        ("status", Value::String("ok".to_owned())),
        ("op", Value::String("analyze".to_owned())),
        ("task", Value::String(task_name.to_owned())),
        ("verdict", Value::String("UNKNOWN".to_owned())),
        (
            "reason",
            Value::String(format!(
                "poisoned: analysis of this task panicked repeatedly; \
                 quarantined under fingerprint {fingerprint:016x}"
            )),
        ),
        ("fingerprint", Value::String(format!("{fingerprint:016x}"))),
    ]))
}

/// The persist answer.
#[must_use]
pub fn persist_response(entries_written: u64, files_written: u64) -> String {
    line(&object(vec![
        ("status", Value::String("ok".to_owned())),
        ("op", Value::String("persist".to_owned())),
        ("entries_written", Value::UInt(entries_written)),
        ("files_written", Value::UInt(files_written)),
    ]))
}

/// The shutdown acknowledgement (sent before the final persist runs).
#[must_use]
pub fn shutdown_response() -> String {
    line(&object(vec![
        ("status", Value::String("ok".to_owned())),
        ("op", Value::String("shutdown".to_owned())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_default_analyze_op() {
        let r = parse_request(r#"{"task":"consensus"}"#, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(
            r,
            Request::Analyze(AnalyzeRequest {
                task: TaskSpec::Named("consensus".into()),
                act_fallback: 0,
                budget_ms: None,
                max_states: None,
            })
        );
        let r = parse_request(
            r#"{"op":"analyze","task":"hourglass","act_fallback":2,"budget_ms":500,"max_states":1000}"#,
            DEFAULT_MAX_PAYLOAD,
        )
        .unwrap();
        let Request::Analyze(a) = r else {
            panic!("expected analyze")
        };
        assert_eq!(a.act_fallback, 2);
        assert_eq!(a.budget_ms, Some(500));
        assert_eq!(a.max_states, Some(1000));
    }

    #[test]
    fn parses_control_ops() {
        assert_eq!(
            parse_request(r#"{"op":"ping"}"#, DEFAULT_MAX_PAYLOAD).unwrap(),
            Request::Ping
        );
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#, DEFAULT_MAX_PAYLOAD).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"op":"persist"}"#, DEFAULT_MAX_PAYLOAD).unwrap(),
            Request::Persist
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#, DEFAULT_MAX_PAYLOAD).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_requests_with_named_causes() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"task":"x","frobnicate":1}"#,
                "unknown field `frobnicate`",
            ),
            (
                r#"{"op":"ping","task":"x"}"#,
                "unknown field `task` for op `ping`",
            ),
            (r#"{"op":"defrag"}"#, "unknown op `defrag`"),
            (r#"{"op":"analyze"}"#, "needs a `task`"),
            (r#"{"task":7}"#, "must be a library name or a task object"),
            (r#"{"task":"x","budget_ms":-5}"#, "non-negative integer"),
            (r#"{"task":"x","task":"y"}"#, "duplicate field `task`"),
            (r#"[1,2,3]"#, "must be a JSON object"),
            (r#"{"task":"x""#, "malformed JSON"),
            ("not json at all", "malformed JSON"),
            (r#"{"op":7}"#, "field `op` must be a string"),
        ];
        for (input, needle) in cases {
            let err = parse_request(input, DEFAULT_MAX_PAYLOAD).unwrap_err();
            assert!(
                err.0.contains(needle),
                "input {input:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn rejects_oversized_payloads() {
        let big = format!(r#"{{"task":"{}"}}"#, "x".repeat(100));
        let err = parse_request(&big, 32).unwrap_err();
        assert!(err.0.contains("exceeds the 32-byte limit"), "{err}");
    }

    #[test]
    fn parses_an_inline_task_object() {
        let task = chromata_task::library::hourglass();
        let json = serde_json::to_string(&task).unwrap();
        let req = format!(r#"{{"task":{json}}}"#);
        let Request::Analyze(a) = parse_request(&req, DEFAULT_MAX_PAYLOAD).unwrap() else {
            panic!("expected analyze");
        };
        let TaskSpec::Inline(parsed) = a.task else {
            panic!("expected inline task");
        };
        assert_eq!(parsed.name(), task.name());
    }

    #[test]
    fn invalid_inline_task_is_a_structured_error() {
        let err = parse_request(r#"{"task":{"bogus":true}}"#, DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(err.0.contains("invalid inline task"), "{err}");
    }

    #[test]
    fn responses_are_single_json_lines() {
        for text in [
            error_response("boom"),
            overload_response("server overloaded", OVERLOAD_RETRY_MS),
            pong_response(),
            shutdown_response(),
            persist_response(3, 6),
            stats_response(1, 2, 3, 4, 5, &HealthStats::default(), vec![]),
            poisoned_response("t", 0xdead_beef),
            analyze_response(
                "t",
                &Verdict::Unknown { reason: "r".into() },
                "budget",
                0xdead_beef,
                1.5,
                Some(50),
            ),
        ] {
            assert!(!text.contains('\n'), "{text}");
            let doc: Value = serde_json::from_str(&text).unwrap();
            assert!(matches!(doc, Value::Object(_)));
        }
    }

    #[test]
    fn proto_version_round_trips_and_rejects_the_unsupported() {
        // Absent: old clients keep working.
        assert_eq!(
            parse_request(r#"{"op":"ping"}"#, DEFAULT_MAX_PAYLOAD).unwrap(),
            Request::Ping
        );
        // Present and matching: accepted on every op, including the
        // implicit analyze default.
        assert_eq!(
            parse_request(r#"{"op":"ping","proto":2}"#, DEFAULT_MAX_PAYLOAD).unwrap(),
            Request::Ping
        );
        assert!(matches!(
            parse_request(r#"{"task":"consensus","proto":2}"#, DEFAULT_MAX_PAYLOAD).unwrap(),
            Request::Analyze(_)
        ));
        // Unsupported: a named error, not a misparse. v1 peers keyed
        // stage artifacts per whole task, so they are refused by name.
        let err = parse_request(r#"{"op":"ping","proto":1}"#, DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(
            err.0.contains("unsupported proto version 1")
                && err.0.contains(&format!("speaks {PROTO_VERSION}")),
            "{err}"
        );
        // Ill-typed: named field error.
        let err = parse_request(r#"{"op":"ping","proto":"new"}"#, DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(err.0.contains("field `proto`"), "{err}");
    }

    #[test]
    fn parses_a_stage_request_line() {
        let task = chromata_task::canonicalize(&chromata_task::library::hourglass());
        let job = chromata::StageJob::Links { task };
        let line = chromata::stage_request_line(&job).unwrap();
        let parsed = parse_request(&line, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(parsed, Request::Stage(Box::new(job)));
        // Bad stage payloads surface the core layer's named rejection.
        let err = parse_request(r#"{"op":"stage"}"#, DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(err.0.contains("needs a `stage`"), "{err}");
    }

    #[test]
    fn retry_hint_is_monotone_in_load_and_bounded() {
        assert_eq!(overload_retry_hint(0, 0), OVERLOAD_RETRY_MS);
        let mut previous = 0;
        for pending in 0..32 {
            let hint = overload_retry_hint(pending, 0);
            assert!(
                hint >= previous,
                "hint must not shrink as the queue deepens"
            );
            previous = hint;
        }
        for in_flight in 1..8 {
            assert!(overload_retry_hint(4, in_flight) > overload_retry_hint(4, in_flight - 1));
        }
        assert_eq!(overload_retry_hint(usize::MAX, usize::MAX), 5_000);
    }

    #[test]
    fn retry_backoff_honors_the_hint_and_caps() {
        // With a server hint: honored as-is, independent of attempt.
        assert_eq!(retry_backoff_ms(0, Some(40)), 40);
        assert_eq!(retry_backoff_ms(5, Some(40)), 40);
        // Hints are capped like the server caps its own.
        assert_eq!(retry_backoff_ms(0, Some(u64::MAX)), MAX_RETRY_HINT_MS);
        // Without a hint: exponential from the base, monotone, capped.
        let mut previous = 0;
        for attempt in 0..12 {
            let delay = retry_backoff_ms(attempt, None);
            assert!(delay >= previous, "backoff must not shrink");
            assert!(delay <= MAX_RETRY_HINT_MS);
            previous = delay;
        }
        assert_eq!(retry_backoff_ms(0, None), OVERLOAD_RETRY_MS);
        assert_eq!(retry_backoff_ms(1, None), OVERLOAD_RETRY_MS * 2);
        assert_eq!(
            retry_backoff_ms(63, None),
            MAX_RETRY_HINT_MS,
            "no shift overflow"
        );
    }

    #[test]
    fn overload_hint_extraction_spares_final_verdicts() {
        // An admission reject is retryable.
        let reject = overload_response("busy", 75);
        assert_eq!(overload_retry_hint_of(&reject), Some(75));
        // A budget-induced UNKNOWN also hints but carries a digest: it
        // is a final verdict, not an invitation to spin.
        let unknown = analyze_response(
            "t",
            &Verdict::Unknown {
                reason: "budget".into(),
            },
            "budget",
            0xfeed,
            1.0,
            Some(200),
        );
        assert_eq!(overload_retry_hint_of(&unknown), None);
        // Plain errors and pongs carry no hint.
        assert_eq!(overload_retry_hint_of(&error_response("nope")), None);
        assert_eq!(overload_retry_hint_of(&pong_response()), None);
        assert_eq!(overload_retry_hint_of("not json"), None);
    }

    #[test]
    fn stats_response_lists_health_and_quarantined_fingerprints() {
        let health = HealthStats {
            persist_failures: 3,
            read_through: true,
            quarantined: vec![0xabcd],
        };
        let text = stats_response(9, 8, 7, 6, 5, &health, vec![]);
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["persist_failures"], Value::Int(3));
        assert_eq!(doc["read_through"], Value::Bool(true));
        assert_eq!(
            doc["quarantined"],
            Value::Array(vec![Value::String("000000000000abcd".into())])
        );
    }

    #[test]
    fn poisoned_response_is_a_structured_unknown_with_a_fingerprint() {
        let text = poisoned_response("bad-task", 0x1234);
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["status"], Value::String("ok".into()));
        assert_eq!(doc["verdict"], Value::String("UNKNOWN".into()));
        assert_eq!(doc["fingerprint"], Value::String("0000000000001234".into()));
        let Value::String(reason) = &doc["reason"] else {
            panic!("expected a reason string");
        };
        assert!(reason.starts_with("poisoned:"), "{reason}");
    }

    #[test]
    fn overload_response_is_unknown_with_a_retry_hint() {
        let text = overload_response("server overloaded: 8 in flight", OVERLOAD_RETRY_MS);
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["verdict"], Value::String("UNKNOWN".into()));
        // The vendored parser reads non-negative integers as `Int`.
        assert_eq!(doc["retry_after_ms"], Value::Int(OVERLOAD_RETRY_MS as i64));
        assert_eq!(doc["status"], Value::String("ok".into()));
    }
}
