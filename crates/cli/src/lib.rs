//! Library backing the `chromata` command-line tool.
//!
//! The binary is a thin wrapper around [`parse`] and [`run`], so every
//! command is unit-testable without spawning processes. See
//! `chromata help` for the command grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
pub mod chaos;
pub mod registry;
pub mod serve;
pub mod shard;
pub mod wire;

pub use app::{load_task, parse, run, CacheAction, CliError, Command};
pub use chaos::{run_campaign, ChaosOptions};
pub use serve::{ServeOptions, Server, ShutdownHandle};
pub use shard::{configure_shards, TcpShardIo};
