//! `chromata serve` — a long-lived, dependency-free verdict daemon.
//!
//! The server accepts newline-delimited JSON requests (see
//! [`crate::wire`]) over TCP, dispatches them through
//! [`chromata::analyze_governed`] against the process-wide warm
//! [`chromata::ArtifactStore`], and answers every request — including
//! malformed and rejected ones — with exactly one structured response
//! line. Admission control is layered:
//!
//! * **connection level** — a bounded pending-connection queue; when it
//!   is full the accept thread answers an overload response itself and
//!   closes, so a client is never silently dropped;
//! * **request level** — a [`Gate`] caps concurrent analyses; a request
//!   that cannot get a permit is answered immediately with
//!   `verdict: "UNKNOWN"` plus a `retry_after_ms` hint, within a
//!   bounded deadline rather than queueing unboundedly;
//! * **budget level** — each admitted analysis runs under a per-request
//!   [`Budget`] clamped to the server's caps, so one expensive task
//!   cannot monopolize a worker forever.
//!
//! Durability rides on the PR 5 snapshot layer: the server warm-starts
//! from `--cache-dir` on boot, persists dirty caches in the background
//! on a fixed cadence, and persists once more on graceful shutdown.
//! Because snapshots are written atomically (temp + fsync + rename), an
//! abrupt SIGKILL loses at most the last cadence interval, never the
//! on-disk history. SIGTERM/SIGINT are gentler: the CLI entry point
//! watches for them with `chromata-signal` and turns either into the
//! same graceful shutdown a wire `{"op":"shutdown"}` triggers — final
//! persist included — via [`Server::shutdown_handle`].
//!
//! Failure containment added by the chaos PR:
//!
//! * a failed snapshot (ENOSPC, short write) leaves the previous
//!   snapshot intact, flips the store into read-through degradation,
//!   and is retried on the next cadence — serving never wedges;
//! * a task whose analysis panics a worker repeatedly is quarantined
//!   by structural fingerprint and answered with a structured
//!   `UNKNOWN(poisoned)` line instead of costing more workers;
//! * shutdown drains in-flight connections under a hard deadline
//!   ([`SHUTDOWN_DRAIN_SECS`]); a stalled client cannot hold
//!   [`Server::wait`] hostage.
//!
//! This module is the **only** place in the workspace allowed to touch
//! socket types (xtask rule D4), which keeps network I/O auditable the
//! same way D2 confines clocks and D3 confines the filesystem.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use chromata::topology::govern::{Gate, Stopwatch};
use chromata::topology::structural_fingerprint;
use chromata::{
    analyze_governed, load_cache_dir, persist_failures, persist_now, stage_cache_stats,
    store_read_through, Budget, CacheDirConfig, CancelToken, LoadReport, PipelineOptions, Verdict,
};

use crate::app::CliError;
use crate::registry;
use crate::wire::{self, AnalyzeRequest, Request, TaskSpec};

/// Hard cap on bytes discarded while re-synchronizing after an
/// oversized request; a stream that exceeds it is treated as hostile
/// and closed.
const RESYNC_DRAIN_CAP: usize = 64 << 20;

/// Write timeout for response lines (seconds). A client that cannot
/// absorb one line within this window forfeits its connection; the
/// worker moves on.
const WRITE_TIMEOUT_SECS: u64 = 10;

/// Hard deadline (seconds) for draining in-flight connections after a
/// shutdown request. A worker still serving past it — e.g. pinned by a
/// stalled client holding a connection open — is abandoned rather than
/// joined, so [`Server::wait`] always returns promptly. Abandoned
/// workers hold no state the final persist needs: the store's own
/// locks recover from poisoning and snapshots are atomic.
pub const SHUTDOWN_DRAIN_SECS: u64 = 5;

/// How many analysis panics the same task (by structural fingerprint)
/// may cost before it is quarantined to an immediate structured
/// `UNKNOWN(poisoned)` answer.
const POISON_QUARANTINE_AFTER: u32 = 2;

/// Tracks tasks whose analysis panicked, keyed by structural
/// fingerprint. A fingerprint that reaches [`POISON_QUARANTINE_AFTER`]
/// panics is quarantined: the server refuses to re-run it and answers
/// with a structured poison verdict instead (the second worker death is
/// the proof the first was no fluke). The table is process-lifetime —
/// a restart retries, which is the desired behavior after a fix.
struct PoisonTable {
    panics: Mutex<BTreeMap<u64, u32>>,
}

impl PoisonTable {
    fn new() -> PoisonTable {
        PoisonTable {
            panics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one analysis panic for `fingerprint` and returns the
    /// total observed so far.
    fn note_panic(&self, fingerprint: u64) -> u32 {
        let mut panics = lock(&self.panics);
        let count = panics.entry(fingerprint).or_insert(0);
        *count = count.saturating_add(1);
        *count
    }

    /// Whether `fingerprint` has crossed the quarantine threshold.
    fn is_quarantined(&self, fingerprint: u64) -> bool {
        lock(&self.panics)
            .get(&fingerprint)
            .is_some_and(|&count| count >= POISON_QUARANTINE_AFTER)
    }

    /// Every quarantined fingerprint, ascending (for the stats line).
    fn quarantined(&self) -> Vec<u64> {
        lock(&self.panics)
            .iter()
            .filter(|&(_, &count)| count >= POISON_QUARANTINE_AFTER)
            .map(|(&fingerprint, _)| fingerprint)
            .collect()
    }
}

/// Tuning knobs for [`Server::start`]. `Default` gives a loopback
/// server sized to the machine with persistence disabled.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address. Port 0 asks the OS for a free port; read the
    /// actual one back from [`Server::local_addr`].
    pub addr: String,
    /// Worker threads. 0 means "size to available parallelism".
    pub threads: usize,
    /// Concurrent-analysis permits (the admission gate). `None` means
    /// one per worker thread; `Some(0)` is a valid configuration that
    /// rejects every analysis with an overload response (useful for
    /// drills and tests).
    pub analysis_slots: Option<usize>,
    /// Pending-connection queue bound. `None` means `4 × threads`;
    /// `Some(0)` makes the accept thread answer every connection with
    /// an overload response.
    pub queue: Option<usize>,
    /// Per-request payload bound in bytes.
    pub max_payload: usize,
    /// Server-side per-request wall-clock cap (milliseconds); a
    /// client-requested budget is clamped to it. `None` leaves
    /// uncapped requests unlimited.
    pub budget_ms: Option<u64>,
    /// Server-side cap on a client-requested `max_states`.
    pub max_states: usize,
    /// Explicit cache directory; falls back to `CHROMATA_CACHE_DIR`,
    /// then to disabled (see [`CacheDirConfig::resolve`]).
    pub cache_dir: Option<PathBuf>,
    /// Background persistence cadence in seconds; 0 disables the
    /// background persister (boot warm-start and shutdown persist
    /// still run whenever a cache directory is configured).
    pub persist_secs: u64,
    /// Per-connection idle read timeout in seconds.
    pub idle_timeout_secs: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7437".to_owned(),
            threads: 0,
            analysis_slots: None,
            queue: None,
            max_payload: wire::DEFAULT_MAX_PAYLOAD,
            budget_ms: None,
            max_states: usize::MAX,
            cache_dir: None,
            persist_secs: 30,
            idle_timeout_secs: 30,
        }
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// the queue and persist baton stay usable after a worker dies (they
/// hold plain data whose invariants the lock body re-establishes).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared by the accept thread, workers, and persister.
struct Shared {
    addr: SocketAddr,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
    cancel: CancelToken,
    gate: Gate,
    cache: CacheDirConfig,
    queue_cap: usize,
    max_payload: usize,
    budget_cap_ms: Option<u64>,
    max_states_cap: usize,
    idle_timeout_secs: u64,
    persist_secs: u64,
    persist_baton: Mutex<()>,
    persist_cv: Condvar,
    served: AtomicU64,
    analyzed: AtomicU64,
    overloaded: AtomicU64,
    malformed: AtomicU64,
    save_errors: AtomicU64,
    dirty: AtomicU64,
    poison: PoisonTable,
}

impl Shared {
    /// Flips the shutdown flag once and wakes every blocked thread:
    /// workers (condvar), the persister (its condvar), in-flight
    /// analyses (cancel token), and the accept loop (a self-connect).
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.cancel.cancel();
        self.ready.notify_all();
        self.persist_cv.notify_all();
        // `incoming()` has no timeout; a loopback connect is the
        // portable way to unblock it. This path is also how SIGTERM/
        // SIGINT land: the `chromata-signal` watcher thread (wired up
        // by the CLI entry point) calls into here as ordinary code, so
        // no work happens in async-signal context.
        drop(TcpStream::connect_timeout(
            &self.addr,
            Duration::from_secs(5),
        ));
    }
}

/// A cloneable, thread-safe handle that requests a graceful shutdown
/// of the server it came from. The signal watcher holds one; embedders
/// and tests may too. Requesting shutdown more than once is harmless.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Shared>);

impl ShutdownHandle {
    /// Triggers the same graceful shutdown a wire `{"op":"shutdown"}`
    /// request does: stop accepting, drain, final persist.
    pub fn request(&self) {
        self.0.request_shutdown();
    }
}

/// A running server. Obtain one with [`Server::start`]; it keeps
/// serving until a `shutdown` request arrives, then [`Server::wait`]
/// joins the threads and runs the final persist.
pub struct Server {
    shared: Arc<Shared>,
    loaded: Option<LoadReport>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    persister: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, warm-starts the stage caches, and spawns the accept
    /// thread, worker pool, and (if configured) background persister.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or a thread cannot spawn.
    pub fn start(opts: ServeOptions) -> Result<Server, CliError> {
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| CliError(format!("serve: cannot bind {}: {e}", opts.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CliError(format!("serve: cannot read bound address: {e}")))?;
        let cache = CacheDirConfig::resolve(opts.cache_dir.clone());
        // Unconditional load (not the once-per-dir `warm_start` guard):
        // a daemon boot is an explicit restore point, and a restart
        // within one test process must still warm from disk.
        let loaded = load_cache_dir(&cache);
        let threads = if opts.threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            opts.threads
        };
        let slots = opts.analysis_slots.unwrap_or(threads);
        let queue_cap = opts.queue.unwrap_or(threads.saturating_mul(4));
        let shared = Arc::new(Shared {
            addr,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cancel: CancelToken::new(),
            gate: Gate::new(slots),
            cache,
            queue_cap,
            max_payload: opts.max_payload,
            budget_cap_ms: opts.budget_ms,
            max_states_cap: opts.max_states,
            idle_timeout_secs: opts.idle_timeout_secs,
            persist_secs: opts.persist_secs,
            persist_baton: Mutex::new(()),
            persist_cv: Condvar::new(),
            served: AtomicU64::new(0),
            analyzed: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            save_errors: AtomicU64::new(0),
            dirty: AtomicU64::new(0),
            poison: PoisonTable::new(),
        });
        let spawn_err = |e: std::io::Error| CliError(format!("serve: cannot spawn thread: {e}"));
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("chromata-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(spawn_err)?
        };
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("chromata-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(spawn_err)?,
            );
        }
        let persister = if shared.cache.is_enabled() && opts.persist_secs > 0 {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("chromata-persist".to_owned())
                    .spawn(move || persist_loop(&shared))
                    .map_err(spawn_err)?,
            )
        } else {
            None
        };
        Ok(Server {
            shared,
            loaded,
            accept: Some(accept),
            workers,
            persister,
        })
    }

    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The warm-start report, if a cache directory was configured.
    #[must_use]
    pub fn loaded(&self) -> Option<&LoadReport> {
        self.loaded.as_ref()
    }

    /// Triggers a graceful shutdown from outside (tests, embedding).
    /// Equivalent to a wire `{"op":"shutdown"}` request.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// A detachable handle for requesting shutdown from another thread
    /// — the signal watcher cannot borrow the server it must stop,
    /// because [`Server::wait`] consumes it.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared))
    }

    /// Blocks until the server shuts down, joins every thread, runs the
    /// final persist, and returns a one-paragraph summary.
    ///
    /// Worker joins are bounded by [`SHUTDOWN_DRAIN_SECS`]: in-flight
    /// requests get that long to finish, then stalled workers (e.g.
    /// pinned by a client that opened a connection and went silent) are
    /// abandoned and counted in the summary. Without the bound, one
    /// stalled client could hold `wait` hostage for a full idle-timeout
    /// window — or forever, if it keeps trickling bytes.
    #[must_use]
    pub fn wait(mut self) -> String {
        if let Some(accept) = self.accept.take() {
            drop(accept.join());
        }
        let drain = Stopwatch::start();
        let mut workers: Vec<JoinHandle<()>> = self.workers.drain(..).collect();
        loop {
            let (finished, running): (Vec<_>, Vec<_>) =
                workers.into_iter().partition(JoinHandle::is_finished);
            for worker in finished {
                drop(worker.join());
            }
            workers = running;
            if workers.is_empty() || drain.elapsed() >= Duration::from_secs(SHUTDOWN_DRAIN_SECS) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let stalled = workers.len();
        // Dropping the handles detaches the stalled workers; they exit
        // on their own once their client disconnects or times out.
        drop(workers);
        if let Some(persister) = self.persister.take() {
            drop(persister.join());
        }
        let mut persisted = String::new();
        if self.shared.cache.is_enabled() {
            match persist_now(&self.shared.cache) {
                Some(Ok(report)) => {
                    persisted = format!(
                        "; persisted {} entr(ies) across {} file(s)",
                        report.entries_written, report.files_written
                    );
                }
                Some(Err(e)) => persisted = format!("; final persist failed: {e}"),
                None => {}
            }
        }
        let shared = &self.shared;
        let abandoned = if stalled > 0 {
            format!("; abandoned {stalled} stalled connection(s)")
        } else {
            String::new()
        };
        format!(
            "serve: stopped after {} request(s) ({} analyzed, {} overloaded, {} malformed){persisted}{abandoned}",
            shared.served.load(Ordering::Relaxed),
            shared.analyzed.load(Ordering::Relaxed),
            shared.overloaded.load(Ordering::Relaxed),
            shared.malformed.load(Ordering::Relaxed),
        )
    }
}

/// Accepts connections and hands them to the worker pool, answering an
/// overload response inline when the pending queue is at its bound.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.queue_cap {
            let hint = wire::overload_retry_hint(queue.len(), shared.gate.in_flight());
            drop(queue);
            shared.overloaded.fetch_add(1, Ordering::Relaxed);
            shared.served.fetch_add(1, Ordering::Relaxed);
            reject_connection(stream, shared.queue_cap, hint);
        } else {
            queue.push_back(stream);
            drop(queue);
            shared.ready.notify_one();
        }
    }
}

/// Answers a connection the queue cannot hold: one overload line within
/// a bounded write deadline, then close. Responding beats dropping —
/// the client learns it should back off instead of hanging.
fn reject_connection(mut stream: TcpStream, queue_cap: usize, retry_after_ms: u64) {
    drop(stream.set_write_timeout(Some(Duration::from_secs(WRITE_TIMEOUT_SECS))));
    drop(stream.set_read_timeout(Some(Duration::from_secs(2))));
    let line = wire::overload_response(
        &format!("server overloaded: pending-connection queue is full ({queue_cap})"),
        retry_after_ms,
    );
    drop(stream.write_all(line.as_bytes()));
    drop(stream.write_all(b"\n"));
    drop(stream.flush());
    // Send FIN but keep reading: closing with the client's request
    // still in flight would RST the connection and can discard the
    // response from the client's receive buffer. Drain (bounded) until
    // the client finishes, so the reject is actually delivered.
    drop(stream.shutdown(std::net::Shutdown::Write));
    let mut sink = [0u8; 1024];
    let mut drained = 0usize;
    while let Ok(n) = stream.read(&mut sink) {
        if n == 0 {
            break;
        }
        drained = drained.saturating_add(n);
        if drained > wire::DEFAULT_MAX_PAYLOAD {
            break;
        }
    }
}

/// A worker: pop a connection, serve it to completion, repeat. Returns
/// when shutdown is flagged and the queue has drained.
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            // chromata-lint: allow(L2): Condvar::wait releases the queue
            // guard atomically while blocked; the `wait` edge the pass
            // follows is a name collision with `Server::wait`.
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        handle_connection(stream, shared);
    }
}

/// Outcome of reading one request line.
enum LineError {
    /// The line exceeded the payload bound. `resynced` says whether the
    /// stream was drained to the next newline (keep the connection) or
    /// not (close it).
    Oversized { resynced: bool },
    /// The read deadline elapsed. `partial` distinguishes a slow-loris
    /// client stalled mid-line (answer a structured timeout error, then
    /// close) from an idle connection between requests (close quietly).
    TimedOut { partial: bool },
    /// Disconnect or non-UTF-8 input: close the connection.
    Io,
}

/// Reads one `\n`-terminated line without ever buffering more than the
/// payload bound plus one internal chunk. The socket's read timeout
/// doubles as the per-line deadline: a client that trickles a partial
/// line and stalls is cut off within one timeout window, freeing the
/// worker (slow-loris guard).
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> Result<Option<String>, LineError> {
    let mut buf = Vec::new();
    loop {
        let chunk = reader.fill_buf().map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                LineError::TimedOut {
                    partial: !buf.is_empty(),
                }
            } else {
                LineError::Io
            }
        })?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            // EOF mid-line: serve the unterminated tail as a request so
            // `printf '{...}' | nc` style clients still get an answer.
            return String::from_utf8(buf).map(Some).map_err(|_| LineError::Io);
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            if buf.len() > max {
                return Err(LineError::Oversized { resynced: true });
            }
            return String::from_utf8(buf).map(Some).map_err(|_| LineError::Io);
        }
        let n = chunk.len();
        buf.extend_from_slice(chunk);
        reader.consume(n);
        if buf.len() > max {
            return Err(LineError::Oversized {
                resynced: drain_to_newline(reader),
            });
        }
    }
}

/// Discards bytes until the next newline so the connection can keep
/// serving after an oversized request. Gives up (returns `false`) on
/// I/O errors, EOF, or after [`RESYNC_DRAIN_CAP`] bytes.
fn drain_to_newline(reader: &mut BufReader<TcpStream>) -> bool {
    let mut drained = 0usize;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(_) => return false,
        };
        if chunk.is_empty() {
            return false;
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            reader.consume(pos + 1);
            return true;
        }
        let n = chunk.len();
        reader.consume(n);
        drained = drained.saturating_add(n);
        if drained > RESYNC_DRAIN_CAP {
            return false;
        }
    }
}

/// Serves one connection until EOF, idle timeout, an unrecoverable
/// framing error, or shutdown. Every request — well-formed or not —
/// gets exactly one response line.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    drop(stream.set_read_timeout(Some(Duration::from_secs(shared.idle_timeout_secs))));
    drop(stream.set_write_timeout(Some(Duration::from_secs(WRITE_TIMEOUT_SECS))));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            drop(write_line(
                &mut writer,
                &wire::error_response("server shutting down"),
            ));
            return;
        }
        match read_bounded_line(&mut reader, shared.max_payload) {
            Ok(None) => return,
            Ok(Some(line)) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                shared.served.fetch_add(1, Ordering::Relaxed);
                let (response, wants_shutdown) = dispatch(line, shared);
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
                if wants_shutdown {
                    shared.request_shutdown();
                    return;
                }
            }
            Err(LineError::Oversized { resynced }) => {
                shared.served.fetch_add(1, Ordering::Relaxed);
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                let response = wire::error_response(&format!(
                    "payload exceeds the {}-byte limit",
                    shared.max_payload
                ));
                if write_line(&mut writer, &response).is_err() || !resynced {
                    return;
                }
            }
            Err(LineError::TimedOut { partial }) => {
                if partial {
                    // Slow loris: a partial line was trickled in, then
                    // nothing. Answer a structured timeout so the client
                    // knows what happened, then free the worker.
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    shared.malformed.fetch_add(1, Ordering::Relaxed);
                    drop(write_line(
                        &mut writer,
                        &wire::error_response(&format!(
                            "read timed out after {}s with a partial request; closing connection",
                            shared.idle_timeout_secs
                        )),
                    ));
                }
                return;
            }
            Err(LineError::Io) => return,
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Routes one parsed request line to its handler. Returns the response
/// plus whether a graceful shutdown should follow it.
fn dispatch(line: &str, shared: &Shared) -> (String, bool) {
    match wire::parse_request(line, shared.max_payload) {
        Err(e) => {
            shared.malformed.fetch_add(1, Ordering::Relaxed);
            (wire::error_response(&e.0), false)
        }
        Ok(Request::Ping) => (wire::pong_response(), false),
        Ok(Request::Stats) => {
            let caches = stage_cache_stats()
                .iter()
                .map(|(kind, stats)| wire::cache_stats_value(kind.name(), stats))
                .collect();
            let health = wire::HealthStats {
                persist_failures: persist_failures(),
                read_through: store_read_through(),
                quarantined: shared.poison.quarantined(),
            };
            (
                wire::stats_response(
                    shared.served.load(Ordering::Relaxed),
                    shared.analyzed.load(Ordering::Relaxed),
                    shared.overloaded.load(Ordering::Relaxed),
                    shared.malformed.load(Ordering::Relaxed),
                    shared.gate.in_flight(),
                    &health,
                    caches,
                ),
                false,
            )
        }
        Ok(Request::Persist) => match persist_now(&shared.cache) {
            None => (wire::error_response("no cache directory configured"), false),
            Some(Ok(report)) => {
                shared.dirty.store(0, Ordering::Release);
                (
                    wire::persist_response(report.entries_written, report.files_written as u64),
                    false,
                )
            }
            Some(Err(e)) => {
                shared.save_errors.fetch_add(1, Ordering::Relaxed);
                (wire::error_response(&format!("persist failed: {e}")), false)
            }
        },
        Ok(Request::Shutdown) => (wire::shutdown_response(), true),
        Ok(Request::Analyze(req)) => (handle_analyze(&req, shared), false),
        Ok(Request::Stage(job)) => (handle_stage(&job, shared), false),
    }
}

/// Executes one verdict-engine stage under the admission gate (worker
/// mode). The response line — artifact plus checksum — is built by the
/// socket-free core layer; a panic costs one response, not one worker.
fn handle_stage(job: &chromata::StageJob, shared: &Shared) -> String {
    let Some(_permit) = shared.gate.try_enter() else {
        shared.overloaded.fetch_add(1, Ordering::Relaxed);
        let hint = wire::overload_retry_hint(lock(&shared.queue).len(), shared.gate.in_flight());
        return wire::overload_response(
            &format!(
                "worker overloaded: all {} analysis slot(s) in flight",
                shared.gate.capacity()
            ),
            hint,
        );
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        chromata::execute_stage_line(job)
    }));
    match outcome {
        Err(_) => wire::error_response(&format!(
            "internal: stage `{}` panicked; the worker recovered",
            job.stage_name()
        )),
        Ok(Err(e)) => wire::error_response(&e),
        Ok(Ok(line)) => {
            shared.analyzed.fetch_add(1, Ordering::Relaxed);
            shared.dirty.fetch_add(1, Ordering::Relaxed);
            line
        }
    }
}

/// Runs one admitted analysis, or answers the structured reject.
fn handle_analyze(req: &AnalyzeRequest, shared: &Shared) -> String {
    let task = match &req.task {
        TaskSpec::Named(name) => match registry::find(name) {
            Some(task) => task,
            None => {
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                return wire::error_response(&format!(
                    "unknown library task `{name}` (see `chromata list`)"
                ));
            }
        },
        TaskSpec::Inline(task) => (**task).clone(),
    };
    if task.process_count() > 3 {
        // `analyze_governed` asserts this; pre-checking keeps the
        // worker alive and the rejection structured.
        shared.malformed.fetch_add(1, Ordering::Relaxed);
        return wire::error_response(&format!(
            "task `{}` has {} processes; the characterization covers at most three",
            task.name(),
            task.process_count()
        ));
    }
    // Poison quarantine: a task that already cost two workers a panic
    // is answered immediately, before it can take an analysis slot.
    let fingerprint = structural_fingerprint(&task);
    if shared.poison.is_quarantined(fingerprint) {
        return wire::poisoned_response(task.name(), fingerprint);
    }
    let Some(_permit) = shared.gate.try_enter() else {
        shared.overloaded.fetch_add(1, Ordering::Relaxed);
        let hint = wire::overload_retry_hint(lock(&shared.queue).len(), shared.gate.in_flight());
        return wire::overload_response(
            &format!(
                "server overloaded: all {} analysis slot(s) in flight",
                shared.gate.capacity()
            ),
            hint,
        );
    };
    let effective_ms = match (req.budget_ms, shared.budget_cap_ms) {
        (Some(requested), Some(cap)) => Some(requested.min(cap)),
        (Some(requested), None) => Some(requested),
        (None, cap) => cap,
    };
    let mut budget = Budget::unlimited();
    if let Some(ms) = effective_ms {
        budget = budget.with_deadline_in(Duration::from_millis(ms));
    }
    if let Some(states) = req.max_states {
        budget = budget.with_max_states(states.min(shared.max_states_cap));
    }
    let options = PipelineOptions {
        act_fallback_rounds: req.act_fallback,
    };
    let clock = Stopwatch::start();
    // A panic in the analysis pipeline must cost one response, not one
    // worker: catch it and answer a structured internal error. The
    // store's locks recover from poisoning (see `SharedCache`).
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        analyze_governed(&task, options, &budget, &shared.cancel)
    }));
    let wall_ms = clock.elapsed().as_secs_f64() * 1000.0;
    match outcome {
        Err(_) => {
            let count = shared.poison.note_panic(fingerprint);
            let quarantined = if count >= POISON_QUARANTINE_AFTER {
                "; the task is now quarantined"
            } else {
                ""
            };
            wire::error_response(&format!(
                "internal: analysis of `{}` panicked; the worker recovered{quarantined}",
                task.name()
            ))
        }
        Ok(analysis) => {
            shared.analyzed.fetch_add(1, Ordering::Relaxed);
            shared.dirty.fetch_add(1, Ordering::Relaxed);
            // A budget-induced UNKNOWN carries a retry hint: come back
            // after roughly twice the budget that just ran out.
            let retry_after_ms = match (&analysis.verdict, effective_ms) {
                (Verdict::Unknown { .. }, Some(ms)) => Some(ms.saturating_mul(2).max(50)),
                _ => None,
            };
            wire::analyze_response(
                task.name(),
                &analysis.verdict,
                analysis.evidence.decided_by,
                analysis.evidence.deterministic_digest(),
                wall_ms,
                retry_after_ms,
            )
        }
    }
}

/// Background persister: every `persist_secs`, snapshot the caches if
/// any analysis completed since the last snapshot. Persist failures are
/// counted and retried next tick, never fatal.
fn persist_loop(shared: &Shared) {
    // chromata-lint: allow(L2): the baton exists to serialize the single
    // persister thread; holding it across the snapshot is its purpose,
    // and no request path ever contends on it.
    let mut baton = lock(&shared.persist_baton);
    loop {
        let (guard, _timeout) = shared
            .persist_cv
            .wait_timeout(baton, Duration::from_secs(shared.persist_secs))
            .unwrap_or_else(PoisonError::into_inner);
        baton = guard;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.dirty.swap(0, Ordering::AcqRel) == 0 {
            continue;
        }
        if let Some(Err(_)) = persist_now(&shared.cache) {
            shared.save_errors.fetch_add(1, Ordering::Relaxed);
            // The snapshot failed after `dirty` was already swapped to
            // zero; re-mark it so the next cadence retries instead of
            // silently dropping the delta until another request lands.
            shared.dirty.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One-shot client: connect, send one request line, read one response
/// line. Backs `chromata request` and the e2e tests; lives here so
/// sockets stay confined to this module (rule D4).
///
/// # Errors
///
/// Fails on connect/write/read errors or an empty response.
pub fn request_line(addr: &str, line: &str, timeout_secs: u64) -> Result<String, CliError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| CliError(format!("request: cannot connect to {addr}: {e}")))?;
    drop(stream.set_read_timeout(Some(Duration::from_secs(timeout_secs))));
    drop(stream.set_write_timeout(Some(Duration::from_secs(timeout_secs))));
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliError(format!("request: cannot clone stream: {e}")))?;
    // A failed write is not yet a failed request: an admission-control
    // reject may have answered-and-FINed before reading our bytes, so
    // the response can already be in flight. Try the read regardless.
    let write_result = writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush());
    let mut response = String::new();
    let read_result = BufReader::new(stream).read_line(&mut response);
    if response.trim().is_empty() {
        if let Err(e) = write_result {
            return Err(CliError(format!("request: write failed: {e}")));
        }
        if let Err(e) = read_result {
            return Err(CliError(format!("request: read failed: {e}")));
        }
        return Err(CliError(
            "request: the server closed the connection without a response".to_owned(),
        ));
    }
    Ok(response.trim_end().to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_table_quarantines_after_two_panics() {
        let table = PoisonTable::new();
        assert!(!table.is_quarantined(7));
        assert_eq!(table.note_panic(7), 1);
        assert!(
            !table.is_quarantined(7),
            "one panic may be a budget fluke; no quarantine yet"
        );
        assert_eq!(table.note_panic(7), 2);
        assert!(table.is_quarantined(7));
        assert!(!table.is_quarantined(8), "fingerprints are independent");
        assert_eq!(table.quarantined(), vec![7]);
    }

    #[test]
    fn poison_table_lists_quarantined_fingerprints_sorted() {
        let table = PoisonTable::new();
        for fp in [42u64, 3, 99] {
            table.note_panic(fp);
            table.note_panic(fp);
        }
        table.note_panic(1); // below threshold: not listed
        assert_eq!(table.quarantined(), vec![3, 42, 99]);
    }
}
