//! End-to-end tests for `chromata serve`: the acceptance criteria of
//! the verdict-service PR.
//!
//! 1. **Digest parity** — K concurrent clients receive verdicts and
//!    evidence-chain digests byte-identical to sequential cold
//!    single-shot runs.
//! 2. **Overload semantics** — a deliberately overloaded server (zero
//!    analysis slots, or a zero-length pending queue) answers
//!    `verdict: "UNKNOWN"` with a `retry_after_ms` hint within a
//!    bounded deadline; it never queues unboundedly or silently drops
//!    a connection.
//! 3. **Malformed-request resilience** — fuzz-style truncated/mutated
//!    request bytes get structured error responses; no worker dies;
//!    subsequent requests on the same and on fresh connections succeed.
//! 4. **Durability** — analyses persist on graceful shutdown and a
//!    warm restart restores them.
//!
//! The servers bind loopback port 0 (OS-assigned) and run in-process;
//! the process-wide artifact store is shared, so every test serializes
//! through [`store_guard`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use chromata::{analyze, clear_stage_caches, PipelineOptions};
use chromata_cli::serve::{request_line, ServeOptions, Server};
use chromata_task::library::{hourglass, identity_task, pinwheel, two_set_agreement};
use serde_json::Value;

fn store_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chromata-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Loopback test server: port 0, persistence off unless asked.
fn options() -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        persist_secs: 0,
        cache_dir: None,
        idle_timeout_secs: 10,
        ..ServeOptions::default()
    }
}

fn json_line(raw: &str) -> Value {
    serde_json::from_str(raw).unwrap_or_else(|e| panic!("bad response line ({e}): {raw}"))
}

/// Reads a numeric field; the vendored parser yields `Int` for
/// non-negative integers, so both variants are accepted.
fn uint_field(doc: &Value, key: &str) -> Option<u64> {
    match &doc[key] {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn str_field<'a>(doc: &'a Value, key: &str) -> &'a str {
    match &doc[key] {
        Value::String(s) => s.as_str(),
        other => panic!("field {key} is {other:?}, not a string: {doc:?}"),
    }
}

/// Registry names and builders for the overlapping task set. The names
/// must match `chromata list` so requests can travel by name.
fn task_set() -> Vec<(&'static str, chromata_task::Task)> {
    vec![
        ("hourglass", hourglass()),
        ("2-set-agreement", two_set_agreement()),
        ("identity", identity_task(3)),
        ("pinwheel", pinwheel()),
    ]
}

#[test]
fn concurrent_clients_match_sequential_cold_digests() {
    let _guard = store_guard();
    let tasks = task_set();

    // Sequential cold single-shot baseline.
    clear_stage_caches();
    let baseline: Vec<(String, String)> = tasks
        .iter()
        .map(|(_, t)| {
            let a = analyze(t, PipelineOptions::default());
            (
                a.verdict.to_string(),
                format!("{:016x}", a.evidence.deterministic_digest()),
            )
        })
        .collect();

    clear_stage_caches();
    let server = Server::start(options()).unwrap();
    let addr = server.local_addr().to_string();

    const CLIENTS: usize = 8;
    let answers: Vec<Vec<(usize, String, String)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let addr = addr.clone();
                let tasks = &tasks;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for offset in 0..tasks.len() {
                        let i = (client + offset) % tasks.len();
                        let req = format!(r#"{{"task":"{}"}}"#, tasks[i].0);
                        let raw = request_line(&addr, &req, 60).unwrap();
                        let doc = json_line(&raw);
                        assert_eq!(str_field(&doc, "status"), "ok", "{raw}");
                        out.push((
                            i,
                            str_field(&doc, "detail").to_owned(),
                            str_field(&doc, "evidence_digest").to_owned(),
                        ));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (client, answer) in answers.iter().enumerate() {
        for (i, detail, digest) in answer {
            assert_eq!(
                (detail, digest),
                (&baseline[*i].0, &baseline[*i].1),
                "client {client}, task {}: served answer diverged from the \
                 sequential cold run",
                tasks[*i].0
            );
        }
    }

    server.shutdown();
    let summary = server.wait();
    assert!(summary.contains("stopped after"), "{summary}");
}

#[test]
fn zero_slot_server_answers_unknown_with_retry_hint_in_bounded_time() {
    let _guard = store_guard();
    let server = Server::start(ServeOptions {
        analysis_slots: Some(0),
        ..options()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let started = Instant::now();
    let raw = request_line(&addr, r#"{"task":"hourglass"}"#, 60).unwrap();
    let elapsed = started.elapsed();
    let doc = json_line(&raw);
    assert_eq!(str_field(&doc, "status"), "ok", "{raw}");
    assert_eq!(str_field(&doc, "verdict"), "UNKNOWN", "{raw}");
    assert!(str_field(&doc, "reason").contains("overloaded"), "{raw}");
    assert!(
        uint_field(&doc, "retry_after_ms").is_some_and(|ms| ms > 0),
        "missing retry hint: {raw}"
    );
    // Bounded deadline: an admission reject must not sit in a queue.
    assert!(
        elapsed < Duration::from_secs(5),
        "reject took {elapsed:?} — overload degraded into latency"
    );

    // Control ops keep working on an overloaded server.
    let pong = json_line(&request_line(&addr, r#"{"op":"ping"}"#, 60).unwrap());
    assert_eq!(str_field(&pong, "status"), "ok");

    server.shutdown();
    let _ = server.wait();
}

#[test]
fn zero_queue_server_rejects_connections_with_a_response_not_a_drop() {
    let _guard = store_guard();
    let server = Server::start(ServeOptions {
        queue: Some(0),
        ..options()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    // Every connection is over the connection-level bound: the accept
    // thread itself must answer (not silently close, not hang).
    for _ in 0..3 {
        let raw = request_line(&addr, r#"{"task":"hourglass"}"#, 60);
        // The accept thread writes the overload line immediately on
        // accept; depending on timing the client may see it before or
        // after its own write, but it must see a full response line.
        let raw = raw.unwrap();
        let doc = json_line(&raw);
        assert_eq!(str_field(&doc, "verdict"), "UNKNOWN", "{raw}");
        assert!(str_field(&doc, "reason").contains("queue"), "{raw}");
        assert!(
            uint_field(&doc, "retry_after_ms").is_some_and(|ms| ms > 0),
            "{raw}"
        );
    }

    server.shutdown();
    let _ = server.wait();
}

#[test]
fn budget_starved_request_degrades_to_unknown_with_retry_hint() {
    let _guard = store_guard();
    let server = Server::start(options()).unwrap();
    let addr = server.local_addr().to_string();

    // An already-elapsed deadline trips the pre-tier budget guard:
    // structured UNKNOWN, decided by "budget", with a retry hint.
    let raw = request_line(&addr, r#"{"task":"pinwheel","budget_ms":0}"#, 60).unwrap();
    let doc = json_line(&raw);
    assert_eq!(str_field(&doc, "status"), "ok", "{raw}");
    assert_eq!(str_field(&doc, "verdict"), "UNKNOWN", "{raw}");
    assert_eq!(str_field(&doc, "decided_by"), "budget", "{raw}");
    assert!(
        uint_field(&doc, "retry_after_ms").is_some_and(|ms| ms >= 50),
        "missing retry hint: {raw}"
    );

    // The same task with an honest budget then decides for real.
    let raw = request_line(&addr, r#"{"task":"pinwheel"}"#, 60).unwrap();
    let doc = json_line(&raw);
    assert_ne!(str_field(&doc, "verdict"), "UNKNOWN", "{raw}");

    server.shutdown();
    let _ = server.wait();
}

/// One keep-alive connection is fed every malformed shape in turn; each
/// must produce exactly one structured error line, and the connection
/// must still serve a valid request afterwards.
#[test]
fn malformed_requests_get_structured_errors_and_the_connection_survives() {
    let _guard = store_guard();
    let server = Server::start(ServeOptions {
        max_payload: 4096,
        ..options()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut exchange = |request: &str| -> Value {
        writer.write_all(request.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!line.trim().is_empty(), "no response to {request:?}");
        json_line(line.trim_end())
    };

    let malformed = [
        "not json at all",
        r#"{"task":"hourglass""#,
        r#"[1,2,3]"#,
        r#""just a string""#,
        r#"{"task":"hourglass","frobnicate":1}"#,
        r#"{"op":"defrag"}"#,
        r#"{"task":42}"#,
        r#"{"task":"hourglass","budget_ms":-1}"#,
        r#"{"task":"no-such-task-anywhere"}"#,
        r#"{"task":{"bogus":true}}"#,
        r#"{"op":"ping","task":"hourglass"}"#,
    ];
    for request in malformed {
        let doc = exchange(request);
        assert_eq!(
            str_field(&doc, "status"),
            "error",
            "{request:?} should be a structured error"
        );
        assert!(
            !str_field(&doc, "error").is_empty(),
            "{request:?} error must name a cause"
        );
    }

    // An oversized payload is answered and the stream re-synchronized...
    let huge = format!(r#"{{"task":"{}"}}"#, "x".repeat(8192));
    let doc = exchange(&huge);
    assert_eq!(str_field(&doc, "status"), "error");
    assert!(str_field(&doc, "error").contains("byte limit"), "{doc:?}");

    // ...so the very same connection still serves a real request.
    let doc = exchange(r#"{"task":"hourglass"}"#);
    assert_eq!(str_field(&doc, "status"), "ok");
    assert_eq!(str_field(&doc, "verdict"), "UNSOLVABLE");

    server.shutdown();
    let _ = server.wait();
}

/// Deterministic xorshift byte-mutation fuzz: hundreds of corrupted
/// variants of a valid request are thrown at the live server on fresh
/// connections. Whatever happens — accepted, structured error, or a
/// connection the server gave up on — no worker may die: a final valid
/// request must still succeed.
#[test]
fn fuzzed_request_bytes_never_kill_a_worker() {
    let _guard = store_guard();
    let server = Server::start(ServeOptions {
        threads: 2,
        max_payload: 4096,
        ..options()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let valid = br#"{"task":"hourglass","act_fallback":1,"budget_ms":5000}"#;
    let mut state = 0x243f_6a88_85a3_08d3u64; // deterministic seed
    let mut next = move || {
        // xorshift64* — no vendored rand needed for corpus mutation.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        state
    };

    for round in 0..200 {
        let mut bytes = valid.to_vec();
        let r = next();
        match r % 4 {
            // Truncate anywhere, including mid-UTF-8 of the payload.
            0 => bytes.truncate((r as usize / 7) % bytes.len()),
            // Flip a byte.
            1 => {
                let i = (r as usize / 5) % bytes.len();
                bytes[i] ^= (r >> 32) as u8 | 1;
            }
            // Duplicate a slice of itself (nested garbage).
            2 => {
                let i = (r as usize / 3) % bytes.len();
                let tail = bytes[i..].to_vec();
                bytes.extend_from_slice(&tail);
            }
            // Drop a byte.
            _ => {
                let i = (r as usize / 11) % bytes.len();
                bytes.remove(i);
            }
        }
        let stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(15)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(&bytes).unwrap();
        // Half the rounds terminate the line; the rest slam the write
        // half shut mid-request (truncated-write shape).
        if round % 2 == 0 {
            writer.write_all(b"\n").unwrap();
        }
        writer.flush().unwrap();
        drop(writer.shutdown(std::net::Shutdown::Write));
        // Read whatever comes back (possibly nothing for a torn line
        // the server classified as unusable); the protocol promise is
        // per-response-line JSON, checked when a line does arrive.
        let mut response = String::new();
        let _ = BufReader::new(stream).read_to_string(&mut response);
        for line in response.lines().filter(|l| !l.trim().is_empty()) {
            let doc = json_line(line);
            assert!(
                matches!(&doc["status"], Value::String(s) if s == "ok" || s == "error"),
                "round {round}: non-protocol response {line:?}"
            );
        }
    }

    // Every worker survived the barrage: a fresh valid request decides.
    let raw = request_line(&addr, r#"{"task":"hourglass"}"#, 60).unwrap();
    let doc = json_line(&raw);
    assert_eq!(str_field(&doc, "status"), "ok", "{raw}");
    assert_eq!(str_field(&doc, "verdict"), "UNSOLVABLE", "{raw}");

    // And the stats op confirms coherent cache counters after the abuse.
    let stats = json_line(&request_line(&addr, r#"{"op":"stats"}"#, 60).unwrap());
    let Value::Array(caches) = &stats["caches"] else {
        panic!("stats must list caches: {stats:?}");
    };
    assert_eq!(caches.len(), 6);
    for cache in caches {
        assert_eq!(cache["coherent"], Value::Bool(true), "{cache:?}");
    }

    server.shutdown();
    let _ = server.wait();
}

/// Slow-loris regression: a connection that sends half a request and
/// then stalls must be cut loose by the per-connection read deadline —
/// with a structured error naming the timeout — and the worker slot it
/// held must be free for the next honest client.
#[test]
fn a_stalled_half_request_is_timed_out_and_frees_its_worker_slot() {
    let _guard = store_guard();
    let server = Server::start(ServeOptions {
        threads: 1, // one slot: the loris would starve the whole pool
        idle_timeout_secs: 1,
        ..options()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    // Half a request, no newline, then silence.
    let started = Instant::now();
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(br#"{"task":"hourg"#).unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    let _ = BufReader::new(stream).read_to_string(&mut response);
    let elapsed = started.elapsed();
    let line = response
        .lines()
        .find(|l| !l.trim().is_empty())
        .unwrap_or_else(|| panic!("the loris got no structured error before the close"));
    let doc = json_line(line);
    assert_eq!(str_field(&doc, "status"), "error", "{line}");
    assert!(str_field(&doc, "error").contains("timed out"), "{line}");
    assert!(
        elapsed >= Duration::from_millis(900) && elapsed < Duration::from_secs(8),
        "read deadline misfired: loris held the connection for {elapsed:?}"
    );

    // An idle connection that never sends a byte is closed silently —
    // nothing was promised a response.
    let idle = TcpStream::connect(&addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut nothing = String::new();
    let _ = BufReader::new(idle).read_to_string(&mut nothing);
    assert!(
        nothing.trim().is_empty(),
        "an idle connection should close without a response: {nothing:?}"
    );

    // The single worker slot survived both: a real request decides.
    let raw = request_line(&addr, r#"{"task":"hourglass"}"#, 60).unwrap();
    let doc = json_line(&raw);
    assert_eq!(str_field(&doc, "status"), "ok", "{raw}");
    assert_eq!(str_field(&doc, "verdict"), "UNSOLVABLE", "{raw}");

    server.shutdown();
    let _ = server.wait();
}

/// Distributed stage execution over real sockets: two in-process
/// workers serve `op:"stage"` jobs for a batch, one is killed
/// mid-batch, and every verdict + digest still matches the
/// single-machine golden.
#[test]
fn shard_pool_survives_a_worker_death_with_digest_parity() {
    let _guard = store_guard();
    let tasks = task_set();

    // Single-machine goldens, engine off, cold caches.
    chromata::clear_remote();
    clear_stage_caches();
    chromata::clear_decision_cache();
    let goldens: Vec<(String, u64)> = tasks
        .iter()
        .map(|(_, t)| {
            let a = analyze(t, PipelineOptions::default());
            (a.verdict.to_string(), a.evidence.deterministic_digest())
        })
        .collect();

    // Two workers on OS-assigned ports; route stages across both with
    // fast retries so the post-kill connect faults resolve quickly.
    let mut worker_a = Some(Server::start(options()).unwrap());
    let worker_b = Server::start(options()).unwrap();
    let pool = vec![
        worker_a.as_ref().unwrap().local_addr().to_string(),
        worker_b.local_addr().to_string(),
    ];
    chromata_cli::configure_shards(
        &pool,
        chromata::RemotePolicy {
            attempts: 3,
            base_backoff_ms: 1,
            max_backoff_ms: 5,
            ..chromata::RemotePolicy::default()
        },
    )
    .unwrap();

    clear_stage_caches();
    chromata::clear_decision_cache();
    let mid = tasks.len() / 2;
    for (i, (name, task)) in tasks.iter().enumerate() {
        if i == mid {
            // SIGKILL-equivalent for an in-process worker: stop
            // accepting and drop every live connection.
            if let Some(worker) = worker_a.take() {
                worker.shutdown();
                let _ = worker.wait();
            }
        }
        let a = analyze(task, PipelineOptions::default());
        assert_eq!(
            (a.verdict.to_string(), a.evidence.deterministic_digest()),
            goldens[i],
            "{name}: digest drift {} a worker death",
            if i < mid { "before" } else { "after" }
        );
    }

    let stats = chromata::remote_stats().expect("engine is configured");
    assert!(
        stats.fetched >= 1,
        "no stage was actually served by a shard: {stats:?}"
    );
    assert!(
        stats.connect_faults >= 1,
        "the killed worker never surfaced a connect fault: {stats:?}"
    );

    chromata::clear_remote();
    worker_b.shutdown();
    let _ = worker_b.wait();
}

#[test]
fn graceful_shutdown_persists_and_warm_restart_restores() {
    let _guard = store_guard();
    let dir = scratch_dir("restart");

    clear_stage_caches();
    let server = Server::start(ServeOptions {
        cache_dir: Some(dir.clone()),
        persist_secs: 0, // exercise the shutdown-path persist, not the cadence
        ..options()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let first = json_line(&request_line(&addr, r#"{"task":"hourglass"}"#, 60).unwrap());
    assert_eq!(str_field(&first, "status"), "ok");
    let digest = str_field(&first, "evidence_digest").to_owned();

    // Wire-level graceful shutdown: acknowledged, then the server exits
    // and the final persist writes snapshots.
    let ack = json_line(&request_line(&addr, r#"{"op":"shutdown"}"#, 60).unwrap());
    assert_eq!(str_field(&ack, "op"), "shutdown");
    let summary = server.wait();
    assert!(summary.contains("persisted"), "{summary}");
    assert!(dir.join("verdict.snap").exists(), "no verdict snapshot");

    // Wipe the in-memory store; a warm restart must restore from disk
    // and serve the byte-identical digest.
    clear_stage_caches();
    let server = Server::start(ServeOptions {
        cache_dir: Some(dir.clone()),
        persist_secs: 0,
        ..options()
    })
    .unwrap();
    assert!(
        server.loaded().is_some_and(|l| l.restored > 0),
        "warm start restored nothing"
    );
    let addr = server.local_addr().to_string();
    let again = json_line(&request_line(&addr, r#"{"task":"hourglass"}"#, 60).unwrap());
    assert_eq!(str_field(&again, "evidence_digest"), digest);
    server.shutdown();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_abandons_a_stalled_connection_within_the_drain_deadline() {
    use chromata_cli::serve::SHUTDOWN_DRAIN_SECS;

    let _guard = store_guard();
    // A long idle timeout: a worker stuck reading this connection would
    // otherwise block `wait` far past any reasonable shutdown.
    let server = Server::start(ServeOptions {
        idle_timeout_secs: 120,
        ..options()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let ok = json_line(&request_line(&addr, r#"{"op":"ping"}"#, 30).unwrap());
    assert_eq!(str_field(&ok, "op"), "ping");

    // The stalled client: half a request line, then silence, holding
    // the socket open across the entire shutdown.
    let mut stalled = TcpStream::connect(&addr).expect("connect");
    stalled.write_all(br#"{"op":"ana"#).expect("partial write");
    stalled.flush().expect("flush");
    // Give a worker time to pick the connection up and block in read.
    std::thread::sleep(Duration::from_millis(200));

    server.shutdown();
    let begin = Instant::now();
    let summary = server.wait();
    let elapsed = begin.elapsed();
    assert!(
        elapsed < Duration::from_secs(SHUTDOWN_DRAIN_SECS + 3),
        "wait must give up on the stalled worker within the drain deadline, took {elapsed:?}"
    );
    assert!(
        summary.contains("abandoned 1 stalled connection(s)"),
        "{summary}"
    );
    drop(stalled);
}

#[test]
fn sigterm_through_the_watcher_persists_and_warm_restart_matches() {
    if !chromata_signal::supported() {
        return; // no signal syscalls on this target; covered elsewhere
    }
    let _guard = store_guard();
    let dir = scratch_dir("sigterm");

    clear_stage_caches();
    let server = Server::start(ServeOptions {
        cache_dir: Some(dir.clone()),
        persist_secs: 0,
        ..options()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let watch =
        chromata_signal::watch_termination(move |_sig| handle.request()).expect("watcher spawns");

    let first = json_line(&request_line(&addr, r#"{"task":"hourglass"}"#, 60).unwrap());
    assert_eq!(str_field(&first, "status"), "ok");
    let digest = str_field(&first, "evidence_digest").to_owned();

    // Thread-directed SIGTERM at the watcher — the production delivery
    // path minus the process-wide fan-in (which would kill the test
    // harness's unmasked threads).
    let mut delivered = false;
    for _ in 0..500 {
        if watch.deliver(chromata_signal::SIGTERM) {
            delivered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(delivered, "watcher never published its thread id");
    let summary = server.wait();
    watch.stop();
    assert!(summary.contains("persisted"), "{summary}");
    assert!(dir.join("verdict.snap").exists(), "no verdict snapshot");

    // The signal-driven persist must be a complete snapshot: a warm
    // restart serves the byte-identical digest.
    clear_stage_caches();
    let server = Server::start(ServeOptions {
        cache_dir: Some(dir.clone()),
        persist_secs: 0,
        ..options()
    })
    .unwrap();
    assert!(
        server.loaded().is_some_and(|l| l.restored > 0),
        "warm start restored nothing"
    );
    let addr = server.local_addr().to_string();
    let again = json_line(&request_line(&addr, r#"{"task":"hourglass"}"#, 60).unwrap());
    assert_eq!(str_field(&again, "evidence_digest"), digest);
    server.shutdown();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
