//! Simplices: finite non-empty sets of vertices in canonical sorted form.
//!
//! chromata-lint: allow(P3): vertex indices are bounded by the simplex dimension invariant the type maintains; every site is advisory-flagged by P2 for per-site review

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use crate::color::ColorSet;
use crate::intern::{Interner, StructuralHasher};
use crate::vertex::Vertex;

/// A simplex: a non-empty set of [`Vertex`]es, stored sorted and
/// deduplicated (paper, §2.2).
///
/// The *dimension* of a simplex is its cardinality minus one; vertices are
/// 0-dimensional, edges 1-dimensional, triangles 2-dimensional. A simplex is
/// *chromatic* if all its vertices have pairwise-distinct colors; all
/// simplices of the complexes in the paper are chromatic, but the type does
/// not force this so that intermediate colorless constructions can reuse it.
///
/// Simplices are interned: structurally-equal simplices share one
/// allocation, so cloning is a reference-count bump, equality a pointer
/// comparison and hashing a precomputed fingerprint. The color set is
/// computed once at construction. The `Ord` instance compares the
/// deterministic structural fingerprint first (falling back to the
/// lexicographic vertex order only on fingerprint collisions), so ordered
/// containers of simplices stay cheap; the resulting order is stable
/// across runs, builds and thread interleavings, but it is **not** the
/// lexicographic order of the vertex lists.
///
/// # Examples
///
/// ```
/// use chromata_topology::{Simplex, Vertex};
///
/// let edge = Simplex::from_iter([Vertex::of(0, 1), Vertex::of(1, 0)]);
/// assert_eq!(edge.dimension(), 1);
/// assert!(edge.is_chromatic());
/// assert!(Simplex::vertex(Vertex::of(0, 1)).is_face_of(&edge));
/// ```
#[derive(Clone)]
pub struct Simplex(Arc<SimplexInner>);

#[derive(Debug)]
pub(crate) struct SimplexInner {
    vertices: Vec<Vertex>,
    colors: ColorSet,
    hash: u64,
}

static SIMPLICES: OnceLock<Interner<SimplexInner>> = OnceLock::new();

pub(crate) fn interner() -> &'static Interner<SimplexInner> {
    SIMPLICES.get_or_init(Interner::new)
}

impl Simplex {
    /// Interns an already-sorted, deduplicated, non-empty vertex list.
    fn intern(vertices: Vec<Vertex>) -> Self {
        debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]));
        let mut h = StructuralHasher::default();
        h.write_usize(vertices.len());
        for v in &vertices {
            h.write_u64(v.fingerprint());
        }
        let hash = h.finish();
        Simplex(interner().intern(
            hash,
            |inner| inner.vertices == vertices,
            || SimplexInner {
                colors: vertices.iter().map(Vertex::color).collect(),
                vertices: vertices.clone(),
                hash,
            },
        ))
    }

    /// Creates the 0-dimensional simplex `{v}`.
    #[must_use]
    pub fn vertex(v: Vertex) -> Self {
        Simplex::intern(vec![v])
    }

    /// Creates a simplex from vertices, sorting and deduplicating.
    ///
    /// # Panics
    ///
    /// Panics if the vertex collection is empty (the empty simplex is not a
    /// simplex in the paper's convention).
    #[must_use]
    pub fn new(vertices: Vec<Vertex>) -> Self {
        let mut v = vertices;
        v.sort();
        v.dedup();
        assert!(!v.is_empty(), "a simplex must have at least one vertex");
        Simplex::intern(v)
    }

    /// The vertices of the simplex, in sorted order.
    #[must_use]
    pub fn vertices(&self) -> &[Vertex] {
        &self.0.vertices
    }

    /// Number of vertices (`|σ|`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.vertices.len()
    }

    /// Always `false`: simplices are non-empty by construction. Provided for
    /// API completeness alongside [`Simplex::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The dimension `|σ| - 1`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.0.vertices.len() - 1
    }

    /// Whether `v` is a vertex of this simplex.
    #[must_use]
    pub fn contains(&self, v: &Vertex) -> bool {
        self.0.vertices.binary_search(v).is_ok()
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_face_of(&self, other: &Simplex) -> bool {
        if Arc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        if self.len() > other.len() || !self.colors().is_subset_of(other.colors()) {
            return false;
        }
        self.0.vertices.iter().all(|v| other.contains(v))
    }

    /// The set of colors `id(σ)` of the simplex (precomputed).
    #[must_use]
    pub fn colors(&self) -> ColorSet {
        self.0.colors
    }

    /// Whether all vertices have pairwise-distinct colors.
    #[must_use]
    pub fn is_chromatic(&self) -> bool {
        self.0.colors.len() == self.0.vertices.len()
    }

    /// The vertex of the given color, if the simplex is chromatic enough to
    /// have at most one.
    #[must_use]
    pub fn vertex_of_color(&self, c: crate::color::Color) -> Option<&Vertex> {
        if !self.0.colors.contains(c) {
            return None;
        }
        self.0.vertices.iter().find(|v| v.color() == c)
    }

    /// All non-empty proper faces of this simplex (excluding itself).
    ///
    /// For a triangle this returns its three edges and three vertices.
    #[must_use]
    pub fn proper_faces(&self) -> Vec<Simplex> {
        let mut out = Vec::new();
        let n = self.0.vertices.len();
        // Enumerate all non-empty proper subsets via bitmask; simplices here
        // have at most a handful of vertices, so this is never hot.
        for mask in 1u32..((1 << n) - 1) {
            let verts: Vec<Vertex> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| self.0.vertices[i].clone())
                .collect();
            out.push(Simplex::intern(verts));
        }
        out.sort();
        out
    }

    /// All non-empty faces of this simplex, including itself.
    #[must_use]
    pub fn faces(&self) -> Vec<Simplex> {
        let mut out = self.proper_faces();
        out.push(self.clone());
        out.sort();
        out
    }

    /// The codimension-1 faces (facets of the boundary).
    #[must_use]
    pub fn boundary_faces(&self) -> Vec<Simplex> {
        if self.0.vertices.len() == 1 {
            return Vec::new();
        }
        (0..self.0.vertices.len())
            .map(|i| self.without_index(i))
            .collect()
    }

    fn without_index(&self, i: usize) -> Simplex {
        let mut v = self.0.vertices.clone();
        v.remove(i);
        Simplex::intern(v)
    }

    /// The face obtained by removing vertex `v`, or `None` if `v` is not a
    /// vertex or the simplex would become empty.
    #[must_use]
    pub fn without_vertex(&self, v: &Vertex) -> Option<Simplex> {
        let i = self.0.vertices.binary_search(v).ok()?;
        if self.0.vertices.len() == 1 {
            return None;
        }
        Some(self.without_index(i))
    }

    /// The simplex with vertex `from` replaced by `to`.
    ///
    /// Used by the splitting deformation (§4.1) to re-target facets from a
    /// local articulation point `y` to one of its copies `y_i`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a vertex of this simplex.
    #[must_use]
    pub fn substituted(&self, from: &Vertex, to: Vertex) -> Simplex {
        let i = self
            .0
            .vertices
            .binary_search(from)
            .unwrap_or_else(|_| panic!("substituted: {from} not in {self}")); // chromata-lint: allow(P1): documented # Panics contract of substitute
        let mut v = self.0.vertices.clone();
        v[i] = to;
        Simplex::new(v)
    }

    /// The union `self ∪ other` as a simplex.
    #[must_use]
    pub fn union(&self, other: &Simplex) -> Simplex {
        if Arc::ptr_eq(&self.0, &other.0) {
            return self.clone();
        }
        let mut v = self.0.vertices.clone();
        v.extend(other.0.vertices.iter().cloned());
        Simplex::new(v)
    }

    /// The intersection `self ∩ other`, or `None` if disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Simplex) -> Option<Simplex> {
        if Arc::ptr_eq(&self.0, &other.0) {
            return Some(self.clone());
        }
        let v: Vec<Vertex> = self
            .0
            .vertices
            .iter()
            .filter(|x| other.contains(x))
            .cloned()
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(Simplex::intern(v))
        }
    }

    /// Iterator over the vertices.
    pub fn iter(&self) -> std::slice::Iter<'_, Vertex> {
        self.0.vertices.iter()
    }
}

impl PartialEq for Simplex {
    fn eq(&self, other: &Self) -> bool {
        // Interning makes structural equality coincide with identity.
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for Simplex {}

impl Hash for Simplex {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl PartialOrd for Simplex {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Simplex {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        // Fingerprint first: one integer comparison decides almost always,
        // deterministically; ties fall back to the structural order.
        self.0
            .hash
            .cmp(&other.0.hash)
            .then_with(|| self.0.vertices.cmp(&other.0.vertices))
    }
}

impl fmt::Debug for Simplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Simplex").field(&self.0.vertices).finish()
    }
}

impl FromIterator<Vertex> for Simplex {
    /// # Panics
    ///
    /// Panics if the iterator is empty.
    fn from_iter<I: IntoIterator<Item = Vertex>>(iter: I) -> Self {
        Simplex::new(iter.into_iter().collect())
    }
}

impl From<Vertex> for Simplex {
    fn from(v: Vertex) -> Self {
        Simplex::vertex(v)
    }
}

impl<'a> IntoIterator for &'a Simplex {
    type Item = &'a Vertex;
    type IntoIter = std::slice::Iter<'a, Vertex>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.vertices.iter()
    }
}

impl IntoIterator for Simplex {
    type Item = Vertex;
    type IntoIter = std::vec::IntoIter<Vertex>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.vertices.clone().into_iter()
    }
}

impl fmt::Display for Simplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, v) in self.0.vertices.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Simplex {
        Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 2)])
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = Simplex::new(vec![Vertex::of(2, 0), Vertex::of(0, 0), Vertex::of(2, 0)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dimension(), 1);
        assert_eq!(s.vertices()[0], Vertex::of(0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_simplex_panics() {
        let _ = Simplex::new(vec![]);
    }

    #[test]
    fn interning_shares_allocations() {
        let a = tri();
        let b = tri();
        assert!(Arc::ptr_eq(&a.0, &b.0), "equal simplices share storage");
        assert_eq!(a, b);
    }

    #[test]
    fn faces_of_triangle() {
        let t = tri();
        assert_eq!(t.proper_faces().len(), 6, "3 vertices + 3 edges");
        assert_eq!(t.faces().len(), 7);
        assert_eq!(t.boundary_faces().len(), 3);
        for e in t.boundary_faces() {
            assert_eq!(e.dimension(), 1);
            assert!(e.is_face_of(&t));
        }
        assert!(t.is_face_of(&t));
    }

    #[test]
    fn chromaticity() {
        assert!(tri().is_chromatic());
        let bad = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(0, 1)]);
        assert!(!bad.is_chromatic());
        assert_eq!(bad.colors().len(), 1);
    }

    #[test]
    fn vertex_of_color() {
        let t = tri();
        assert_eq!(
            t.vertex_of_color(crate::color::Color::new(1)),
            Some(&Vertex::of(1, 1))
        );
        assert_eq!(t.vertex_of_color(crate::color::Color::new(5)), None);
    }

    #[test]
    fn substitution() {
        let t = tri();
        let y = Vertex::of(1, 1);
        let y0 = Vertex::of(1, 99);
        let s = t.substituted(&y, y0.clone());
        assert!(s.contains(&y0));
        assert!(!s.contains(&y));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_intersection() {
        let e1 = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1)]);
        let e2 = Simplex::from_iter([Vertex::of(1, 1), Vertex::of(2, 2)]);
        assert_eq!(e1.union(&e2), tri());
        assert_eq!(
            e1.intersection(&e2),
            Some(Simplex::vertex(Vertex::of(1, 1)))
        );
        let v = Simplex::vertex(Vertex::of(2, 2));
        assert_eq!(e1.intersection(&v), None);
    }

    #[test]
    fn without_vertex() {
        let t = tri();
        let f = t.without_vertex(&Vertex::of(0, 0)).unwrap();
        assert_eq!(f.dimension(), 1);
        assert!(Simplex::vertex(Vertex::of(0, 0))
            .without_vertex(&Vertex::of(0, 0))
            .is_none());
        assert!(t.without_vertex(&Vertex::of(5, 5)).is_none());
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut xs = vec![
            tri(),
            Simplex::vertex(Vertex::of(0, 0)),
            Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1)]),
        ];
        xs.sort();
        let once: Vec<Simplex> = xs.clone();
        xs.sort();
        assert_eq!(xs, once, "sorting is stable and deterministic");
        xs.dedup();
        assert_eq!(xs.len(), 3);
    }
}
