//! Vertex payload values.
//!
//! Vertices of the complexes manipulated by the paper's constructions carry
//! heterogeneous payloads: raw input/output values, *pairs* (canonical tasks,
//! §3, pair each output with its input), *views* (protocol-complex vertices
//! are immediate-snapshot views, §2.4), and *split copies* (the splitting
//! deformation of §4 replaces a local articulation point `y` by copies
//! `y_1, …, y_r`). [`Value`] is a small recursive enum covering all of these
//! with cheap (`Arc`-backed) cloning, so that complexes can be identified by
//! vertex value without separate id tables.

use std::fmt;
use std::sync::Arc;

use crate::vertex::Vertex;

/// The payload of a vertex in a (chromatic) simplicial complex.
///
/// `Value` is ordered and hashable so simplices can be kept in canonical
/// sorted form and complexes can be compared structurally.
///
/// # Examples
///
/// ```
/// use chromata_topology::Value;
///
/// let v = Value::from(3);
/// let w = Value::name("top");
/// let p = Value::pair(v.clone(), w);
/// assert_eq!(format!("{p}"), "(3,top)");
/// assert_eq!(p.clone(), p);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// A plain integer value (inputs and outputs of concrete tasks).
    Int(i64),
    /// A symbolic name (distinguished vertices, e.g. in loop agreement).
    Name(Arc<str>),
    /// An ordered pair; used for canonical tasks (§3) where each output
    /// vertex is tagged with its unique input pre-image.
    Pair(Arc<Value>, Arc<Value>),
    /// An immediate-snapshot view: the set of vertices a process has seen.
    /// Kept sorted; identifies vertices of protocol complexes (§2.4).
    View(Arc<[Vertex]>),
    /// The `copy`-th copy of a split vertex (splitting deformation, §4.1).
    /// Copies are numbered from 0 in the order of the link components.
    Split(Arc<Value>, u32),
}

impl Value {
    /// Creates a symbolic name value.
    #[must_use]
    pub fn name(s: &str) -> Self {
        Value::Name(Arc::from(s))
    }

    /// Creates a pair value (canonical-task vertex payload).
    #[must_use]
    pub fn pair(first: Value, second: Value) -> Self {
        Value::Pair(Arc::new(first), Arc::new(second))
    }

    /// Creates a view value from a set of vertices; the vertices are sorted
    /// and deduplicated so views compare structurally.
    #[must_use]
    pub fn view<I: IntoIterator<Item = Vertex>>(vertices: I) -> Self {
        let mut v: Vec<Vertex> = vertices.into_iter().collect();
        v.sort();
        v.dedup();
        Value::View(Arc::from(v))
    }

    /// Creates the `copy`-th split copy of `base`.
    #[must_use]
    pub fn split(base: Value, copy: u32) -> Self {
        Value::Split(Arc::new(base), copy)
    }

    /// If this is a [`Value::Pair`], its components.
    #[must_use]
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// If this is a [`Value::View`], the vertices of the view.
    #[must_use]
    pub fn as_view(&self) -> Option<&[Vertex]> {
        match self {
            Value::View(v) => Some(v),
            _ => None,
        }
    }

    /// If this is a [`Value::Split`], the base value and the copy index.
    #[must_use]
    pub fn as_split(&self) -> Option<(&Value, u32)> {
        match self {
            Value::Split(b, i) => Some((b, *i)),
            _ => None,
        }
    }

    /// If this is a [`Value::Int`], the integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Strips any [`Value::Split`] wrappers, returning the original
    /// (pre-splitting) value. Splits may nest when a copy produced by one
    /// splitting step is itself split later.
    #[must_use]
    pub fn unsplit(&self) -> &Value {
        let mut v = self;
        while let Value::Split(base, _) = v {
            v = base;
        }
        v
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::name(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Name(s) => write!(f, "{s}"),
            Value::Pair(a, b) => write!(f, "({a},{b})"),
            Value::View(vs) => {
                write!(f, "⟨")?;
                for (k, v) in vs.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "⟩")
            }
            Value::Split(b, i) => write!(f, "{b}#{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;

    #[test]
    fn view_sorts_and_dedups() {
        let a = Vertex::new(Color::new(1), Value::Int(5));
        let b = Vertex::new(Color::new(0), Value::Int(7));
        let v = Value::view([a.clone(), b.clone(), a.clone()]);
        let inner = v.as_view().unwrap();
        assert_eq!(inner, &[b, a]);
    }

    #[test]
    fn unsplit_strips_nested_copies() {
        let base = Value::Int(4);
        let s1 = Value::split(base.clone(), 1);
        let s2 = Value::split(s1.clone(), 0);
        assert_eq!(s2.unsplit(), &base);
        assert_eq!(base.unsplit(), &base);
        assert_eq!(s2.as_split().unwrap().1, 0);
    }

    #[test]
    fn accessors() {
        let p = Value::pair(Value::Int(1), Value::name("x"));
        let (a, b) = p.as_pair().unwrap();
        assert_eq!(a.as_int(), Some(1));
        assert_eq!(b, &Value::name("x"));
        assert!(p.as_view().is_none());
        assert!(p.as_int().is_none());
    }

    #[test]
    fn ordering_is_total_and_structural() {
        let mut vals = vec![
            Value::Int(2),
            Value::Int(1),
            Value::name("b"),
            Value::name("a"),
            Value::pair(Value::Int(1), Value::Int(2)),
        ];
        vals.sort();
        vals.dedup();
        assert_eq!(vals.len(), 5);
        assert!(Value::Int(1) < Value::Int(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Value::Int(-3)), "-3");
        assert_eq!(format!("{}", Value::split(Value::Int(1), 2)), "1#2");
        let a = Vertex::new(Color::new(0), Value::Int(0));
        assert_eq!(format!("{}", Value::view([a])), "⟨P0:0⟩");
    }
}
