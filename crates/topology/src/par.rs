//! Deterministic fork-join parallelism over slices.
//!
//! [`par_map`] fans a pure function out over a slice with scoped threads
//! and returns results in input order, so callers observe exactly the
//! serial semantics. With the `parallel` feature disabled (or on a
//! single-core machine, or for tiny inputs) it degrades to a plain serial
//! map — same results, no threads.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Minimum number of items per worker before spawning threads pays off;
/// below `2 * MIN_CHUNK` items the serial path is used.
#[cfg(feature = "parallel")]
const MIN_CHUNK: usize = 8;

/// A structured record of a panic caught inside a [`try_par_map`] worker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkerPanic {
    /// Index (into the input slice) of the item whose invocation panicked.
    pub index: usize,
    /// The panic payload rendered as text (`String`/`&str` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a panic payload as text.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .unwrap_or_else(|| "<non-string panic payload>".to_owned())
}

/// Applies `f` to every item of `items`, returning results in input order.
///
/// The function must be pure up to the returned value: invocation order
/// across items is unspecified when the `parallel` feature is enabled, but
/// the output vector is always index-aligned with the input slice, so any
/// deterministic `f` yields a deterministic result.
///
/// A panic inside `f` is re-raised on the calling thread (via
/// [`try_par_map`]), so the historical "panics propagate" behaviour is
/// preserved for callers that don't want structured errors.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match try_par_map(items, f) {
        Ok(out) => out,
        Err(p) => resume_unwind(Box::new(p.message)),
    }
}

/// Panic-safe [`par_map`]: applies `f` to every item, catching panics in
/// the workers and converting the first one (in input order) into a
/// structured [`WorkerPanic`] instead of poisoning or aborting the fan-out.
///
/// # Errors
///
/// Returns the first caught [`WorkerPanic`] in input order.
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let guarded = |base: usize, c: &[T]| -> Result<Vec<R>, WorkerPanic> {
        c.iter()
            .enumerate()
            .map(|(k, item)| {
                catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| WorkerPanic {
                    index: base + k,
                    message: payload_message(payload.as_ref()),
                })
            })
            .collect()
    };
    #[cfg(feature = "parallel")]
    {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if workers > 1 && items.len() >= 2 * MIN_CHUNK {
            let chunk = (items.len().div_ceil(workers)).max(MIN_CHUNK);
            let guarded = &guarded;
            return std::thread::scope(|scope| {
                let handles: Vec<_> = items
                    .chunks(chunk)
                    .enumerate()
                    .map(|(w, c)| scope.spawn(move || guarded(w * chunk, c)))
                    .collect();
                let mut out = Vec::with_capacity(items.len());
                let mut first_panic: Option<WorkerPanic> = None;
                for h in handles {
                    // Workers catch panics internally; join only fails on
                    // catastrophic (non-unwinding) termination.
                    // chromata-lint: allow(P1): join fails only when a worker panicked; par_map documents that propagation
                    match h.join().expect("par_map worker terminated abnormally") {
                        Ok(mut part) => out.append(&mut part),
                        Err(p) => {
                            if first_panic.as_ref().is_none_or(|q| p.index < q.index) {
                                first_panic = Some(p);
                            }
                        }
                    }
                }
                match first_panic {
                    None => Ok(out),
                    Some(p) => Err(p),
                }
            });
        }
    }
    guarded(0, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |x| x * x);
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_small_inputs() {
        let none: Vec<u32> = Vec::new();
        assert_eq!(par_map(&none, |x| *x), Vec::<u32>::new());
        assert_eq!(par_map(&[7], |x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_catches_panics_serially_and_in_parallel() {
        // Small input (serial path) and large input (threaded path with
        // the `parallel` feature): both must yield a structured error
        // naming the first offending index, not a propagated panic.
        for n in [4usize, 1000] {
            let items: Vec<usize> = (0..n).collect();
            let err = try_par_map(&items, |&x| {
                assert!(x != 3, "boom at {x}");
                x * 2
            })
            .unwrap_err();
            assert_eq!(err.index, 3);
            assert!(err.message.contains("boom at 3"), "{}", err.message);
            assert!(err.to_string().contains("item 3"));
        }
    }

    #[test]
    fn try_par_map_ok_matches_par_map() {
        let items: Vec<u64> = (0..500).collect();
        assert_eq!(
            try_par_map(&items, |x| x + 1).unwrap(),
            par_map(&items, |x| x + 1)
        );
    }

    #[test]
    fn par_map_still_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            par_map(&[1, 2, 3], |&x| {
                assert!(x != 2, "kaboom");
                x
            })
        });
        assert!(caught.is_err());
    }
}
