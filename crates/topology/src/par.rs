//! Deterministic fork-join parallelism over slices.
//!
//! [`par_map`] fans a pure function out over a slice with scoped threads
//! and returns results in input order, so callers observe exactly the
//! serial semantics. With the `parallel` feature disabled (or on a
//! single-core machine, or for tiny inputs) it degrades to a plain serial
//! map — same results, no threads.

/// Minimum number of items per worker before spawning threads pays off;
/// below `2 * MIN_CHUNK` items the serial path is used.
const MIN_CHUNK: usize = 8;

/// Applies `f` to every item of `items`, returning results in input order.
///
/// The function must be pure up to the returned value: invocation order
/// across items is unspecified when the `parallel` feature is enabled, but
/// the output vector is always index-aligned with the input slice, so any
/// deterministic `f` yields a deterministic result.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if workers > 1 && items.len() >= 2 * MIN_CHUNK {
            let chunk = (items.len().div_ceil(workers)).max(MIN_CHUNK);
            return std::thread::scope(|scope| {
                let handles: Vec<_> = items
                    .chunks(chunk)
                    .map(|c| scope.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("par_map worker panicked"))
                    .collect()
            });
        }
    }
    items.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |x| x * x);
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_small_inputs() {
        let none: Vec<u32> = Vec::new();
        assert_eq!(par_map(&none, |x| *x), Vec::<u32>::new());
        assert_eq!(par_map(&[7], |x| x + 1), vec![8]);
    }
}
