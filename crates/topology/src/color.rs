//! Process colors (identifiers) and compact color sets.
//!
//! In a chromatic complex every vertex carries a *color*: the identifier of
//! the process it belongs to (paper, §2.2). Colors are small integers
//! (`0..n`); for the three-process setting of the paper they range over
//! `{0, 1, 2}`, but the substrate supports up to 16 colors so that the
//! machinery generalizes (products, subdivisions and carrier maps are
//! dimension-agnostic).

use std::fmt;

/// A process identifier, called a *color* in the topological framework.
///
/// # Examples
///
/// ```
/// use chromata_topology::Color;
///
/// let p0 = Color::new(0);
/// assert_eq!(p0.index(), 0);
/// assert_eq!(format!("{p0}"), "P0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Color(u8);

impl Color {
    /// Maximum number of distinct colors supported by [`ColorSet`].
    pub const MAX_COLORS: usize = 16;

    /// Creates a color from a process index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Color::MAX_COLORS`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < Self::MAX_COLORS,
            "color index {index} out of range (max {})",
            Self::MAX_COLORS
        );
        Color(index)
    }

    /// The process index of this color.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterator over the first `n` colors, `P0, P1, …, P(n-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n > Color::MAX_COLORS`.
    pub fn first(n: usize) -> impl Iterator<Item = Color> + Clone {
        assert!(n <= Self::MAX_COLORS);
        (0..n as u8).map(Color)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u8> for Color {
    fn from(index: u8) -> Self {
        Color::new(index)
    }
}

/// A set of colors, stored as a 16-bit mask.
///
/// Used to compare the id-sets of simplices (`id(σ)` in the paper) and to
/// validate chromaticity of maps and carrier maps.
///
/// # Examples
///
/// ```
/// use chromata_topology::{Color, ColorSet};
///
/// let s: ColorSet = [Color::new(0), Color::new(2)].into_iter().collect();
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(Color::new(2)));
/// assert!(!s.contains(Color::new(1)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ColorSet(u16);

impl ColorSet {
    /// The empty color set.
    #[must_use]
    pub fn new() -> Self {
        ColorSet(0)
    }

    /// The set `{P0, …, P(n-1)}` of the first `n` colors.
    #[must_use]
    pub fn full(n: usize) -> Self {
        Color::first(n).collect()
    }

    /// Inserts a color; returns `true` if it was newly inserted.
    pub fn insert(&mut self, c: Color) -> bool {
        let bit = 1u16 << c.0;
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes a color; returns `true` if it was present.
    pub fn remove(&mut self, c: Color) -> bool {
        let bit = 1u16 << c.0;
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether `c` is in the set.
    #[must_use]
    pub fn contains(self, c: Color) -> bool {
        self.0 & (1 << c.0) != 0
    }

    /// Number of colors in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ColorSet) -> ColorSet {
        ColorSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ColorSet) -> ColorSet {
        ColorSet(self.0 & other.0)
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset_of(self, other: ColorSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterator over the colors in ascending index order.
    pub fn iter(self) -> impl Iterator<Item = Color> + Clone {
        (0..Color::MAX_COLORS as u8)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(Color)
    }
}

impl FromIterator<Color> for ColorSet {
    fn from_iter<I: IntoIterator<Item = Color>>(iter: I) -> Self {
        let mut s = ColorSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<Color> for ColorSet {
    fn extend<I: IntoIterator<Item = Color>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for ColorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, c) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_roundtrip() {
        for i in 0..16u8 {
            assert_eq!(Color::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn color_out_of_range_panics() {
        let _ = Color::new(16);
    }

    #[test]
    fn colorset_basics() {
        let mut s = ColorSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Color::new(3)));
        assert!(!s.insert(Color::new(3)));
        assert!(s.contains(Color::new(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Color::new(3)));
        assert!(!s.remove(Color::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn colorset_algebra() {
        let a: ColorSet = [0u8, 1].into_iter().map(Color::new).collect();
        let b: ColorSet = [1u8, 2].into_iter().map(Color::new).collect();
        assert_eq!(a.union(b), ColorSet::full(3));
        assert_eq!(a.intersection(b).iter().count(), 1);
        assert!(a.intersection(b).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(a.is_subset_of(ColorSet::full(3)));
    }

    #[test]
    fn colorset_iter_sorted() {
        let s: ColorSet = [5u8, 1, 9].into_iter().map(Color::new).collect();
        let got: Vec<u8> = s.iter().map(Color::index).collect();
        assert_eq!(got, vec![1, 5, 9]);
    }

    #[test]
    fn display_formats() {
        let s: ColorSet = [0u8, 2].into_iter().map(Color::new).collect();
        assert_eq!(format!("{s}"), "{P0,P2}");
        assert_eq!(format!("{}", ColorSet::new()), "{}");
    }
}
