//! Resource governance: budgets and cooperative cancellation.
//!
//! Every potentially expensive computation in the workspace (the model
//! checker's state enumeration, the ACT backtracking search, the decision
//! pipeline's tiers) accepts a [`Budget`] and a [`CancelToken`] so that
//! exhaustion and cancellation degrade into structured answers instead of
//! runaway loops or panics. The contract is *cooperative*: long-running
//! loops call [`Budget::check`] at natural checkpoints (once per BFS
//! level, every few thousand backtrack nodes) and unwind with an
//! [`Interrupt`] when the deadline has passed or the token was cancelled.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reads a `usize` configuration knob from the process environment.
///
/// This module is the *only* place the workspace may observe the
/// environment (static-analysis rule D2): configuration enters through
/// here once, at initialization, so decision code stays a pure function
/// of its inputs and budget. Unset, empty or unparsable values yield
/// `None`.
#[must_use]
pub fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|s| s.trim().parse().ok())
}

/// Reads a string configuration knob from the process environment.
///
/// Same D2 contract as [`env_usize`]: this module is the sole sanctioned
/// observation point for the environment. Unset or empty values yield
/// `None` (an empty `CHROMATA_CACHE_DIR` means "no cache dir", not "the
/// current directory").
#[must_use]
pub fn env_string(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|s| !s.trim().is_empty())
}

/// A monotonic wall-clock stopwatch for stage-level evidence.
///
/// Rule D2 confines clock reads to this module: pipeline stages that want
/// to *report* how long they took (never to *decide* anything) start a
/// `Stopwatch` here and read the elapsed duration when they finish. The
/// measured time is diagnostic metadata — it must never feed a verdict,
/// a cache key, or any other deterministic output.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// A cooperative cancellation flag, cheaply cloneable and shareable
/// across threads. Cancelling any clone cancels them all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every holder of a clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A global concurrency cap: at most `capacity` permits are out at any
/// instant, and acquisition **never blocks** — [`Gate::try_enter`]
/// either hands back an RAII [`GatePermit`] or fails immediately, so an
/// overloaded admission point can degrade to a structured answer (a
/// retry-hint, a `Verdict::Unknown`) instead of queuing unboundedly.
///
/// Cheaply cloneable; clones share the same permit pool. This is the
/// admission-control half of governance: the [`Budget`] bounds one
/// computation, the `Gate` bounds how many run at once.
#[derive(Clone, Debug, Default)]
pub struct Gate(Arc<GateState>);

#[derive(Debug, Default)]
struct GateState {
    in_flight: AtomicUsize,
    capacity: usize,
}

impl Gate {
    /// A gate admitting at most `capacity` concurrent holders.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Gate(Arc::new(GateState {
            in_flight: AtomicUsize::new(0),
            capacity,
        }))
    }

    /// The configured cap.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.0.capacity
    }

    /// How many permits are currently held.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.0.in_flight.load(Ordering::Acquire)
    }

    /// Attempts to take a permit without blocking. `None` means the gate
    /// is at capacity *right now*; the caller should degrade (answer
    /// with a retry-hint) rather than wait.
    #[must_use]
    pub fn try_enter(&self) -> Option<GatePermit> {
        let mut current = self.0.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.0.capacity {
                return None;
            }
            match self.0.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(GatePermit(Arc::clone(&self.0))),
                Err(observed) => current = observed,
            }
        }
    }
}

/// An RAII permit from a [`Gate`]; dropping it releases the slot.
#[derive(Debug)]
pub struct GatePermit(Arc<GateState>);

impl Drop for GatePermit {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Why a governed computation was interrupted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Interrupt {
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The [`Budget`] deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for Interrupt {}

/// Resource limits for a governed computation.
///
/// The numeric limits bound distinct search structures (explored states,
/// schedule steps, ACT subdivision rounds); the deadline bounds wall-clock
/// time across all of them. [`Budget::unlimited`] imposes nothing, so
/// ungoverned entry points keep their historical behaviour.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Absolute wall-clock deadline (`None` = no time limit).
    pub deadline: Option<Instant>,
    /// Maximum distinct system states the model checker may visit.
    pub max_states: usize,
    /// Maximum schedule steps (BFS depth / random-run length).
    pub max_steps: usize,
    /// Maximum subdivision rounds for the ACT fallback search.
    pub max_act_rounds: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget imposing no limits at all.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            max_states: usize::MAX,
            max_steps: usize::MAX,
            max_act_rounds: usize::MAX,
        }
    }

    /// Replaces the deadline with "`dur` from now".
    ///
    /// A duration too large for the platform's monotonic clock (e.g.
    /// `--budget-ms 18446744073709551615`) is unrepresentable as an
    /// [`Instant`]; it is treated as "no time limit" rather than
    /// panicking — callers hand us untrusted durations (CLI flags,
    /// `serve` requests), and a deadline centuries away is
    /// indistinguishable from none.
    #[must_use]
    pub fn with_deadline_in(mut self, dur: Duration) -> Self {
        // ~100 years. Some platforms can represent an `Instant` this far
        // out (Linux: i64 seconds) and some cannot; clamp explicitly so
        // "absurdly far away means unlimited" holds everywhere, then let
        // `checked_add` catch whatever the platform still can't encode.
        const FOREVER: Duration = Duration::from_secs(100 * 365 * 24 * 60 * 60);
        self.deadline = if dur >= FOREVER {
            None
        } else {
            Instant::now().checked_add(dur)
        };
        self
    }

    /// Replaces the state limit.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Replaces the step limit.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Replaces the ACT round limit.
    #[must_use]
    pub fn with_max_act_rounds(mut self, max_act_rounds: usize) -> Self {
        self.max_act_rounds = max_act_rounds;
        self
    }

    /// Time remaining until the deadline (`None` = no deadline).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The cooperative checkpoint: errors if `cancel` was triggered or
    /// the deadline has passed.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`Interrupt`].
    pub fn check(&self, cancel: &CancelToken) -> Result<(), Interrupt> {
        if cancel.is_cancelled() {
            return Err(Interrupt::Cancelled);
        }
        if self.deadline_exceeded() {
            return Err(Interrupt::DeadlineExceeded);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_interrupts() {
        let b = Budget::unlimited();
        let t = CancelToken::new();
        assert!(b.check(&t).is_ok());
        assert!(!b.deadline_exceeded());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn cancellation_is_shared_between_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        assert_eq!(Budget::unlimited().check(&u), Err(Interrupt::Cancelled));
    }

    #[test]
    fn elapsed_deadline_interrupts() {
        let b = Budget::unlimited().with_deadline_in(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(b.deadline_exceeded());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        assert_eq!(
            b.check(&CancelToken::new()),
            Err(Interrupt::DeadlineExceeded)
        );
    }

    #[test]
    fn huge_deadline_means_no_time_limit_not_a_panic() {
        // Regression: `Instant::now() + dur` panics on `Instant` overflow
        // for durations like `--budget-ms u64::MAX`; the checked variant
        // treats an unrepresentable deadline as "no time limit".
        let b = Budget::unlimited().with_deadline_in(Duration::from_millis(u64::MAX));
        assert!(b.deadline.is_none(), "overflowed deadline degrades to none");
        assert!(!b.deadline_exceeded());
        assert_eq!(b.remaining(), None);
        assert!(b.check(&CancelToken::new()).is_ok());
        // A representable deadline still works after the fix.
        let soon = Budget::unlimited().with_deadline_in(Duration::from_secs(3600));
        assert!(soon.deadline.is_some());
        assert!(!soon.deadline_exceeded());
    }

    #[test]
    fn gate_caps_concurrent_permits() {
        let gate = Gate::new(2);
        assert_eq!(gate.capacity(), 2);
        assert_eq!(gate.in_flight(), 0);
        let a = gate.try_enter().expect("first permit");
        let b = gate.try_enter().expect("second permit");
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_enter().is_none(), "gate at capacity");
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        let c = gate.try_enter().expect("slot released by drop");
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
        // A zero-capacity gate admits nothing — the deterministic
        // "deliberately overloaded" configuration.
        assert!(Gate::new(0).try_enter().is_none());
    }

    #[test]
    fn gate_clones_share_the_permit_pool() {
        let gate = Gate::new(1);
        let clone = gate.clone();
        let held = clone.try_enter().expect("permit via clone");
        assert!(gate.try_enter().is_none(), "clones share capacity");
        assert_eq!(gate.in_flight(), 1);
        drop(held);
        assert!(gate.try_enter().is_some());
    }

    #[test]
    fn gate_is_race_free_under_real_threads() {
        // N threads hammer a capacity-C gate; the maximum observed
        // in-flight count never exceeds C and every acquired permit is
        // released (final in-flight is 0).
        let gate = Gate::new(3);
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gate = gate.clone();
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Some(_permit) = gate.try_enter() {
                            let seen = gate.in_flight();
                            peak.fetch_max(seen, Ordering::AcqRel);
                            assert!(seen <= 3, "cap violated: {seen}");
                        }
                    }
                });
            }
        });
        assert_eq!(gate.in_flight(), 0, "all permits released");
        assert!(peak.load(Ordering::Acquire) >= 1);
    }

    #[test]
    fn builders_replace_limits() {
        let b = Budget::unlimited()
            .with_max_states(10)
            .with_max_steps(20)
            .with_max_act_rounds(3);
        assert_eq!(b.max_states, 10);
        assert_eq!(b.max_steps, 20);
        assert_eq!(b.max_act_rounds, 3);
    }

    #[test]
    fn interrupt_displays() {
        assert_eq!(Interrupt::Cancelled.to_string(), "cancelled");
        assert_eq!(Interrupt::DeadlineExceeded.to_string(), "deadline exceeded");
    }

    #[test]
    fn env_usize_parses_or_none() {
        assert_eq!(env_usize("CHROMATA_TEST_SURELY_UNSET_KNOB"), None);
    }

    #[test]
    fn env_string_unset_is_none() {
        assert_eq!(env_string("CHROMATA_TEST_SURELY_UNSET_KNOB"), None);
    }

    /// Exhaustive op-level model check of `CancelToken` (loom-style; see
    /// [`crate::interleave`]): every thread holds its own clone and runs
    /// `cancel` / `is_cancelled` ops in program order. For **every**
    /// interleaving, cancellation must be *sticky* (never un-cancels) and
    /// *shared* (once any clone's `cancel` commits, every later observer
    /// on any clone sees it). `--cfg chromata_loom` raises thread count
    /// and depth.
    #[test]
    fn cancel_token_exhaustive_interleavings() {
        use crate::interleave::{for_each_interleaving, max_threads};

        #[derive(Clone, Copy, PartialEq, Debug)]
        enum Op {
            Cancel,
            Observe,
        }
        let threads = max_threads();
        // Thread 0 cancels then observes; the rest only observe. This is
        // the worst case for visibility: observers race the cancel.
        let programs: Vec<Vec<Op>> = (0..threads)
            .map(|t| {
                if t == 0 {
                    vec![Op::Cancel, Op::Observe]
                } else {
                    vec![Op::Observe, Op::Observe]
                }
            })
            .collect();
        let counts: Vec<usize> = programs.iter().map(Vec::len).collect();
        let mut schedules = 0usize;
        for_each_interleaving(&counts, |schedule| {
            schedules += 1;
            let token = CancelToken::new();
            let clones: Vec<CancelToken> = (0..threads).map(|_| token.clone()).collect();
            let mut pc = vec![0usize; threads];
            let mut cancelled = false;
            for &t in schedule {
                let op = programs[t][pc[t]];
                pc[t] += 1;
                match op {
                    Op::Cancel => {
                        clones[t].cancel();
                        cancelled = true;
                    }
                    Op::Observe => {
                        let seen = clones[t].is_cancelled();
                        // Sticky + shared: after the cancel committed,
                        // every clone observes it; before, none does.
                        assert_eq!(seen, cancelled, "schedule {schedule:?}");
                    }
                }
            }
            assert!(token.is_cancelled());
        });
        assert!(schedules >= 6, "expected full enumeration, got {schedules}");
    }

    /// Real-thread companion to the exhaustive check: hardware scheduling
    /// cannot contradict the op-level model (cancellation is eventually
    /// visible and final).
    #[test]
    fn cancel_token_cross_thread_visibility() {
        let token = CancelToken::new();
        let observer = token.clone();
        let handle = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::hint::spin_loop();
            }
            observer.is_cancelled()
        });
        token.cancel();
        assert!(handle.join().unwrap());
        assert!(token.is_cancelled());
    }
}
