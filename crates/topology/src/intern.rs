//! Global hash-consing interners for [`Vertex`](crate::Vertex) and
//! [`Simplex`](crate::Simplex).
//!
//! Subdivision and exploration workloads create the same vertices and
//! simplices over and over (views are shared between facets, faces between
//! simplices). Interning collapses every structurally-equal vertex/simplex
//! to a single shared allocation, so that
//!
//! * equality is a pointer comparison (`O(1)` instead of a deep structural
//!   walk through nested views),
//! * hashing writes one precomputed 64-bit fingerprint,
//! * the fingerprint doubles as a cheap, deterministic first key for total
//!   ordering, keeping ordered containers fast without sacrificing the
//!   run-to-run (and thread-interleaving-independent) determinism the
//!   serde output relies on.
//!
//! The interner is sharded to stay cheap under the parallel subdivision
//! fan-out, and it never evicts: the workspace's workloads are bounded by
//! the complexes actually constructed, and eviction would invalidate the
//! pointer-equality contract.
//!
//! Fingerprints are computed with a fixed FNV-1a hasher, never with
//! `RandomState`, so they are identical across runs, builds and feature
//! combinations on a given platform.

use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of independent shards; a power of two so the shard index is a
/// mask of the fingerprint.
const SHARDS: usize = 16;

/// Fixed-key FNV-1a, used for all structural fingerprints. Deterministic
/// by construction (no per-process random state).
#[derive(Clone, Debug)]
pub struct StructuralHasher(u64);

impl Default for StructuralHasher {
    fn default() -> Self {
        StructuralHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for StructuralHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The structural fingerprint of any hashable value, via the fixed hasher.
///
/// Identical across runs, builds and feature configurations on a given
/// platform, so it can key caches, order poison-recovery re-queues, and
/// label artifacts without leaking `RandomState` nondeterminism. Stage
/// artifacts in the verdict engine are addressed by this fingerprint.
#[must_use]
pub fn structural_fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StructuralHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// `BuildHasher` for hash containers keyed by already-fingerprinted
/// values (interned vertices and simplices replay a precomputed 64-bit
/// fingerprint, so the cheap FNV mix is collision-safe and much faster
/// than SipHash); deterministic, unlike `RandomState`.
pub type BuildStructuralHasher = std::hash::BuildHasherDefault<StructuralHasher>;

/// A sharded hash-consing table over `T`, bucketed by precomputed
/// fingerprint. Collisions fall back to the caller-supplied structural
/// match.
// chromata-lint: allow(D1): shards are addressed by fingerprint key; the only traversal is an order-insensitive length sum in `stats`
type Shard<T> = Mutex<std::collections::HashMap<u64, Vec<Arc<T>>, BuildStructuralHasher>>;

pub(crate) struct Interner<T> {
    shards: Vec<Shard<T>>,
}

impl<T> Interner<T> {
    pub(crate) fn new() -> Self {
        Interner {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(std::collections::HashMap::default())) // chromata-lint: allow(D1): shard construction, see `Shard`
                .collect(),
        }
    }

    /// Returns the canonical `Arc` for the value with the given
    /// fingerprint: an existing entry for which `matches` holds, or a
    /// fresh one produced by `build`.
    pub(crate) fn intern<M, B>(&self, hash: u64, matches: M, build: B) -> Arc<T>
    where
        M: Fn(&T) -> bool,
        B: FnOnce() -> T,
    {
        let shard = &self.shards[(hash as usize) & (SHARDS - 1)]; // chromata-lint: allow(P3): the index is masked by `SHARDS - 1` and `shards` holds exactly `SHARDS` (a power of two) entries
        let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
        let bucket = map.entry(hash).or_default();
        if let Some(existing) = bucket.iter().find(|a| matches(a)) {
            return Arc::clone(existing);
        }
        let fresh = Arc::new(build());
        bucket.push(Arc::clone(&fresh));
        fresh
    }

    /// Number of interned values (diagnostics only).
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Diagnostic counts of the global interners: `(vertices, simplices)`.
///
/// Exposed so benchmarks and tests can observe sharing; the tables only
/// ever grow.
#[must_use]
pub fn interner_stats() -> (usize, usize) {
    (
        crate::vertex::interner().len(),
        crate::simplex::interner().len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_deterministic() {
        assert_eq!(
            structural_fingerprint(&42u64),
            structural_fingerprint(&42u64)
        );
        assert_ne!(
            structural_fingerprint(&42u64),
            structural_fingerprint(&43u64)
        );
        assert_eq!(structural_fingerprint("abc"), structural_fingerprint("abc"));
    }

    #[test]
    fn interner_dedups_by_structure() {
        let table: Interner<String> = Interner::new();
        let a = table.intern(7, |s| s == "x", || "x".to_owned());
        let b = table.intern(7, |s| s == "x", || "x".to_owned());
        assert!(Arc::ptr_eq(&a, &b));
        // Same fingerprint, different structure: both live in one bucket.
        let c = table.intern(7, |s| s == "y", || "y".to_owned());
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn canonical_arc_is_first_seen_and_stable() {
        // The canonical allocation for a structure is the *first* one
        // interned; later equal interns — even after unrelated inserts in
        // the same bucket — keep returning that very allocation, never a
        // newer one. This is the pointer-equality contract the fast-path
        // `Eq` impls rely on.
        let table: Interner<String> = Interner::new();
        let first = table.intern(3, |s| s == "a", || "a".to_owned());
        for other in ["b", "c", "d"] {
            table.intern(3, |s| s == other, || other.to_owned());
        }
        let again = table.intern(3, |s| s == "a", || "a".to_owned());
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn serialized_output_is_independent_of_interning_order() {
        // The global interners record *first-seen* allocation order,
        // which varies with construction order (and, under the parallel
        // feature, with thread interleaving). None of that may leak into
        // serde output: serialization is defined purely by structure.
        use crate::{Complex, Simplex, Vertex};
        let tri = |spin: i64| {
            Simplex::from_iter([
                Vertex::of(0, spin),
                Vertex::of(1, spin + 1),
                Vertex::of(2, spin + 2),
            ])
        };
        // Forward construction order…
        let forward = Complex::from_facets([tri(10), tri(20), tri(30)]);
        // …versus reversed order (different first-seen sequence in the
        // interner for any vertex/simplex not yet globally interned)…
        let reversed = Complex::from_facets([tri(30), tri(20), tri(10)]);
        // …versus concurrent construction from shuffled orders.
        let threads: Vec<_> = [[20, 30, 10], [30, 10, 20]]
            .into_iter()
            .map(|spins| {
                std::thread::spawn(move || {
                    Complex::from_facets(spins.into_iter().map(tri).collect::<Vec<_>>())
                })
            })
            .collect();
        let baseline = serde_json::to_string(&forward).unwrap();
        assert_eq!(serde_json::to_string(&reversed).unwrap(), baseline);
        for handle in threads {
            let complex = handle.join().unwrap();
            assert_eq!(serde_json::to_string(&complex).unwrap(), baseline);
        }
        // And the round-trip re-interns to the same structure.
        let back: Complex = serde_json::from_str(&baseline).unwrap();
        assert_eq!(back, forward);
    }
}
