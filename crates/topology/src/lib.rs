//! Chromatic simplicial topology for distributed task solvability.
//!
//! This crate is the foundational substrate of the `chromata` workspace,
//! which reproduces *"Solvability Characterization for General Three-Process
//! Tasks"* (Attiya, Fraigniaud, Paz, Rajsbaum; PODC 2025). It provides the
//! combinatorial-topology vocabulary of the paper's §2:
//!
//! * [`Color`] / [`ColorSet`] — process identifiers ("colors");
//! * [`Value`] / [`Vertex`] — chromatic vertices `(id, value)`;
//! * [`Simplex`] — non-empty vertex sets in canonical form;
//! * [`Complex`] — face-closed simplicial complexes with links, stars,
//!   skeletons, and connectivity queries;
//! * [`Graph`] — graph utilities over 1-skeletons (shortest paths,
//!   spanning forests, cycle bases);
//! * [`SimplicialMap`] — (chromatic) simplicial maps;
//! * [`CarrierMap`] — monotone simplex-to-subcomplex maps with full
//!   validation;
//! * [`product`] — chromatic products `C × T` used by canonical tasks (§3).
//!
//! # Example: detecting a local articulation point
//!
//! ```
//! use chromata_topology::{Complex, Simplex, Vertex};
//!
//! // Bow-tie: two triangles sharing one vertex.
//! let w = Vertex::of(0, 0);
//! let bowtie = Complex::from_facets([
//!     Simplex::from_iter([w.clone(), Vertex::of(1, 0), Vertex::of(2, 0)]),
//!     Simplex::from_iter([w.clone(), Vertex::of(1, 1), Vertex::of(2, 1)]),
//! ]);
//! assert!(!bowtie.is_link_connected());
//! assert_eq!(bowtie.disconnected_link_vertices(), vec![w]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod carrier;
mod color;
mod complex;
pub mod govern;
mod graph;
pub mod interleave;
mod intern;
mod map;
mod par;
mod product;
mod serde_impls;
mod simplex;
mod value;
mod vertex;

pub use carrier::{CarrierMap, CarrierViolation};
pub use color::{Color, ColorSet};
pub use complex::Complex;
pub use govern::{Budget, CancelToken, Gate, GatePermit, Interrupt, Stopwatch};
pub use graph::Graph;
pub use intern::{interner_stats, structural_fingerprint, BuildStructuralHasher, StructuralHasher};
pub use map::SimplicialMap;
pub use par::{par_map, try_par_map, WorkerPanic};
pub use product::{product, product_simplex, product_vertex, project_first, project_second};
pub use simplex::Simplex;
pub use value::Value;
pub use vertex::Vertex;
