//! Chromatic vertices: a color (process id) together with a payload value.

use std::fmt;

use crate::color::Color;
use crate::value::Value;

/// A vertex of a chromatic simplicial complex: a pair `(color, value)`
/// (paper, §2.2).
///
/// Vertices are identified structurally; two complexes sharing a vertex
/// value share the vertex. Ordering sorts first by color then by value,
/// which keeps chromatic simplices in process-id order.
///
/// # Examples
///
/// ```
/// use chromata_topology::{Color, Value, Vertex};
///
/// let v = Vertex::new(Color::new(1), Value::from(42));
/// assert_eq!(v.color(), Color::new(1));
/// assert_eq!(format!("{v}"), "P1:42");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vertex {
    color: Color,
    value: Value,
}

impl Vertex {
    /// Creates a vertex with the given color and value.
    #[must_use]
    pub fn new(color: Color, value: Value) -> Self {
        Vertex { color, value }
    }

    /// Shorthand: vertex of process `color` with integer value `v`.
    #[must_use]
    pub fn of(color: u8, v: i64) -> Self {
        Vertex::new(Color::new(color), Value::Int(v))
    }

    /// The color (process id) of this vertex.
    #[must_use]
    pub fn color(&self) -> Color {
        self.color
    }

    /// The payload value of this vertex.
    #[must_use]
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Consumes the vertex, returning its payload value.
    #[must_use]
    pub fn into_value(self) -> Value {
        self.value
    }

    /// A copy of this vertex with the same color and a new value.
    #[must_use]
    pub fn with_value(&self, value: Value) -> Self {
        Vertex {
            color: self.color,
            value,
        }
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.color, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_rewrap() {
        let v = Vertex::of(2, 7);
        assert_eq!(v.color(), Color::new(2));
        assert_eq!(v.value(), &Value::Int(7));
        let w = v.with_value(Value::name("x"));
        assert_eq!(w.color(), Color::new(2));
        assert_eq!(w.value(), &Value::name("x"));
        assert_eq!(w.clone().into_value(), Value::name("x"));
    }

    #[test]
    fn ordering_color_major() {
        let a = Vertex::of(0, 9);
        let b = Vertex::of(1, 0);
        assert!(a < b, "color dominates value in ordering");
        let c = Vertex::of(0, 1);
        assert!(c < a);
    }
}
