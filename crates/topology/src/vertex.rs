//! Chromatic vertices: a color (process id) together with a payload value.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use crate::color::Color;
use crate::intern::{Interner, StructuralHasher};
use crate::value::Value;

/// A vertex of a chromatic simplicial complex: a pair `(color, value)`
/// (paper, §2.2).
///
/// Vertices are identified structurally; two complexes sharing a vertex
/// value share the vertex. Internally every vertex is *interned* in a
/// global table, so structurally-equal vertices share one allocation:
/// cloning is a reference-count bump, equality is a pointer comparison and
/// hashing writes a precomputed fingerprint. Ordering sorts first by color
/// then by value, which keeps chromatic simplices in process-id order.
///
/// # Examples
///
/// ```
/// use chromata_topology::{Color, Value, Vertex};
///
/// let v = Vertex::new(Color::new(1), Value::from(42));
/// assert_eq!(v.color(), Color::new(1));
/// assert_eq!(format!("{v}"), "P1:42");
/// ```
#[derive(Clone)]
pub struct Vertex(Arc<VertexInner>);

#[derive(Debug)]
pub(crate) struct VertexInner {
    color: Color,
    value: Value,
    hash: u64,
}

static VERTICES: OnceLock<Interner<VertexInner>> = OnceLock::new();

pub(crate) fn interner() -> &'static Interner<VertexInner> {
    VERTICES.get_or_init(Interner::new)
}

impl Vertex {
    /// Creates a vertex with the given color and value.
    #[must_use]
    pub fn new(color: Color, value: Value) -> Self {
        let hash = vertex_fingerprint(color, &value);
        Vertex(interner().intern(
            hash,
            |inner| inner.color == color && inner.value == value,
            || VertexInner {
                color,
                value: value.clone(),
                hash,
            },
        ))
    }

    /// Shorthand: vertex of process `color` with integer value `v`.
    #[must_use]
    pub fn of(color: u8, v: i64) -> Self {
        Vertex::new(Color::new(color), Value::Int(v))
    }

    /// The color (process id) of this vertex.
    #[must_use]
    pub fn color(&self) -> Color {
        self.0.color
    }

    /// The payload value of this vertex.
    #[must_use]
    pub fn value(&self) -> &Value {
        &self.0.value
    }

    /// Consumes the vertex, returning its payload value.
    #[must_use]
    pub fn into_value(self) -> Value {
        self.0.value.clone()
    }

    /// A copy of this vertex with the same color and a new value.
    #[must_use]
    pub fn with_value(&self, value: Value) -> Self {
        Vertex::new(self.0.color, value)
    }

    /// The precomputed structural fingerprint (interning key).
    pub(crate) fn fingerprint(&self) -> u64 {
        self.0.hash
    }

    /// Whether two vertices are the same interned allocation.
    fn same(&self, other: &Vertex) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl PartialEq for Vertex {
    fn eq(&self, other: &Self) -> bool {
        // Interning makes structural equality coincide with identity.
        self.same(other)
    }
}

impl Eq for Vertex {}

impl Hash for Vertex {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl PartialOrd for Vertex {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Vertex {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.same(other) {
            return std::cmp::Ordering::Equal;
        }
        self.0
            .color
            .cmp(&other.0.color)
            .then_with(|| self.0.value.cmp(&other.0.value))
    }
}

impl fmt::Debug for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vertex")
            .field("color", &self.0.color)
            .field("value", &self.0.value)
            .finish()
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.color(), self.value())
    }
}

/// The fingerprint a vertex with these components gets: the structural
/// hash of `color` followed by `value`, under the fixed hasher.
pub(crate) fn vertex_fingerprint(color: Color, value: &Value) -> u64 {
    let mut h = StructuralHasher::default();
    color.hash(&mut h);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::structural_fingerprint as fingerprint;

    #[test]
    fn accessors_and_rewrap() {
        let v = Vertex::of(2, 7);
        assert_eq!(v.color(), Color::new(2));
        assert_eq!(v.value(), &Value::Int(7));
        let w = v.with_value(Value::name("x"));
        assert_eq!(w.color(), Color::new(2));
        assert_eq!(w.value(), &Value::name("x"));
        assert_eq!(w.clone().into_value(), Value::name("x"));
    }

    #[test]
    fn ordering_color_major() {
        let a = Vertex::of(0, 9);
        let b = Vertex::of(1, 0);
        assert!(a < b, "color dominates value in ordering");
        let c = Vertex::of(0, 1);
        assert!(c < a);
    }

    #[test]
    fn interning_shares_allocations() {
        let a = Vertex::of(1, 5);
        let b = Vertex::of(1, 5);
        assert!(Arc::ptr_eq(&a.0, &b.0), "equal vertices are one allocation");
        assert_eq!(a, b);
        let c = Vertex::of(1, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn fingerprint_matches_structural_hash() {
        let a = Vertex::of(3, 11);
        assert_eq!(
            a.fingerprint(),
            vertex_fingerprint(Color::new(3), &Value::Int(11))
        );
        assert_eq!(fingerprint(&a), fingerprint(&Vertex::of(3, 11)));
    }
}
