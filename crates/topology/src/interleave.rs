//! Loom-style exhaustive interleaving enumeration for concurrency tests.
//!
//! The workspace's shared-state primitives ([`crate::CancelToken`], the
//! decision pipeline's FIFO cache) are built from atomic operations and
//! mutex-guarded critical sections, so their concurrent behaviour is fully
//! determined by the *order* in which those operations commit. That makes
//! op-level model checking exact: enumerate every merge of the per-thread
//! operation sequences, replay each merge sequentially against the real
//! implementation, and assert the invariants after every step. If an
//! invariant can be violated by scheduling, some enumeration order
//! exhibits it deterministically — no stress loops, no flaky sleeps.
//!
//! The number of interleavings is the multinomial coefficient
//! `(n₁+…+n_k)! / (n₁!·…·n_k!)`, so tests keep per-thread op counts small
//! by default and opt into deeper schedules under `--cfg chromata_loom`
//! (the CI `static-analysis` job runs the full suite):
//!
//! ```text
//! RUSTFLAGS="--cfg chromata_loom" cargo test -p chromata-topology interleave
//! ```
//!
//! Gate the expensive shapes with [`max_threads`]/[`depth_budget`] rather
//! than `cfg!` directly so the scaling policy lives in one place.
//!
//! chromata-lint: allow(P3): interleaving indices are derived from the lengths of the sequences being merged; every site is advisory-flagged by P2 for per-site review

/// Calls `f` once per distinct interleaving of `k` threads where thread
/// `t` performs `counts[t]` operations. Each schedule is a sequence of
/// thread indices; thread `t` appears exactly `counts[t]` times, and its
/// occurrences are its operations in program order.
///
/// The empty schedule is yielded exactly once when all counts are zero.
pub fn for_each_interleaving<F>(counts: &[usize], mut f: F)
where
    F: FnMut(&[usize]),
{
    let total: usize = counts.iter().sum();
    let mut remaining = counts.to_vec();
    let mut schedule = Vec::with_capacity(total);
    enumerate(&mut remaining, &mut schedule, total, &mut f);
}

fn enumerate<F>(remaining: &mut [usize], schedule: &mut Vec<usize>, total: usize, f: &mut F)
where
    F: FnMut(&[usize]),
{
    if schedule.len() == total {
        f(schedule);
        return;
    }
    for t in 0..remaining.len() {
        if remaining[t] == 0 {
            continue;
        }
        remaining[t] -= 1;
        schedule.push(t);
        enumerate(remaining, schedule, total, f);
        schedule.pop();
        remaining[t] += 1;
    }
}

/// Number of distinct interleavings for the given per-thread op counts
/// (the multinomial coefficient). Saturates at `usize::MAX`.
#[must_use]
pub fn interleaving_count(counts: &[usize]) -> usize {
    let mut result: usize = 1;
    let mut placed: usize = 0;
    for &n in counts {
        for i in 1..=n {
            placed += 1;
            // result *= C(placed, i) incrementally: multiply then divide
            // keeps intermediate values exact (product of i consecutive
            // integers is divisible by i!).
            result = result.saturating_mul(placed) / i;
        }
    }
    result
}

/// How many model threads exhaustive tests should use: 3 under
/// `--cfg chromata_loom` (one per process of the paper's model), 2 in the
/// default quick configuration.
#[must_use]
pub fn max_threads() -> usize {
    if cfg!(chromata_loom) {
        3
    } else {
        2
    }
}

/// Per-thread operation budget for exhaustive tests: deep schedules under
/// `--cfg chromata_loom`, shallow-but-meaningful ones by default so plain
/// `cargo test` stays fast.
#[must_use]
pub fn depth_budget() -> usize {
    if cfg!(chromata_loom) {
        4
    } else {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn two_by_two_yields_all_six_merges() {
        let mut seen = BTreeSet::new();
        for_each_interleaving(&[2, 2], |s| {
            assert!(seen.insert(s.to_vec()), "duplicate schedule {s:?}");
        });
        assert_eq!(seen.len(), 6);
        assert_eq!(interleaving_count(&[2, 2]), 6);
        assert!(seen.contains(&vec![0, 0, 1, 1]));
        assert!(seen.contains(&vec![1, 1, 0, 0]));
        assert!(seen.contains(&vec![0, 1, 0, 1]));
    }

    #[test]
    fn counts_match_enumeration() {
        for counts in [vec![1, 1, 1], vec![3, 2], vec![0, 2], vec![2, 2, 2]] {
            let mut n = 0;
            for_each_interleaving(&counts, |_| n += 1);
            assert_eq!(n, interleaving_count(&counts), "counts {counts:?}");
        }
    }

    #[test]
    fn empty_schedule_yielded_once() {
        let mut n = 0;
        for_each_interleaving(&[0, 0], |s| {
            assert!(s.is_empty());
            n += 1;
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn schedules_respect_program_order() {
        // Thread occurrences index ops in program order, so every prefix
        // of a schedule contains at most counts[t] occurrences of t.
        for_each_interleaving(&[2, 3], |s| {
            let zeros = s.iter().filter(|&&t| t == 0).count();
            let ones = s.iter().filter(|&&t| t == 1).count();
            assert_eq!((zeros, ones), (2, 3));
        });
    }

    #[test]
    fn budgets_are_positive() {
        assert!(max_threads() >= 2);
        assert!(depth_budget() >= 3);
    }
}
