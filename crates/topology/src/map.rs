//! Simplicial maps between complexes.

use std::collections::BTreeMap;
use std::fmt;

use crate::complex::Complex;
use crate::simplex::Simplex;
use crate::vertex::Vertex;

/// A vertex map between complexes, checked for simpliciality on demand.
///
/// A *simplicial map* `f : K → K'` sends vertices to vertices such that the
/// image of every simplex of `K` is a simplex of `K'`; it is *chromatic* if
/// it preserves colors (paper, §2.2). Decision maps `δ` from protocol
/// complexes to output complexes are chromatic simplicial maps (§2.4).
///
/// # Examples
///
/// ```
/// use chromata_topology::{Complex, Simplex, SimplicialMap, Vertex};
///
/// let edge = |a: Vertex, b: Vertex| Simplex::from_iter([a, b]);
/// let k = Complex::from_facets([edge(Vertex::of(0, 0), Vertex::of(1, 0))]);
/// let mut f = SimplicialMap::new();
/// f.insert(Vertex::of(0, 0), Vertex::of(0, 9));
/// f.insert(Vertex::of(1, 0), Vertex::of(1, 9));
/// let image = Complex::from_facets([edge(Vertex::of(0, 9), Vertex::of(1, 9))]);
/// assert!(f.is_simplicial(&k, &image));
/// assert!(f.is_chromatic());
/// ```
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct SimplicialMap {
    map: BTreeMap<Vertex, Vertex>,
}

impl SimplicialMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        SimplicialMap::default()
    }

    /// Inserts a vertex assignment, returning the previous image if any.
    pub fn insert(&mut self, from: Vertex, to: Vertex) -> Option<Vertex> {
        self.map.insert(from, to)
    }

    /// The image of vertex `v`, if assigned.
    #[must_use]
    pub fn get(&self, v: &Vertex) -> Option<&Vertex> {
        self.map.get(v)
    }

    /// Whether every vertex of `domain` has an image.
    #[must_use]
    pub fn is_total_on(&self, domain: &Complex) -> bool {
        domain.vertices().all(|v| self.map.contains_key(v))
    }

    /// The image of a simplex: `f(σ) = {f(v) : v ∈ σ}`.
    ///
    /// Returns `None` if some vertex of `σ` has no assigned image. Note the
    /// image may have lower dimension if the map is not injective on `σ`.
    #[must_use]
    pub fn apply(&self, s: &Simplex) -> Option<Simplex> {
        let mut verts = Vec::with_capacity(s.len());
        for v in s {
            verts.push(self.map.get(v)?.clone());
        }
        Some(Simplex::new(verts))
    }

    /// Whether the map is simplicial from `domain` to `codomain`: total on
    /// `domain`'s vertices and mapping every facet (hence every simplex) of
    /// `domain` to a simplex of `codomain`.
    #[must_use]
    pub fn is_simplicial(&self, domain: &Complex, codomain: &Complex) -> bool {
        domain
            .facets()
            .all(|s| self.apply(s).is_some_and(|t| codomain.contains(&t)))
    }

    /// Whether every assignment preserves colors.
    #[must_use]
    pub fn is_chromatic(&self) -> bool {
        self.map.iter().all(|(v, w)| v.color() == w.color())
    }

    /// The image complex of `domain` under this map.
    ///
    /// # Panics
    ///
    /// Panics if the map is not total on `domain`.
    #[must_use]
    pub fn image(&self, domain: &Complex) -> Complex {
        Complex::from_facets(domain.facets().map(|s| {
            self.apply(s)
                .unwrap_or_else(|| panic!("map not total on domain facet {s}")) // chromata-lint: allow(P1): totality on the domain is validated at construction; documented under # Panics
        }))
    }

    /// Composition `other ∘ self` (apply `self` first).
    ///
    /// Vertices whose image under `self` has no assignment under `other`
    /// are dropped from the composite.
    #[must_use]
    pub fn then(&self, other: &SimplicialMap) -> SimplicialMap {
        let mut out = SimplicialMap::new();
        for (v, w) in &self.map {
            if let Some(u) = other.get(w) {
                out.insert(v.clone(), u.clone());
            }
        }
        out
    }

    /// Iterator over the `(from, to)` assignments.
    pub fn iter(&self) -> impl Iterator<Item = (&Vertex, &Vertex)> + Clone {
        self.map.iter()
    }

    /// Number of assignments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map has no assignments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl FromIterator<(Vertex, Vertex)> for SimplicialMap {
    fn from_iter<I: IntoIterator<Item = (Vertex, Vertex)>>(iter: I) -> Self {
        SimplicialMap {
            map: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for SimplicialMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SimplicialMap({} vertices)", self.map.len())?;
        for (v, w) in &self.map {
            writeln!(f, "  {v} ↦ {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: u8, x: i64) -> Vertex {
        Vertex::of(c, x)
    }

    fn triangle(x: i64) -> Simplex {
        Simplex::from_iter([v(0, x), v(1, x), v(2, x)])
    }

    #[test]
    fn identity_is_simplicial_and_chromatic() {
        let k = Complex::from_facets([triangle(0)]);
        let f: SimplicialMap = k.vertices().map(|u| (u.clone(), u.clone())).collect();
        assert!(f.is_total_on(&k));
        assert!(f.is_simplicial(&k, &k));
        assert!(f.is_chromatic());
        assert_eq!(f.image(&k), k);
    }

    #[test]
    fn collapse_is_simplicial_when_codomain_has_faces() {
        // Map a triangle onto one of its edges: images of simplices are
        // lower-dimensional simplices, still legal.
        let k = Complex::from_facets([triangle(0)]);
        let mut f = SimplicialMap::new();
        f.insert(v(0, 0), v(0, 0));
        f.insert(v(1, 0), v(1, 0));
        f.insert(v(2, 0), v(1, 0)); // collapse P2 onto P1's vertex
        let codomain = Complex::from_facets([Simplex::from_iter([v(0, 0), v(1, 0)])]);
        assert!(f.is_simplicial(&k, &codomain));
        assert!(!f.is_chromatic());
        let img = f.apply(&triangle(0)).unwrap();
        assert_eq!(img.dimension(), 1);
    }

    #[test]
    fn non_simplicial_detected() {
        let k = Complex::from_facets([triangle(0)]);
        let mut f = SimplicialMap::new();
        f.insert(v(0, 0), v(0, 1));
        f.insert(v(1, 0), v(1, 2));
        f.insert(v(2, 0), v(2, 3));
        // Codomain lacks the image triangle {P0:1, P1:2, P2:3}.
        let codomain = Complex::from_facets([Simplex::from_iter([v(0, 1), v(1, 2)])]);
        assert!(!f.is_simplicial(&k, &codomain));
    }

    #[test]
    fn partial_map_apply_returns_none() {
        let f = SimplicialMap::new();
        assert!(f.apply(&triangle(0)).is_none());
        assert!(f.is_empty());
    }

    #[test]
    fn composition() {
        let f: SimplicialMap = [(v(0, 0), v(0, 1))].into_iter().collect();
        let g: SimplicialMap = [(v(0, 1), v(0, 2))].into_iter().collect();
        let h = f.then(&g);
        assert_eq!(h.get(&v(0, 0)), Some(&v(0, 2)));
        assert_eq!(h.len(), 1);
        // Dangling composition drops the vertex.
        let g2 = SimplicialMap::new();
        assert!(f.then(&g2).is_empty());
    }
}
