//! Serde support for the topology types.
//!
//! Serialization goes through explicit mirror types so the on-disk format
//! is stable, human-readable and independent of internal `Arc` sharing:
//! complexes serialize as facet lists (faces are re-derived on load),
//! carrier maps as `(simplex, image-facets)` pairs. Deserialization
//! re-establishes every structural invariant through the ordinary
//! constructors.

use serde::de::Error as DeError;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::carrier::CarrierMap;
use crate::color::Color;
use crate::complex::Complex;
use crate::simplex::Simplex;
use crate::value::Value;
use crate::vertex::Vertex;

#[derive(Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
enum ValueRepr {
    Int(i64),
    Name(String),
    Pair(Box<ValueRepr>, Box<ValueRepr>),
    View(Vec<VertexRepr>),
    Split(Box<ValueRepr>, u32),
}

#[derive(Serialize, Deserialize)]
struct VertexRepr {
    color: u8,
    value: ValueRepr,
}

impl From<&Value> for ValueRepr {
    fn from(v: &Value) -> Self {
        match v {
            Value::Int(i) => ValueRepr::Int(*i),
            Value::Name(s) => ValueRepr::Name(s.to_string()),
            Value::Pair(a, b) => ValueRepr::Pair(
                Box::new(ValueRepr::from(&**a)),
                Box::new(ValueRepr::from(&**b)),
            ),
            Value::View(vs) => ValueRepr::View(vs.iter().map(VertexRepr::from).collect()),
            Value::Split(b, i) => ValueRepr::Split(Box::new(ValueRepr::from(&**b)), *i),
        }
    }
}

impl From<&VertexRepr> for Vertex {
    fn from(r: &VertexRepr) -> Self {
        Vertex::new(Color::new(r.color), Value::from(&r.value))
    }
}

impl From<&ValueRepr> for Value {
    fn from(r: &ValueRepr) -> Self {
        match r {
            ValueRepr::Int(i) => Value::Int(*i),
            ValueRepr::Name(s) => Value::name(s),
            ValueRepr::Pair(a, b) => Value::pair(Value::from(&**a), Value::from(&**b)),
            ValueRepr::View(vs) => Value::view(vs.iter().map(Vertex::from)),
            ValueRepr::Split(b, i) => Value::split(Value::from(&**b), *i),
        }
    }
}

impl From<&Vertex> for VertexRepr {
    fn from(v: &Vertex) -> Self {
        VertexRepr {
            color: v.color().index(),
            value: ValueRepr::from(v.value()),
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ValueRepr::from(self).serialize(s)
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Value::from(&ValueRepr::deserialize(d)?))
    }
}

impl Serialize for Vertex {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        VertexRepr::from(self).serialize(s)
    }
}

impl<'de> Deserialize<'de> for Vertex {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let r = VertexRepr::deserialize(d)?;
        if usize::from(r.color) >= Color::MAX_COLORS {
            return Err(D::Error::custom(format!("color {} out of range", r.color)));
        }
        Ok(Vertex::from(&r))
    }
}

impl Serialize for Simplex {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.vertices().serialize(s)
    }
}

impl<'de> Deserialize<'de> for Simplex {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let verts = Vec::<Vertex>::deserialize(d)?;
        if verts.is_empty() {
            return Err(D::Error::custom("a simplex needs at least one vertex"));
        }
        Ok(Simplex::new(verts))
    }
}

impl Serialize for Complex {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let facets: Vec<&Simplex> = self.facets().collect();
        facets.serialize(s)
    }
}

impl<'de> Deserialize<'de> for Complex {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Complex::from_facets(Vec::<Simplex>::deserialize(d)?))
    }
}

impl Serialize for CarrierMap {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&Simplex, Vec<&Simplex>)> = self
            .iter()
            .map(|(k, img)| (k, img.facets().collect()))
            .collect();
        entries.serialize(s)
    }
}

impl<'de> Deserialize<'de> for CarrierMap {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let entries = Vec::<(Simplex, Vec<Simplex>)>::deserialize(d)?;
        Ok(entries
            .into_iter()
            .map(|(k, facets)| (k, Complex::from_facets(facets)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T>(v: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let json = serde_json::to_string(v).expect("serialize");
        serde_json::from_str(&json).expect("deserialize")
    }

    #[test]
    fn value_roundtrips() {
        let deep = Value::split(
            Value::pair(
                Value::Int(-3),
                Value::view([Vertex::of(1, 9), Vertex::of(0, 2)]),
            ),
            2,
        );
        assert_eq!(roundtrip(&deep), deep);
        assert_eq!(roundtrip(&Value::name("x")), Value::name("x"));
    }

    #[test]
    fn simplex_and_complex_roundtrip() {
        let tri = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 2)]);
        assert_eq!(roundtrip(&tri), tri);
        let k = Complex::from_facets([tri]).skeleton(1);
        let k2 = roundtrip(&k);
        assert_eq!(k2, k);
        assert_eq!(k2.simplices().count(), k.simplices().count());
    }

    #[test]
    fn carrier_map_roundtrip() {
        let x = Simplex::vertex(Vertex::of(0, 0));
        let img = Complex::from_facets([Simplex::vertex(Vertex::of(0, 7))]);
        let cm: CarrierMap = [(x, img)].into_iter().collect();
        let cm2 = roundtrip(&cm);
        assert_eq!(cm2, cm);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(serde_json::from_str::<Simplex>("[]").is_err());
        let bad_color = r#"{"color": 99, "value": {"int": 0}}"#;
        assert!(serde_json::from_str::<Vertex>(bad_color).is_err());
    }

    #[test]
    fn format_is_human_readable() {
        let v = Vertex::of(2, 5);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, r#"{"color":2,"value":{"int":5}}"#);
    }
}
