//! Serde support for the topology types.
//!
//! Serialization goes through explicit mirror types so the on-disk format
//! is stable, human-readable and independent of internal `Arc` sharing:
//! complexes serialize as facet lists (faces are re-derived on load),
//! carrier maps as `(simplex, image-facets)` pairs. Deserialization
//! re-establishes every structural invariant through the ordinary
//! constructors.

use serde::de::Error as DeError;
use serde::{Content, Deserialize, Deserializer, Serialize, Serializer};

use crate::carrier::CarrierMap;
use crate::color::Color;
use crate::complex::Complex;
use crate::graph::Graph;
use crate::simplex::Simplex;
use crate::value::Value;
use crate::vertex::Vertex;

/// Mirror of [`Value`] in the on-disk format: an externally tagged enum
/// with snake_case tags (`{"int": 5}`, `{"view": [...]}`, …).
enum ValueRepr {
    Int(i64),
    Name(String),
    Pair(Box<ValueRepr>, Box<ValueRepr>),
    View(Vec<VertexRepr>),
    Split(Box<ValueRepr>, u32),
}

/// Mirror of [`Vertex`]: `{"color": c, "value": v}`.
struct VertexRepr {
    color: u8,
    value: ValueRepr,
}

impl ValueRepr {
    fn to_content(&self) -> Content {
        let (tag, payload) = match self {
            ValueRepr::Int(i) => ("int", Content::I64(*i)),
            ValueRepr::Name(s) => ("name", Content::Str(s.clone())),
            ValueRepr::Pair(a, b) => ("pair", Content::Seq(vec![a.to_content(), b.to_content()])),
            ValueRepr::View(vs) => (
                "view",
                Content::Seq(vs.iter().map(VertexRepr::to_content).collect()),
            ),
            ValueRepr::Split(b, i) => (
                "split",
                Content::Seq(vec![b.to_content(), Content::I64(i64::from(*i))]),
            ),
        };
        Content::Map(vec![(tag.to_owned(), payload)])
    }

    fn from_content(c: &Content) -> Result<Self, String> {
        let Content::Map(entries) = c else {
            return Err(format!("expected a tagged value object, found {c:?}"));
        };
        let [(tag, payload)] = entries.as_slice() else {
            return Err("expected exactly one variant tag".to_owned());
        };
        let two = |payload: &Content| -> Result<(Content, Content), String> {
            match payload {
                Content::Seq(items) if items.len() == 2 => Ok((items[0].clone(), items[1].clone())),
                other => Err(format!("expected a 2-element sequence, found {other:?}")),
            }
        };
        match tag.as_str() {
            "int" => match payload {
                Content::I64(i) => Ok(ValueRepr::Int(*i)),
                other => Err(format!("expected an integer, found {other:?}")),
            },
            "name" => match payload {
                Content::Str(s) => Ok(ValueRepr::Name(s.clone())),
                other => Err(format!("expected a string, found {other:?}")),
            },
            "pair" => {
                let (a, b) = two(payload)?;
                Ok(ValueRepr::Pair(
                    Box::new(ValueRepr::from_content(&a)?),
                    Box::new(ValueRepr::from_content(&b)?),
                ))
            }
            "view" => match payload {
                Content::Seq(items) => Ok(ValueRepr::View(
                    items
                        .iter()
                        .map(VertexRepr::from_content)
                        .collect::<Result<_, _>>()?,
                )),
                other => Err(format!("expected a sequence, found {other:?}")),
            },
            "split" => {
                let (base, copy) = two(payload)?;
                let copy = match copy {
                    Content::I64(i) => {
                        u32::try_from(i).map_err(|_| "split copy out of range".to_owned())?
                    }
                    other => return Err(format!("expected an integer, found {other:?}")),
                };
                Ok(ValueRepr::Split(
                    Box::new(ValueRepr::from_content(&base)?),
                    copy,
                ))
            }
            other => Err(format!("unknown value variant '{other}'")),
        }
    }
}

impl VertexRepr {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("color".to_owned(), Content::I64(i64::from(self.color))),
            ("value".to_owned(), self.value.to_content()),
        ])
    }

    fn from_content(c: &Content) -> Result<Self, String> {
        let Content::Map(entries) = c else {
            return Err(format!("expected a vertex object, found {c:?}"));
        };
        let field = |name: &str| -> Result<&Content, String> {
            entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing vertex field '{name}'"))
        };
        let color = match field("color")? {
            Content::I64(i) => {
                u8::try_from(*i).map_err(|_| format!("color {i} out of u8 range"))?
            }
            other => return Err(format!("expected an integer color, found {other:?}")),
        };
        let value = ValueRepr::from_content(field("value")?)?;
        Ok(VertexRepr { color, value })
    }
}

impl Serialize for ValueRepr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(self.to_content())
    }
}

impl<'de> Deserialize<'de> for ValueRepr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        ValueRepr::from_content(&d.deserialize_content()?).map_err(D::Error::custom)
    }
}

impl Serialize for VertexRepr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(self.to_content())
    }
}

impl<'de> Deserialize<'de> for VertexRepr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        VertexRepr::from_content(&d.deserialize_content()?).map_err(D::Error::custom)
    }
}

impl From<&Value> for ValueRepr {
    fn from(v: &Value) -> Self {
        match v {
            Value::Int(i) => ValueRepr::Int(*i),
            Value::Name(s) => ValueRepr::Name(s.to_string()),
            Value::Pair(a, b) => ValueRepr::Pair(
                Box::new(ValueRepr::from(&**a)),
                Box::new(ValueRepr::from(&**b)),
            ),
            Value::View(vs) => ValueRepr::View(vs.iter().map(VertexRepr::from).collect()),
            Value::Split(b, i) => ValueRepr::Split(Box::new(ValueRepr::from(&**b)), *i),
        }
    }
}

impl From<&VertexRepr> for Vertex {
    fn from(r: &VertexRepr) -> Self {
        Vertex::new(Color::new(r.color), Value::from(&r.value))
    }
}

impl From<&ValueRepr> for Value {
    fn from(r: &ValueRepr) -> Self {
        match r {
            ValueRepr::Int(i) => Value::Int(*i),
            ValueRepr::Name(s) => Value::name(s),
            ValueRepr::Pair(a, b) => Value::pair(Value::from(&**a), Value::from(&**b)),
            ValueRepr::View(vs) => Value::view(vs.iter().map(Vertex::from)),
            ValueRepr::Split(b, i) => Value::split(Value::from(&**b), *i),
        }
    }
}

impl From<&Vertex> for VertexRepr {
    fn from(v: &Vertex) -> Self {
        VertexRepr {
            color: v.color().index(),
            value: ValueRepr::from(v.value()),
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ValueRepr::from(self).serialize(s)
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Value::from(&ValueRepr::deserialize(d)?))
    }
}

impl Serialize for Vertex {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        VertexRepr::from(self).serialize(s)
    }
}

impl<'de> Deserialize<'de> for Vertex {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let r = VertexRepr::deserialize(d)?;
        if usize::from(r.color) >= Color::MAX_COLORS {
            return Err(D::Error::custom(format!("color {} out of range", r.color)));
        }
        Ok(Vertex::from(&r))
    }
}

impl Serialize for Simplex {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.vertices().serialize(s)
    }
}

impl<'de> Deserialize<'de> for Simplex {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let verts = Vec::<Vertex>::deserialize(d)?;
        if verts.is_empty() {
            return Err(D::Error::custom("a simplex needs at least one vertex"));
        }
        Ok(Simplex::new(verts))
    }
}

impl Serialize for Complex {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let facets: Vec<&Simplex> = self.facets().collect();
        facets.serialize(s)
    }
}

impl<'de> Deserialize<'de> for Complex {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Complex::from_facets(Vec::<Simplex>::deserialize(d)?))
    }
}

impl Serialize for CarrierMap {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&Simplex, Vec<&Simplex>)> = self
            .iter()
            .map(|(k, img)| (k, img.facets().collect()))
            .collect();
        entries.serialize(s)
    }
}

impl<'de> Deserialize<'de> for CarrierMap {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let entries = Vec::<(Simplex, Vec<Simplex>)>::deserialize(d)?;
        Ok(entries
            .into_iter()
            .map(|(k, facets)| (k, Complex::from_facets(facets)))
            .collect())
    }
}

impl Serialize for Graph {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Adjacency list, sorted by vertex; the BTree layout makes this
        // canonical regardless of insertion order.
        let entries: Vec<(&Vertex, Vec<&Vertex>)> =
            self.vertices().map(|v| (v, self.neighbors(v))).collect();
        entries.serialize(s)
    }
}

impl<'de> Deserialize<'de> for Graph {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let entries = Vec::<(Vertex, Vec<Vertex>)>::deserialize(d)?;
        let mut g = Graph::new();
        for (v, neighbors) in entries {
            g.add_vertex(v.clone());
            for n in neighbors {
                g.add_edge(v.clone(), n);
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T>(v: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let json = serde_json::to_string(v).expect("serialize");
        serde_json::from_str(&json).expect("deserialize")
    }

    #[test]
    fn value_roundtrips() {
        let deep = Value::split(
            Value::pair(
                Value::Int(-3),
                Value::view([Vertex::of(1, 9), Vertex::of(0, 2)]),
            ),
            2,
        );
        assert_eq!(roundtrip(&deep), deep);
        assert_eq!(roundtrip(&Value::name("x")), Value::name("x"));
    }

    #[test]
    fn simplex_and_complex_roundtrip() {
        let tri = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 2)]);
        assert_eq!(roundtrip(&tri), tri);
        let k = Complex::from_facets([tri]).skeleton(1);
        let k2 = roundtrip(&k);
        assert_eq!(k2, k);
        assert_eq!(k2.simplices().count(), k.simplices().count());
    }

    #[test]
    fn carrier_map_roundtrip() {
        let x = Simplex::vertex(Vertex::of(0, 0));
        let img = Complex::from_facets([Simplex::vertex(Vertex::of(0, 7))]);
        let cm: CarrierMap = [(x, img)].into_iter().collect();
        let cm2 = roundtrip(&cm);
        assert_eq!(cm2, cm);
    }

    #[test]
    fn graph_roundtrips() {
        let mut g = Graph::new();
        g.add_edge(Vertex::of(0, 0), Vertex::of(1, 1));
        g.add_edge(Vertex::of(1, 1), Vertex::of(2, 2));
        g.add_vertex(Vertex::of(2, 9));
        let g2 = roundtrip(&g);
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert!(g2.has_edge(&Vertex::of(0, 0), &Vertex::of(1, 1)));
        assert!(g2.has_edge(&Vertex::of(1, 1), &Vertex::of(2, 2)));
        assert!(g2.contains_vertex(&Vertex::of(2, 9)));
        assert!(g2.neighbors(&Vertex::of(2, 9)).is_empty());
        // Canonical bytes: reserializing the reload is an identity.
        assert_eq!(
            serde_json::to_string(&g2).unwrap(),
            serde_json::to_string(&g).unwrap()
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(serde_json::from_str::<Simplex>("[]").is_err());
        let bad_color = r#"{"color": 99, "value": {"int": 0}}"#;
        assert!(serde_json::from_str::<Vertex>(bad_color).is_err());
    }

    #[test]
    fn format_is_human_readable() {
        let v = Vertex::of(2, 5);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, r#"{"color":2,"value":{"int":5}}"#);
    }
}
