//! Graph-theoretic utilities over 1-dimensional complexes.
//!
//! Links of vertices in 2-dimensional complexes are graphs (paper, §2.2);
//! the Figure 7 algorithm navigates the link along the *lexicographically
//! smallest shortest path*, and the edge-path fundamental group needs
//! spanning forests and cycle bases. This module provides those primitives
//! on top of [`Complex`], treating its 1-skeleton as an undirected graph.
//!
//! chromata-lint: allow(P3): adjacency indices come from vertex ids interned into the same arena; every site is advisory-flagged by P2 for per-site review

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::complex::Complex;
use crate::simplex::Simplex;
use crate::vertex::Vertex;

/// An undirected graph view of the 1-skeleton of a complex.
///
/// # Examples
///
/// ```
/// use chromata_topology::{Complex, Graph, Simplex, Vertex};
///
/// let path = Complex::from_facets([
///     Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0)]),
///     Simplex::from_iter([Vertex::of(1, 0), Vertex::of(2, 0)]),
/// ]);
/// let g = Graph::from_complex(&path);
/// let p = g.shortest_path(&Vertex::of(0, 0), &Vertex::of(2, 0)).unwrap();
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adjacency: BTreeMap<Vertex, BTreeSet<Vertex>>,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Graph::default()
    }

    /// Builds the graph of the 1-skeleton of `k` (all vertices, all edges).
    #[must_use]
    pub fn from_complex(k: &Complex) -> Self {
        let mut g = Graph::new();
        for v in k.vertices() {
            g.adjacency.entry(v.clone()).or_default();
        }
        for e in k.simplices_of_dim(1) {
            let vs = e.vertices();
            g.add_edge(vs[0].clone(), vs[1].clone());
        }
        g
    }

    /// Adds an undirected edge (inserting endpoints as needed).
    pub fn add_edge(&mut self, a: Vertex, b: Vertex) {
        self.adjacency
            .entry(a.clone())
            .or_default()
            .insert(b.clone());
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Adds an isolated vertex if absent.
    pub fn add_vertex(&mut self, v: Vertex) {
        self.adjacency.entry(v).or_default();
    }

    /// Whether `v` is a vertex of the graph.
    #[must_use]
    pub fn contains_vertex(&self, v: &Vertex) -> bool {
        self.adjacency.contains_key(v)
    }

    /// Whether `{a, b}` is an edge.
    #[must_use]
    pub fn has_edge(&self, a: &Vertex, b: &Vertex) -> bool {
        self.adjacency.get(a).is_some_and(|n| n.contains(b))
    }

    /// The neighbors of `v`, in sorted order.
    #[must_use]
    pub fn neighbors(&self, v: &Vertex) -> Vec<&Vertex> {
        self.adjacency
            .get(v)
            .map(|n| n.iter().collect())
            .unwrap_or_default()
    }

    /// Iterator over the vertices, in sorted order.
    pub fn vertices(&self) -> impl Iterator<Item = &Vertex> + Clone {
        self.adjacency.keys()
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// All edges as sorted vertex pairs `(min, max)`.
    #[must_use]
    pub fn edges(&self) -> Vec<(Vertex, Vertex)> {
        let mut out = Vec::new();
        for (v, ns) in &self.adjacency {
            for w in ns {
                if v < w {
                    out.push((v.clone(), w.clone()));
                }
            }
        }
        out
    }

    /// Connected components as sorted vertex sets, ordered by minimum
    /// vertex.
    #[must_use]
    pub fn components(&self) -> Vec<BTreeSet<Vertex>> {
        let mut seen: BTreeSet<&Vertex> = BTreeSet::new();
        let mut out = Vec::new();
        for start in self.adjacency.keys() {
            if seen.contains(start) {
                continue;
            }
            let mut comp = BTreeSet::new();
            let mut queue = VecDeque::from([start]);
            seen.insert(start);
            while let Some(v) = queue.pop_front() {
                comp.insert(v.clone());
                for w in &self.adjacency[v] {
                    if seen.insert(w) {
                        queue.push_back(w);
                    }
                }
            }
            out.push(comp);
        }
        out
    }

    /// Whether the graph is connected (and non-empty).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.components().len() == 1
    }

    /// Whether `a` and `b` lie in the same connected component.
    #[must_use]
    pub fn connected(&self, a: &Vertex, b: &Vertex) -> bool {
        if !self.contains_vertex(a) || !self.contains_vertex(b) {
            return false;
        }
        self.shortest_path(a, b).is_some()
    }

    /// A shortest path from `from` to `to` (inclusive), or `None` if
    /// disconnected. BFS explores neighbors in sorted order, so the result
    /// is deterministic.
    #[must_use]
    pub fn shortest_path(&self, from: &Vertex, to: &Vertex) -> Option<Vec<Vertex>> {
        if !self.contains_vertex(from) || !self.contains_vertex(to) {
            return None;
        }
        if from == to {
            return Some(vec![from.clone()]);
        }
        let mut pred: BTreeMap<&Vertex, &Vertex> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen: BTreeSet<&Vertex> = BTreeSet::from([from]);
        while let Some(v) = queue.pop_front() {
            for w in &self.adjacency[v] {
                if seen.insert(w) {
                    pred.insert(w, v);
                    if w == to {
                        let mut path = vec![to.clone()];
                        let mut cur = to;
                        while let Some(&p) = pred.get(cur) {
                            path.push(p.clone());
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// The lexicographically smallest shortest path from `from` to `to`,
    /// where paths of equal (minimal) length are compared as the sorted
    /// *set* of their vertices, using the global vertex order — the paper's
    /// step (13): "identify each path with the (unordered) set of unique
    /// numbers of the vertices in the path".
    ///
    /// Returns `None` if `from` and `to` are disconnected.
    #[must_use]
    pub fn lex_smallest_shortest_path(&self, from: &Vertex, to: &Vertex) -> Option<Vec<Vertex>> {
        // Distances from `to`, so we can walk greedily from `from`.
        let dist_to = self.bfs_distances(to);
        let d0 = *dist_to.get(from)?;
        // Greedy construction does not directly minimize the *set* order, so
        // enumerate all shortest paths (links are small) and pick the
        // set-lexicographically least.
        let mut best: Option<(Vec<Vertex>, Vec<Vertex>)> = None; // (sorted-set key, path)
        let mut stack: Vec<Vec<Vertex>> = vec![vec![from.clone()]];
        while let Some(path) = stack.pop() {
            let last = path.last().expect("non-empty"); // chromata-lint: allow(P1): paths on the stack are seeded non-empty and only grow
            let d = dist_to[last];
            if d == 0 {
                let mut key = path.clone();
                key.sort();
                match &best {
                    Some((bk, _)) if *bk <= key => {}
                    _ => best = Some((key, path)),
                }
                continue;
            }
            if path.len() as i64 - 1 + i64::from(d) > i64::from(d0) {
                continue;
            }
            for w in &self.adjacency[last] {
                if dist_to.get(w) == Some(&(d - 1)) {
                    let mut next = path.clone();
                    next.push(w.clone());
                    stack.push(next);
                }
            }
        }
        best.map(|(_, p)| p)
    }

    fn bfs_distances(&self, from: &Vertex) -> BTreeMap<Vertex, u32> {
        let mut dist = BTreeMap::new();
        if !self.contains_vertex(from) {
            return dist;
        }
        dist.insert(from.clone(), 0u32);
        let mut queue = VecDeque::from([from.clone()]);
        while let Some(v) = queue.pop_front() {
            let d = dist[&v];
            for w in self.adjacency[&v].clone() {
                if !dist.contains_key(&w) {
                    dist.insert(w.clone(), d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The eccentricity-style longest shortest-path length (diameter) within
    /// the component of `v`. Used to bound Figure 7's termination time.
    #[must_use]
    pub fn component_diameter(&self, v: &Vertex) -> u32 {
        let d = self.bfs_distances(v);
        d.keys()
            .map(|u| self.bfs_distances(u).values().copied().max().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// A spanning forest: for each component, a BFS tree rooted at its
    /// minimum vertex. Returns the tree edges as `(parent, child)` pairs.
    #[must_use]
    pub fn spanning_forest(&self) -> Vec<(Vertex, Vertex)> {
        let mut seen: BTreeSet<&Vertex> = BTreeSet::new();
        let mut tree = Vec::new();
        for root in self.adjacency.keys() {
            if seen.contains(root) {
                continue;
            }
            seen.insert(root);
            let mut queue = VecDeque::from([root]);
            while let Some(v) = queue.pop_front() {
                for w in &self.adjacency[v] {
                    if seen.insert(w) {
                        tree.push((v.clone(), w.clone()));
                        queue.push_back(w);
                    }
                }
            }
        }
        tree
    }

    /// Whether the graph is a forest (no cycles).
    #[must_use]
    pub fn is_forest(&self) -> bool {
        self.edge_count() + self.components().len() == self.vertex_count()
    }

    /// The edges not in the spanning forest of [`Graph::spanning_forest`];
    /// each such edge closes exactly one independent cycle (a basis of the
    /// cycle space).
    #[must_use]
    pub fn non_tree_edges(&self) -> Vec<(Vertex, Vertex)> {
        let forest: BTreeSet<(Vertex, Vertex)> = self
            .spanning_forest()
            .into_iter()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        self.edges()
            .into_iter()
            .filter(|e| !forest.contains(e))
            .collect()
    }

    /// Converts back to a 1-dimensional [`Complex`].
    #[must_use]
    pub fn to_complex(&self) -> Complex {
        let mut k = Complex::new();
        for v in self.adjacency.keys() {
            k.add_simplex(Simplex::vertex(v.clone()));
        }
        for (a, b) in self.edges() {
            k.add_simplex(Simplex::from_iter([a, b]));
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: u8, x: i64) -> Vertex {
        Vertex::of(c, x)
    }

    fn cycle4() -> Graph {
        // 4-cycle: (0,0) - (1,0) - (0,1) - (1,1) - (0,0)
        let mut g = Graph::new();
        g.add_edge(v(0, 0), v(1, 0));
        g.add_edge(v(1, 0), v(0, 1));
        g.add_edge(v(0, 1), v(1, 1));
        g.add_edge(v(1, 1), v(0, 0));
        g
    }

    #[test]
    fn counts_and_membership() {
        let g = cycle4();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(&v(0, 0), &v(1, 0)));
        assert!(!g.has_edge(&v(0, 0), &v(0, 1)));
        assert_eq!(g.neighbors(&v(0, 0)).len(), 2);
    }

    #[test]
    fn shortest_paths_on_cycle() {
        let g = cycle4();
        let p = g.shortest_path(&v(0, 0), &v(0, 1)).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], v(0, 0));
        assert_eq!(p[2], v(0, 1));
        assert_eq!(g.shortest_path(&v(0, 0), &v(0, 0)).unwrap().len(), 1);
    }

    #[test]
    fn lex_smallest_among_equal_length() {
        // Two shortest paths from (0,0) to (0,1): via (1,0) or via (1,1).
        let g = cycle4();
        let p = g.lex_smallest_shortest_path(&v(0, 0), &v(0, 1)).unwrap();
        // Path set {(0,0),(1,0),(0,1)} < {(0,0),(1,1),(0,1)} since
        // (1,0) < (1,1) and the other elements agree.
        assert_eq!(p, vec![v(0, 0), v(1, 0), v(0, 1)]);
    }

    #[test]
    fn disconnected_behaviour() {
        let mut g = cycle4();
        g.add_vertex(v(2, 0));
        assert_eq!(g.components().len(), 2);
        assert!(!g.is_connected());
        assert!(!g.connected(&v(0, 0), &v(2, 0)));
        assert!(g.shortest_path(&v(0, 0), &v(2, 0)).is_none());
        assert!(g.lex_smallest_shortest_path(&v(0, 0), &v(2, 0)).is_none());
    }

    #[test]
    fn forest_and_cycle_basis() {
        let g = cycle4();
        assert!(!g.is_forest());
        assert_eq!(g.spanning_forest().len(), 3);
        assert_eq!(g.non_tree_edges().len(), 1, "one independent cycle");
        let mut path = Graph::new();
        path.add_edge(v(0, 0), v(1, 0));
        path.add_edge(v(1, 0), v(2, 0));
        assert!(path.is_forest());
        assert!(path.non_tree_edges().is_empty());
    }

    #[test]
    fn complex_roundtrip() {
        let g = cycle4();
        let k = g.to_complex();
        assert_eq!(k.dimension(), Some(1));
        assert_eq!(k.facet_count(), 4);
        let g2 = Graph::from_complex(&k);
        assert_eq!(g2.edges(), g.edges());
    }

    #[test]
    fn diameter() {
        let g = cycle4();
        assert_eq!(g.component_diameter(&v(0, 0)), 2);
    }
}
