//! Chromatic products of complexes (paper, §3).
//!
//! Given two pure chromatic complexes `C` and `T` of the same dimension,
//! their product `C × T` has vertices `(u, v)` with `χ(u) = χ(v)` and
//! simplices `X × Y` for `X ∈ C`, `Y ∈ T` with matching colors. The
//! canonical-task construction (`O* ⊆ I × O`) is built from the
//! simplex-level product provided here.

use crate::complex::Complex;
use crate::simplex::Simplex;
use crate::value::Value;
use crate::vertex::Vertex;

/// The product vertex `(u, v)`: color `χ(u) = χ(v)`, value `Pair(u, v)`.
///
/// # Panics
///
/// Panics if the colors of `u` and `v` differ.
#[must_use]
pub fn product_vertex(u: &Vertex, v: &Vertex) -> Vertex {
    assert_eq!(
        u.color(),
        v.color(),
        "product vertices must share a color: {u} vs {v}"
    );
    Vertex::new(u.color(), Value::pair(u.value().clone(), v.value().clone()))
}

/// The product simplex `X × Y`, pairing vertices by color.
///
/// Returns `None` if `X` and `Y` do not have identical color sets (the
/// product is only defined color-wise, paper §3).
#[must_use]
pub fn product_simplex(x: &Simplex, y: &Simplex) -> Option<Simplex> {
    if x.colors() != y.colors() || !x.is_chromatic() || !y.is_chromatic() {
        return None;
    }
    let verts: Vec<Vertex> = x
        .iter()
        .map(|u| {
            let v = y
                .vertex_of_color(u.color())
                .expect("color sets match, so the partner exists"); // chromata-lint: allow(P1): equal chromatic color sets were checked at entry
            product_vertex(u, v)
        })
        .collect();
    Some(Simplex::new(verts))
}

/// The full chromatic product `C × T`: all `X × Y` over facets `X ∈ C`,
/// `Y ∈ T` with matching color sets, closed under faces.
///
/// # Examples
///
/// ```
/// use chromata_topology::{product, Complex, Simplex, Vertex};
///
/// let c = Complex::from_facets([Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0)])]);
/// let t = Complex::from_facets([
///     Simplex::from_iter([Vertex::of(0, 7), Vertex::of(1, 7)]),
///     Simplex::from_iter([Vertex::of(0, 8), Vertex::of(1, 8)]),
/// ]);
/// let p = product(&c, &t);
/// assert_eq!(p.facet_count(), 2);
/// ```
#[must_use]
pub fn product(c: &Complex, t: &Complex) -> Complex {
    let mut out = Complex::new();
    for x in c.facets() {
        for y in t.facets() {
            if let Some(p) = product_simplex(x, y) {
                out.add_simplex(p);
            }
        }
    }
    out
}

/// Projects a product vertex back to its first (input) component.
///
/// Returns `None` if the vertex value is not a [`Value::Pair`].
#[must_use]
pub fn project_first(v: &Vertex) -> Option<Vertex> {
    let (a, _) = v.value().as_pair()?;
    Some(Vertex::new(v.color(), a.clone()))
}

/// Projects a product vertex back to its second (output) component.
///
/// Returns `None` if the vertex value is not a [`Value::Pair`].
#[must_use]
pub fn project_second(v: &Vertex) -> Option<Vertex> {
    let (_, b) = v.value().as_pair()?;
    Some(Vertex::new(v.color(), b.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: u8, x: i64) -> Vertex {
        Vertex::of(c, x)
    }

    #[test]
    fn product_vertex_pairs_values() {
        let p = product_vertex(&v(1, 3), &v(1, 9));
        assert_eq!(p.color(), crate::color::Color::new(1));
        let (a, b) = p.value().as_pair().unwrap();
        assert_eq!(a.as_int(), Some(3));
        assert_eq!(b.as_int(), Some(9));
        assert_eq!(project_first(&p), Some(v(1, 3)));
        assert_eq!(project_second(&p), Some(v(1, 9)));
    }

    #[test]
    #[should_panic(expected = "must share a color")]
    fn product_vertex_color_mismatch_panics() {
        let _ = product_vertex(&v(0, 0), &v(1, 0));
    }

    #[test]
    fn product_simplex_matches_by_color() {
        let x = Simplex::from_iter([v(0, 1), v(1, 2), v(2, 3)]);
        let y = Simplex::from_iter([v(0, 10), v(1, 20), v(2, 30)]);
        let p = product_simplex(&x, &y).unwrap();
        assert_eq!(p.dimension(), 2);
        for u in &p {
            let (a, b) = u.value().as_pair().unwrap();
            assert_eq!(b.as_int(), a.as_int().map(|i| i * 10));
        }
    }

    #[test]
    fn product_simplex_rejects_color_mismatch() {
        let x = Simplex::from_iter([v(0, 1), v(1, 2)]);
        let y = Simplex::from_iter([v(0, 1), v(2, 2)]);
        assert!(product_simplex(&x, &y).is_none());
    }

    #[test]
    fn product_complex_counts() {
        // Two input edges × two output edges on colors {0,1} = 4 facets.
        let c = Complex::from_facets([
            Simplex::from_iter([v(0, 0), v(1, 0)]),
            Simplex::from_iter([v(0, 1), v(1, 1)]),
        ]);
        let t = Complex::from_facets([
            Simplex::from_iter([v(0, 7), v(1, 7)]),
            Simplex::from_iter([v(0, 8), v(1, 8)]),
        ]);
        let p = product(&c, &t);
        assert_eq!(p.facet_count(), 4);
        assert!(p.is_chromatic());
        assert!(p.is_pure());
    }

    #[test]
    fn projection_of_non_pair_is_none() {
        assert!(project_first(&v(0, 0)).is_none());
        assert!(project_second(&v(0, 0)).is_none());
    }
}
