//! Carrier maps: monotone simplex-to-subcomplex maps.
//!
//! A *carrier map* `Δ : K → 2^{K'}` assigns to every simplex of `K` a pure
//! subcomplex of `K'` of the same dimension, monotonically (`σ' ⊆ σ` implies
//! `Δ(σ') ⊆ Δ(σ)`), and — in the chromatic setting — with matching color
//! sets (paper, §2.2–2.3). Task specifications are carrier maps, and so are
//! the carriers of protocol complexes.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::complex::Complex;
use crate::simplex::Simplex;
use crate::vertex::Vertex;

/// Why a [`CarrierMap`] fails validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CarrierViolation {
    /// A simplex of the domain complex has no image assigned.
    MissingSimplex(Simplex),
    /// `Δ(σ)` is empty for a domain simplex `σ`.
    EmptyImage(Simplex),
    /// `Δ(σ)` is not pure of dimension `dim σ`.
    NotPureSameDimension(Simplex),
    /// Some facet of `Δ(σ)` does not have the same color set as `σ`.
    ColorMismatch(Simplex),
    /// Monotonicity fails: `Δ(σ') ⊄ Δ(σ)` for `σ' ⊆ σ`.
    NotMonotonic {
        /// The face `σ'` whose image escapes.
        smaller: Simplex,
        /// The simplex `σ ⊇ σ'`.
        larger: Simplex,
    },
}

impl fmt::Display for CarrierViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CarrierViolation::MissingSimplex(s) => write!(f, "no image assigned for {s}"),
            CarrierViolation::EmptyImage(s) => write!(f, "image of {s} is empty"),
            CarrierViolation::NotPureSameDimension(s) => {
                write!(f, "image of {s} is not pure of dimension {}", s.dimension())
            }
            CarrierViolation::ColorMismatch(s) => {
                write!(f, "image of {s} has facets with mismatched colors")
            }
            CarrierViolation::NotMonotonic { smaller, larger } => {
                write!(f, "Δ({smaller}) is not a subcomplex of Δ({larger})")
            }
        }
    }
}

impl std::error::Error for CarrierViolation {}

/// A carrier map, stored as an explicit table from domain simplices to
/// shared image subcomplexes.
///
/// Image subcomplexes are reference-counted ([`Arc`]) so that carrier maps
/// produced by memoized subdivision can share one image complex across many
/// domain simplices (and across maps) without deep copies.
///
/// # Examples
///
/// ```
/// use chromata_topology::{CarrierMap, Complex, Simplex, Vertex};
///
/// // One-process "task": the vertex P0:0 may output P0:10.
/// let sigma = Simplex::vertex(Vertex::of(0, 0));
/// let out = Complex::from_facets([Simplex::vertex(Vertex::of(0, 10))]);
/// let mut delta = CarrierMap::new();
/// delta.insert(sigma.clone(), out.clone());
/// let input = Complex::from_facets([sigma.clone()]);
/// assert!(delta.validate_chromatic(&input).is_ok());
/// assert_eq!(delta.get(&sigma), Some(&out));
/// ```
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct CarrierMap {
    map: BTreeMap<Simplex, Arc<Complex>>,
}

impl CarrierMap {
    /// Creates an empty carrier map.
    #[must_use]
    pub fn new() -> Self {
        CarrierMap::default()
    }

    /// Builds a carrier map over all simplices of `domain` from a function
    /// returning, for each simplex, the *facets* of its image subcomplex.
    pub fn from_fn<F>(domain: &Complex, mut image_facets: F) -> Self
    where
        F: FnMut(&Simplex) -> Vec<Simplex>,
    {
        let mut cm = CarrierMap::new();
        for s in domain.simplices() {
            cm.insert(s.clone(), Complex::from_facets(image_facets(s)));
        }
        cm
    }

    /// Sets the image subcomplex of `s`, returning the previous image if
    /// any.
    pub fn insert(&mut self, s: Simplex, image: Complex) -> Option<Complex> {
        self.map
            .insert(s, Arc::new(image))
            .map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
    }

    /// Sets the image subcomplex of `s` from a shared handle, avoiding a
    /// deep copy when the image is reused across simplices or maps.
    pub fn insert_shared(&mut self, s: Simplex, image: Arc<Complex>) -> Option<Arc<Complex>> {
        self.map.insert(s, image)
    }

    /// The image subcomplex of `s`, if assigned.
    #[must_use]
    pub fn get(&self, s: &Simplex) -> Option<&Complex> {
        self.map.get(s).map(Arc::as_ref)
    }

    /// The shared handle to the image subcomplex of `s`, if assigned.
    #[must_use]
    pub fn get_shared(&self, s: &Simplex) -> Option<&Arc<Complex>> {
        self.map.get(s)
    }

    /// The image subcomplex of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has no assigned image; use [`CarrierMap::get`] for a
    /// fallible lookup.
    #[must_use]
    pub fn image_of(&self, s: &Simplex) -> &Complex {
        self.get(s)
            .unwrap_or_else(|| panic!("carrier map has no image for {s}")) // chromata-lint: allow(P1): totality on the domain is validated at construction; documented under # Panics
    }

    /// Iterator over `(simplex, image)` pairs, in simplex order.
    pub fn iter(&self) -> impl Iterator<Item = (&Simplex, &Complex)> + Clone {
        self.map.iter().map(|(s, k)| (s, k.as_ref()))
    }

    /// The domain simplices with assigned images.
    pub fn domain(&self) -> impl Iterator<Item = &Simplex> + Clone {
        self.map.keys()
    }

    /// The union of all image subcomplexes — the reachable part of the
    /// codomain (the paper assumes `O = ⋃_σ Δ(σ)`, §4).
    #[must_use]
    pub fn full_image(&self) -> Complex {
        let mut out = Complex::new();
        for k in self.map.values() {
            for s in k.facets() {
                out.add_simplex(s.clone());
            }
        }
        out
    }

    /// Whether `f(σ) ∈ Δ(σ)` would hold for `σ`'s image `t`: `t` is a
    /// simplex of the image subcomplex of `s`.
    #[must_use]
    pub fn carries(&self, s: &Simplex, t: &Simplex) -> bool {
        self.get(s).is_some_and(|k| k.contains(t))
    }

    /// Validates the carrier map against a *chromatic* domain: totality on
    /// all simplices of `domain`, non-emptiness, purity with matching
    /// dimension, color-set agreement of every image facet, and
    /// monotonicity.
    ///
    /// # Errors
    ///
    /// Returns the list of violations if validation fails.
    pub fn validate_chromatic(&self, domain: &Complex) -> Result<(), Vec<CarrierViolation>> {
        let mut errs = Vec::new();
        for s in domain.simplices() {
            let Some(img) = self.get(s) else {
                errs.push(CarrierViolation::MissingSimplex(s.clone()));
                continue;
            };
            if img.is_empty() {
                errs.push(CarrierViolation::EmptyImage(s.clone()));
                continue;
            }
            if !img.is_pure() || img.dimension() != Some(s.dimension()) {
                errs.push(CarrierViolation::NotPureSameDimension(s.clone()));
            }
            if img.facets().any(|t| t.colors() != s.colors()) {
                errs.push(CarrierViolation::ColorMismatch(s.clone()));
            }
        }
        // Monotonicity: it suffices to compare each simplex with its
        // codimension-1 faces.
        for s in domain.simplices() {
            let Some(img) = self.get(s) else { continue };
            for f in s.boundary_faces() {
                if let Some(fi) = self.get(&f) {
                    if !fi.is_subcomplex_of(img) {
                        errs.push(CarrierViolation::NotMonotonic {
                            smaller: f.clone(),
                            larger: s.clone(),
                        });
                    }
                }
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Composition with a second carrier map: `(Φ ∘ Δ)(σ)` is generated by
    /// `Φ(τ)` over all facets `τ` of `Δ(σ)`. Used to compose subdivision
    /// carriers (`Ch^{r+1} = Ch ∘ Ch^r`).
    ///
    /// Only the *facets* of each image are consulted: when `Φ` is monotone
    /// (every carrier map is), `Φ(τ') ⊆ Φ(τ)` for faces `τ' ⊆ τ`, so the
    /// union over facets already covers all simplices. For a facet missing
    /// from `Φ`, its proper faces are consulted as a fallback so that
    /// partially-defined maps still compose like before.
    #[must_use]
    pub fn then(&self, next: &CarrierMap) -> CarrierMap {
        let mut out = CarrierMap::new();
        for (s, img) in &self.map {
            let mut acc = Complex::new();
            for t in img.facets() {
                if let Some(k) = next.get(t) {
                    for facet in k.facets() {
                        acc.add_simplex(facet.clone());
                    }
                } else {
                    for f in t.proper_faces() {
                        if let Some(k) = next.get(&f) {
                            for facet in k.facets() {
                                acc.add_simplex(facet.clone());
                            }
                        }
                    }
                }
            }
            out.insert(s.clone(), acc);
        }
        out
    }

    /// Restriction of the carrier map to the simplices of `sub`.
    #[must_use]
    pub fn restricted_to(&self, sub: &Complex) -> CarrierMap {
        CarrierMap {
            map: self
                .map
                .iter()
                .filter(|(s, _)| sub.contains(s))
                .map(|(s, k)| (s.clone(), Arc::clone(k)))
                .collect(),
        }
    }

    /// The *carrier* of a vertex value under this map when used as a
    /// protocol-complex carrier: the unique minimal domain simplex whose
    /// image contains `v`, if one exists.
    #[must_use]
    pub fn minimal_carrier_of_vertex(&self, v: &Vertex) -> Option<&Simplex> {
        let vs = Simplex::vertex(v.clone());
        self.map
            .iter()
            .filter(|(_, img)| img.contains(&vs))
            .map(|(s, _)| s)
            .min_by_key(|s| (s.dimension(), (*s).clone()))
    }

    /// Number of domain simplices with assigned images.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no images are assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Hash for CarrierMap {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.map.len());
        for (s, k) in &self.map {
            s.hash(state);
            k.hash(state);
        }
    }
}

impl FromIterator<(Simplex, Complex)> for CarrierMap {
    fn from_iter<I: IntoIterator<Item = (Simplex, Complex)>>(iter: I) -> Self {
        CarrierMap {
            map: iter.into_iter().map(|(s, k)| (s, Arc::new(k))).collect(),
        }
    }
}

impl fmt::Display for CarrierMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CarrierMap({} simplices)", self.map.len())?;
        for (s, k) in &self.map {
            writeln!(f, "  {s} ↦ {} facets", k.facet_count())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: u8, x: i64) -> Vertex {
        Vertex::of(c, x)
    }

    /// Binary consensus for 2 processes, as a carrier map.
    fn consensus2() -> (Complex, CarrierMap) {
        let mut input = Complex::new();
        for a in 0..2 {
            for b in 0..2 {
                input.add_simplex(Simplex::from_iter([v(0, a), v(1, b)]));
            }
        }
        let delta = CarrierMap::from_fn(&input, |s| {
            let vals: Vec<i64> = s.iter().map(|u| u.value().as_int().unwrap()).collect();
            let mut out = Vec::new();
            for d in [0i64, 1] {
                if vals.contains(&d) {
                    out.push(Simplex::from_iter(
                        s.iter().map(|u| u.with_value(crate::value::Value::Int(d))),
                    ));
                }
            }
            out
        });
        (input, delta)
    }

    #[test]
    fn consensus_carrier_is_valid() {
        let (input, delta) = consensus2();
        delta.validate_chromatic(&input).expect("valid carrier map");
        // Mixed-input edge allows both decisions.
        let mixed = Simplex::from_iter([v(0, 0), v(1, 1)]);
        assert_eq!(delta.image_of(&mixed).facet_count(), 2);
        // Solo vertex allows only its own value.
        let solo = Simplex::vertex(v(0, 1));
        assert_eq!(delta.image_of(&solo).facet_count(), 1);
        assert!(delta.carries(&mixed, &Simplex::from_iter([v(0, 0), v(1, 0)])));
        assert!(!delta.carries(&mixed, &Simplex::from_iter([v(0, 0), v(1, 1)])));
    }

    #[test]
    fn missing_and_empty_images_detected() {
        let (input, mut delta) = consensus2();
        let solo = Simplex::vertex(v(0, 1));
        delta.insert(solo.clone(), Complex::new());
        let errs = delta.validate_chromatic(&input).unwrap_err();
        assert!(errs.contains(&CarrierViolation::EmptyImage(solo.clone())));
        let mut partial = CarrierMap::new();
        partial.insert(solo.clone(), Complex::from_facets([solo.clone()]));
        let errs = partial.validate_chromatic(&input).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CarrierViolation::MissingSimplex(_))));
    }

    #[test]
    fn monotonicity_violation_detected() {
        let (input, mut delta) = consensus2();
        // Break monotonicity: P0 solo with input 0 "decides 7", which no
        // edge image contains.
        let solo = Simplex::vertex(v(0, 0));
        delta.insert(solo, Complex::from_facets([Simplex::vertex(v(0, 7))]));
        let errs = delta.validate_chromatic(&input).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CarrierViolation::NotMonotonic { .. })));
    }

    #[test]
    fn color_mismatch_detected() {
        let input = Complex::from_facets([Simplex::vertex(v(0, 0))]);
        let mut delta = CarrierMap::new();
        delta.insert(
            Simplex::vertex(v(0, 0)),
            Complex::from_facets([Simplex::vertex(v(1, 0))]),
        );
        let errs = delta.validate_chromatic(&input).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CarrierViolation::ColorMismatch(_))));
    }

    #[test]
    fn full_image_and_restriction() {
        let (_input, delta) = consensus2();
        let img = delta.full_image();
        assert_eq!(img.vertex_count(), 4, "P0/P1 × values 0/1");
        let sub = Complex::from_facets([Simplex::vertex(v(0, 0))]);
        let r = delta.restricted_to(&sub);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn minimal_carrier_of_vertex() {
        let (_, delta) = consensus2();
        let c = delta.minimal_carrier_of_vertex(&v(0, 1)).unwrap();
        assert_eq!(c, &Simplex::vertex(v(0, 1)));
        assert!(delta.minimal_carrier_of_vertex(&v(0, 9)).is_none());
    }

    #[test]
    fn composition_of_carriers() {
        // Δ: vertex ↦ vertex; Φ: that vertex ↦ another; composite reaches it.
        let a = Simplex::vertex(v(0, 0));
        let b = Simplex::vertex(v(0, 1));
        let c = Simplex::vertex(v(0, 2));
        let d1: CarrierMap = [(a.clone(), Complex::from_facets([b.clone()]))]
            .into_iter()
            .collect();
        let d2: CarrierMap = [(b.clone(), Complex::from_facets([c.clone()]))]
            .into_iter()
            .collect();
        let comp = d1.then(&d2);
        assert!(comp.carries(&a, &c));
    }

    #[test]
    fn shared_images_are_not_deep_copied() {
        let s0 = Simplex::vertex(v(0, 0));
        let s1 = Simplex::vertex(v(0, 1));
        let img = Arc::new(Complex::from_facets([Simplex::vertex(v(0, 9))]));
        let mut cm = CarrierMap::new();
        cm.insert_shared(s0.clone(), Arc::clone(&img));
        cm.insert_shared(s1.clone(), Arc::clone(&img));
        assert!(std::ptr::eq(
            cm.get(&s0).unwrap() as *const Complex,
            cm.get(&s1).unwrap() as *const Complex
        ));
        assert_eq!(cm.get_shared(&s0).map(Arc::as_ref), Some(img.as_ref()));
    }
}
