//! Property-based tests for the chromatic-complex substrate.

use proptest::prelude::*;

use chromata_topology::{Complex, Graph, Simplex, Vertex};

/// Strategy: a random chromatic 2-complex over a bounded vertex pool,
/// given as triangles (color i gets value vals[i]).
fn triangles_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..5, 0i64..5, 0i64..5), 1..12)
}

fn build(triples: &[(i64, i64, i64)]) -> Complex {
    Complex::from_facets(triples.iter().map(|(a, b, c)| {
        Simplex::from_iter([Vertex::of(0, *a), Vertex::of(1, *b), Vertex::of(2, *c)])
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn complexes_are_face_closed(triples in triangles_strategy()) {
        let k = build(&triples);
        for s in k.simplices() {
            for f in s.proper_faces() {
                prop_assert!(k.contains(&f), "face {} of {} missing", f, s);
            }
        }
    }

    #[test]
    fn facets_are_maximal_and_cover(triples in triangles_strategy()) {
        let k = build(&triples);
        for m in k.facets() {
            prop_assert!(
                !k.simplices().any(|s| m != s && m.is_face_of(s)),
                "facet {} is not maximal", m
            );
        }
        for s in k.simplices() {
            prop_assert!(
                k.facets().any(|m| s.is_face_of(m)),
                "simplex {} not under any facet", s
            );
        }
    }

    #[test]
    fn link_characterization(triples in triangles_strategy()) {
        let k = build(&triples);
        for v in k.vertices() {
            let lk = k.link(v);
            // σ ∈ lk(v) ⟺ v ∉ σ and σ ∪ {v} ∈ K.
            for s in lk.simplices() {
                prop_assert!(!s.contains(v));
                let mut verts: Vec<Vertex> = s.vertices().to_vec();
                verts.push(v.clone());
                prop_assert!(k.contains(&Simplex::new(verts)));
            }
            // And conversely for the edges through v.
            for e in k.simplices_of_dim(1) {
                if let Some(w) = e.without_vertex(v) {
                    prop_assert!(lk.contains(&w));
                }
            }
        }
    }

    #[test]
    fn components_partition_vertices(triples in triangles_strategy()) {
        let k = build(&triples);
        let comps = k.connected_components();
        let total: usize = comps.iter().map(std::collections::BTreeSet::len).sum();
        prop_assert_eq!(total, k.vertex_count());
        // Pairwise disjoint.
        for (i, a) in comps.iter().enumerate() {
            for b in &comps[i + 1..] {
                prop_assert!(a.intersection(b).next().is_none());
            }
        }
    }

    #[test]
    fn euler_characteristic_consistency(triples in triangles_strategy()) {
        let k = build(&triples);
        let v = k.vertex_count() as i64;
        let e = k.simplices_of_dim(1).count() as i64;
        let f = k.simplices_of_dim(2).count() as i64;
        prop_assert_eq!(k.euler_characteristic(), v - e + f);
    }

    #[test]
    fn skeleton_is_monotone(triples in triangles_strategy()) {
        let k = build(&triples);
        let s1 = k.skeleton(1);
        let s0 = k.skeleton(0);
        prop_assert!(s0.is_subcomplex_of(&s1));
        prop_assert!(s1.is_subcomplex_of(&k));
        prop_assert_eq!(s1.vertex_count(), k.vertex_count());
    }

    #[test]
    fn union_and_intersection_laws(
        a in triangles_strategy(),
        b in triangles_strategy(),
    ) {
        let ka = build(&a);
        let kb = build(&b);
        let u = ka.union(&kb);
        let i = ka.intersection(&kb);
        prop_assert!(ka.is_subcomplex_of(&u));
        prop_assert!(kb.is_subcomplex_of(&u));
        prop_assert!(i.is_subcomplex_of(&ka));
        prop_assert!(i.is_subcomplex_of(&kb));
        // Inclusion–exclusion on simplex counts.
        prop_assert_eq!(
            u.simplices().count() + i.simplices().count(),
            ka.simplices().count() + kb.simplices().count()
        );
    }

    #[test]
    fn graph_paths_are_real_paths(triples in triangles_strategy()) {
        let k = build(&triples);
        let g = Graph::from_complex(&k);
        let verts: Vec<Vertex> = k.vertices().cloned().collect();
        for a in verts.iter().take(4) {
            for b in verts.iter().take(4) {
                if let Some(p) = g.shortest_path(a, b) {
                    prop_assert_eq!(p.first(), Some(a));
                    prop_assert_eq!(p.last(), Some(b));
                    for w in p.windows(2) {
                        prop_assert!(g.has_edge(&w[0], &w[1]));
                    }
                    // Lex-smallest shortest path has the same length.
                    let lex = g.lex_smallest_shortest_path(a, b).expect("connected");
                    prop_assert_eq!(lex.len(), p.len());
                } else {
                    prop_assert!(!g.connected(a, b) || a == b);
                }
            }
        }
    }

    #[test]
    fn spanning_forest_spans(triples in triangles_strategy()) {
        let k = build(&triples);
        let g = Graph::from_complex(&k);
        let forest = g.spanning_forest();
        prop_assert_eq!(
            forest.len() + g.components().len(),
            g.vertex_count()
        );
        prop_assert_eq!(
            g.non_tree_edges().len(),
            g.edge_count() - forest.len()
        );
    }

    #[test]
    fn serde_roundtrip_preserves_complexes(triples in triangles_strategy()) {
        let k = build(&triples);
        let json = serde_json::to_string(&k).expect("serialize");
        let back: Complex = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, k);
    }
}
