//! Minimal signal watching for the serving daemon, with no external
//! dependencies.
//!
//! The workspace vendors no libc, and every other crate forbids
//! `unsafe`; this crate is the one sanctioned home for the few raw
//! Linux syscalls needed to turn `SIGTERM`/`SIGINT` into a *graceful*
//! shutdown (persist caches, drain in-flight requests) instead of the
//! default process kill.
//!
//! The design avoids asynchronous signal handlers entirely — no
//! `sigaction`, no restorer trampolines, nothing async-signal-unsafe:
//!
//! 1. [`block_termination`] masks `SIGTERM` and `SIGINT` on the calling
//!    thread *before* any other thread is spawned, so every later
//!    thread inherits the mask and the process default action can never
//!    fire;
//! 2. [`watch_termination`] spawns a watcher thread that loops in
//!    `rt_sigtimedwait` with a short timeout, and invokes the callback
//!    synchronously — ordinary Rust code on an ordinary thread — when a
//!    termination signal is dequeued.
//!
//! On non-Linux (or non-x86_64/aarch64) targets the functions degrade
//! to no-ops that report themselves unsupported; callers keep their
//! pre-existing behavior (abrupt kill, bounded by the persist cadence).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;
use std::thread;

/// `SIGINT` — interactive interrupt (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` — polite termination request (`kill`, service managers).
pub const SIGTERM: i32 = 15;

/// Kernel sigset bit for a signal number (1-based).
const fn sig_bit(sig: i32) -> u64 {
    1u64 << (sig - 1)
}

/// The mask this crate manages: termination requests only.
const TERMINATION_MASK: u64 = sig_bit(SIGTERM) | sig_bit(SIGINT);

/// How long each `rt_sigtimedwait` slice waits before re-checking the
/// watcher's stop flag.
const POLL_MS: u64 = 200;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! Raw Linux syscalls via stable inline assembly. Every wrapper is
    //! a thin, argument-checked veneer over one syscall; the kernel
    //! sigset is a plain `u64` passed with `sigsetsize = 8`.

    use std::arch::asm;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const RT_SIGPROCMASK: usize = 14;
        pub const GETPID: usize = 39;
        pub const RT_SIGTIMEDWAIT: usize = 128;
        pub const GETTID: usize = 186;
        pub const TGKILL: usize = 234;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const TGKILL: usize = 131;
        pub const RT_SIGPROCMASK: usize = 135;
        pub const RT_SIGTIMEDWAIT: usize = 137;
        pub const GETPID: usize = 172;
        pub const GETTID: usize = 178;
    }

    /// `struct timespec` as the kernel expects it on 64-bit targets.
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        // SAFETY: the caller passes kernel-ABI-valid arguments for
        // syscall `n`; rcx/r11 are clobbered by the `syscall`
        // instruction and declared as such.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        // SAFETY: the caller passes kernel-ABI-valid arguments for
        // syscall `n`.
        unsafe {
            asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                options(nostack),
            );
        }
        ret
    }

    /// Blocks `mask` on the calling thread (`SIG_BLOCK = 0`). Returns
    /// whether the kernel accepted the mask change.
    pub fn block(mask: u64) -> bool {
        let set = mask;
        // SAFETY: `set` outlives the call; the old-set pointer is NULL
        // (allowed); sigsetsize is 8, the kernel sigset size on these
        // targets.
        let ret = unsafe {
            syscall4(
                nr::RT_SIGPROCMASK,
                0, // SIG_BLOCK
                std::ptr::addr_of!(set) as usize,
                0,
                8,
            )
        };
        ret == 0
    }

    /// Waits up to `timeout_ms` for one signal of `mask` to become
    /// pending on the calling thread; returns the dequeued signal
    /// number, or `None` on timeout/interruption.
    pub fn wait_one(mask: u64, timeout_ms: u64) -> Option<i32> {
        let set = mask;
        let ts = Timespec {
            sec: (timeout_ms / 1_000) as i64,
            nsec: ((timeout_ms % 1_000) * 1_000_000) as i64,
        };
        // SAFETY: `set` and `ts` outlive the call; the siginfo pointer
        // is NULL (allowed — we only need the signal number);
        // sigsetsize is 8.
        let ret = unsafe {
            syscall4(
                nr::RT_SIGTIMEDWAIT,
                std::ptr::addr_of!(set) as usize,
                0,
                std::ptr::addr_of!(ts) as usize,
                8,
            )
        };
        if ret > 0 {
            Some(ret as i32)
        } else {
            None // EAGAIN (timeout) or EINTR
        }
    }

    /// The calling thread's kernel TID.
    pub fn gettid() -> i32 {
        // SAFETY: gettid takes no arguments and cannot fail.
        (unsafe { syscall4(nr::GETTID, 0, 0, 0, 0) }) as i32
    }

    /// The process's PID.
    pub fn getpid() -> i32 {
        // SAFETY: getpid takes no arguments and cannot fail.
        (unsafe { syscall4(nr::GETPID, 0, 0, 0, 0) }) as i32
    }

    /// Directs `sig` at one specific thread of one specific process.
    pub fn tgkill(pid: i32, tid: i32, sig: i32) -> bool {
        // SAFETY: tgkill takes three integer arguments; an invalid
        // pid/tid yields an error return, not UB.
        let ret = unsafe { syscall4(nr::TGKILL, pid as usize, tid as usize, sig as usize, 0) };
        ret == 0
    }

    pub const SUPPORTED: bool = true;
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! Unsupported-target stubs: signal watching degrades to a no-op.

    pub fn block(_mask: u64) -> bool {
        false
    }

    pub fn wait_one(_mask: u64, _timeout_ms: u64) -> Option<i32> {
        None
    }

    pub fn gettid() -> i32 {
        0
    }

    pub fn getpid() -> i32 {
        0
    }

    pub fn tgkill(_pid: i32, _tid: i32, _sig: i32) -> bool {
        false
    }

    pub const SUPPORTED: bool = false;
}

/// Whether this target supports signal watching at all.
#[must_use]
pub fn supported() -> bool {
    sys::SUPPORTED
}

/// Blocks `SIGTERM` and `SIGINT` on the calling thread. Call on the
/// main thread *before spawning any other thread* — spawned threads
/// inherit the mask, which is what keeps the default kill action from
/// firing anywhere in the process. Returns `false` (and changes
/// nothing) on unsupported targets.
#[must_use]
pub fn block_termination() -> bool {
    sys::block(TERMINATION_MASK)
}

/// A running signal watcher (see [`watch_termination`]). Dropping the
/// handle leaves the watcher running for the life of the process;
/// [`stop`](SignalWatch::stop) shuts it down cooperatively.
pub struct SignalWatch {
    stop: Arc<AtomicBool>,
    tid: Arc<AtomicI32>,
    thread: Option<thread::JoinHandle<()>>,
}

impl SignalWatch {
    /// Asks the watcher thread to exit and joins it (bounded by one
    /// poll slice).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.thread.take() {
            drop(handle.join());
        }
    }

    /// Delivers `sig` directly to the watcher thread (test hook).
    ///
    /// Inside a test harness a *process-directed* signal is unsafe —
    /// harness threads spawned before [`block_termination`] keep the
    /// signal unblocked, so the default action would kill the whole
    /// run. A *thread-directed* signal at the watcher is dequeued by
    /// its `rt_sigtimedwait` exactly like a process-directed one in
    /// production. Returns `false` if the watcher's TID is not yet
    /// known or the target is unsupported.
    #[must_use]
    pub fn deliver(&self, sig: i32) -> bool {
        let tid = self.tid.load(Ordering::Acquire);
        if tid <= 0 {
            return false;
        }
        sys::tgkill(sys::getpid(), tid, sig)
    }
}

/// Spawns a watcher thread that waits (in `rt_sigtimedwait` slices) for
/// a blocked `SIGTERM`/`SIGINT` and invokes `on_signal` with the signal
/// number each time one arrives. The callback runs on the watcher
/// thread as ordinary code — no async-signal-safety constraints.
///
/// The caller must have called [`block_termination`] first (on the
/// main thread, before spawning); the watcher additionally blocks the
/// mask on itself so it works even if threads predate the mask.
/// Returns `None` on unsupported targets.
pub fn watch_termination<F>(on_signal: F) -> Option<SignalWatch>
where
    F: Fn(i32) + Send + 'static,
{
    if !sys::SUPPORTED {
        return None;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let tid = Arc::new(AtomicI32::new(0));
    let stop_flag = Arc::clone(&stop);
    let tid_slot = Arc::clone(&tid);
    let thread = thread::Builder::new()
        .name("chromata-signal".to_owned())
        .spawn(move || {
            // Belt and braces: the watcher blocks the mask on itself so
            // sigtimedwait (which waits on *blocked* signals) always
            // applies, and publishes its TID for directed delivery.
            let _ = sys::block(TERMINATION_MASK);
            tid_slot.store(sys::gettid(), Ordering::Release);
            while !stop_flag.load(Ordering::Acquire) {
                if let Some(sig) = sys::wait_one(TERMINATION_MASK, POLL_MS) {
                    on_signal(sig);
                }
            }
        })
        .ok()?;
    Some(SignalWatch {
        stop,
        tid,
        thread: Some(thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn watcher_receives_a_thread_directed_sigterm() {
        if !supported() {
            return;
        }
        let (tx, rx) = mpsc::channel();
        let watch = watch_termination(move |sig| {
            let _ = tx.send(sig);
        })
        .expect("watcher spawns on supported targets");
        // Wait for the watcher to publish its TID.
        let mut delivered = false;
        for _ in 0..100 {
            if watch.deliver(SIGTERM) {
                delivered = true;
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(delivered, "watcher TID must become deliverable");
        let sig = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("signal must reach the callback");
        assert_eq!(sig, SIGTERM);
        watch.stop();
    }

    #[test]
    fn stop_joins_the_watcher_without_a_signal() {
        if !supported() {
            return;
        }
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        let watch = watch_termination(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        })
        .expect("watcher spawns");
        watch.stop();
        assert_eq!(fired.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn mask_bits_are_the_kernel_layout() {
        assert_eq!(sig_bit(SIGTERM), 1 << 14);
        assert_eq!(sig_bit(SIGINT), 1 << 1);
        assert_eq!(TERMINATION_MASK, (1 << 14) | (1 << 1));
    }
}
