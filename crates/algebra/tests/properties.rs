//! Property-based tests for the integer-algebra substrate.

use proptest::prelude::*;

use chromata_algebra::{
    concat, cyclic_reduce, exponent_vector, free_reduce, invert, is_feasible, smith_normal_form,
    solve_integer, IntMatrix, Presentation,
};

fn small_matrix() -> impl Strategy<Value = IntMatrix> {
    (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-6i64..7, r * c)
            .prop_map(move |data| IntMatrix::from_rows(r, c, data))
    })
}

fn word() -> impl Strategy<Value = Vec<i32>> {
    proptest::collection::vec(prop_oneof![1i32..4, (-3i32..0)], 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn smith_decomposition_holds(a in small_matrix()) {
        let s = smith_normal_form(&a);
        prop_assert_eq!(s.u.mul(&a).mul(&s.v), s.d.clone());
        // Diagonal with a divisibility chain.
        for r in 0..s.d.rows() {
            for c in 0..s.d.cols() {
                if r != c {
                    prop_assert_eq!(s.d.get(r, c), 0);
                }
            }
        }
        let f = s.invariant_factors();
        for w in f.windows(2) {
            prop_assert_eq!(w[1] % w[0], 0);
        }
    }

    #[test]
    fn solver_solutions_check_out(a in small_matrix(), x in proptest::collection::vec(-4i64..5, 4)) {
        // Build a guaranteed-feasible system: b := A·x0.
        let x0 = &x[..a.cols().min(x.len())];
        if x0.len() < a.cols() { return Ok(()); }
        let b = a.mul_vec(x0);
        let sol = solve_integer(&a, &b);
        prop_assert!(sol.is_some(), "constructed system must be feasible");
        prop_assert_eq!(a.mul_vec(&sol.unwrap()), b);
    }

    #[test]
    fn infeasibility_is_certified_by_scaling(a in small_matrix()) {
        // 2A·x = b with odd entries in b outside the even lattice of the
        // doubled matrix whenever b itself is not reachable — we test the
        // contrapositive: everything solve_integer returns must verify.
        let doubled = {
            let mut m = IntMatrix::zeros(a.rows(), a.cols());
            for r in 0..a.rows() {
                for c in 0..a.cols() {
                    m.set(r, c, 2 * a.get(r, c));
                }
            }
            m
        };
        let b = vec![1i64; a.rows()];
        if let Some(x) = solve_integer(&doubled, &b) {
            prop_assert_eq!(doubled.mul_vec(&x), b);
        } else {
            prop_assert!(!is_feasible(&doubled, &b));
        }
    }

    #[test]
    fn free_reduction_is_idempotent_and_shortening(w in word()) {
        let r = free_reduce(&w);
        prop_assert!(r.len() <= w.len());
        prop_assert_eq!(free_reduce(&r), r.clone());
        // No adjacent inverse pair survives.
        for pair in r.windows(2) {
            prop_assert_ne!(pair[0], -pair[1]);
        }
    }

    #[test]
    fn inverse_concat_cancels(w in word()) {
        prop_assert!(concat(&w, &invert(&w)).is_empty());
        prop_assert!(concat(&invert(&w), &w).is_empty());
    }

    #[test]
    fn cyclic_reduction_within_conjugacy(w in word()) {
        let c = cyclic_reduce(&w);
        prop_assert!(c.len() <= free_reduce(&w).len());
        if !c.is_empty() {
            prop_assert_ne!(c[0], -c[c.len() - 1]);
        }
        // Exponent vectors are conjugacy invariants.
        prop_assert_eq!(exponent_vector(&c, 3), exponent_vector(&free_reduce(&w), 3));
    }

    #[test]
    fn tietze_preserves_abelianization_rank(
        relators in proptest::collection::vec(word(), 0..4)
    ) {
        let p = Presentation::new(3, relators);
        let q = p.simplified();
        // The abelianization G^ab = Z^gens / relator lattice is an
        // isomorphism invariant; compare via Smith invariant factors of
        // the relator matrices (padded ranks).
        let inv = |pres: &Presentation| {
            let m = pres.relator_matrix();
            let s = smith_normal_form(&m);
            let rank_free = pres.generator_count() - s.rank();
            (rank_free, s.torsion())
        };
        prop_assert_eq!(inv(&p), inv(&q));
    }
}
