//! Finite group presentations and Tietze simplification.
//!
//! The edge-path fundamental groups of the output complexes (paper, §5) are
//! handed to this module as presentations `⟨ g₁ … gₙ | r₁ … rₘ ⟩`. Tietze
//! moves shrink them enough to *recognize* the decidable regimes: trivial
//! groups, free groups, and evidently-abelian groups.
//!
//! chromata-lint: allow(P3): generator/relator indices are bounded by the presentation tables built in the same pass; every site is advisory-flagged by P2 for per-site review

use crate::matrix::IntMatrix;
use crate::word::{
    cyclic_reduce, delete_generator, exponent_vector, free_reduce, invert, substitute, Word,
};

/// A finite presentation of a group.
///
/// # Examples
///
/// ```
/// use chromata_algebra::Presentation;
///
/// // ⟨ a | a² ⟩ = Z/2.
/// let p = Presentation::new(1, vec![vec![1, 1]]);
/// assert!(!p.simplified().is_trivial_group());
/// // ⟨ a | a ⟩ = 1.
/// let q = Presentation::new(1, vec![vec![1]]);
/// assert!(q.simplified().is_trivial_group());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Presentation {
    generators: usize,
    relators: Vec<Word>,
}

impl Presentation {
    /// Creates a presentation with `generators` generators and the given
    /// relators (freely and cyclically reduced on construction).
    #[must_use]
    pub fn new(generators: usize, relators: Vec<Word>) -> Self {
        let mut p = Presentation {
            generators,
            relators,
        };
        p.cleanup();
        p
    }

    /// Number of generators.
    #[must_use]
    pub fn generator_count(&self) -> usize {
        self.generators
    }

    /// The relators (freely and cyclically reduced, deduplicated).
    #[must_use]
    pub fn relators(&self) -> &[Word] {
        &self.relators
    }

    /// Whether the presentation has no generators (the trivial group,
    /// syntactically).
    #[must_use]
    pub fn is_trivial_group(&self) -> bool {
        self.generators == 0
    }

    /// Whether the presentation has no relators (a free group of rank
    /// [`Presentation::generator_count`]).
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.relators.is_empty()
    }

    /// The exponent matrix of the relators (rows = abelianized relators,
    /// columns = generators): presentation matrix of H₁ = Gᵃᵇ.
    #[must_use]
    pub fn relator_matrix(&self) -> IntMatrix {
        let mut m = IntMatrix::zeros(self.relators.len(), self.generators);
        for (i, r) in self.relators.iter().enumerate() {
            for (j, e) in exponent_vector(r, self.generators).into_iter().enumerate() {
                m.set(i, j, e);
            }
        }
        m
    }

    /// Normalizes relators: free+cyclic reduction, drop empties, dedup
    /// (up to inversion).
    fn cleanup(&mut self) {
        let mut rs: Vec<Word> = self
            .relators
            .iter()
            .map(|r| cyclic_reduce(&free_reduce(r)))
            .filter(|r| !r.is_empty())
            .collect();
        // Canonical representative: min over rotations of the word and its
        // inverse, so duplicates in disguise collapse.
        for r in &mut rs {
            *r = canonical_cyclic(r);
        }
        rs.sort();
        rs.dedup();
        self.relators = rs;
    }

    /// Applies Tietze simplification until a fixed point (or a size guard):
    /// eliminates generators that occur exactly once in a single relator,
    /// substitutes length-1 and length-2 relators, and re-normalizes.
    /// The result presents an isomorphic group.
    #[must_use]
    pub fn simplified(&self) -> Presentation {
        const MAX_TOTAL_LENGTH: usize = 100_000;
        let mut p = self.clone();
        loop {
            p.cleanup();
            let Some((gen, rep, ridx)) = p.find_elimination() else {
                return p;
            };
            // Substitute gen := rep in all other relators, drop relator
            // ridx and renumber generators.
            let mut new_relators = Vec::new();
            for (i, r) in p.relators.iter().enumerate() {
                if i == ridx {
                    continue;
                }
                let s = substitute(r, gen, &rep);
                new_relators.push(delete_generator(&s, gen));
            }
            let total: usize = new_relators.iter().map(Vec::len).sum();
            if total > MAX_TOTAL_LENGTH {
                return p; // size guard: give up on further elimination
            }
            p = Presentation::new(p.generators - 1, new_relators);
        }
    }

    /// Finds a generator eliminable by a Tietze move: a relator in which
    /// some generator occurs exactly once (so the relator can be solved for
    /// it). Returns `(generator, replacement word, relator index)`.
    fn find_elimination(&self) -> Option<(i32, Word, usize)> {
        for (ridx, r) in self.relators.iter().enumerate() {
            for g in 1..=self.generators as i32 {
                let occurrences = r.iter().filter(|&&x| x.abs() == g).count();
                if occurrences != 1 {
                    continue;
                }
                // Rotate r so the unique occurrence of ±g is first:
                // r = g^ε · w  ⇒  g^ε = w⁻¹  ⇒  g = w⁻¹ (ε=1) or w (ε=-1).
                let pos = r.iter().position(|&x| x.abs() == g).expect("present"); // chromata-lint: allow(P1): occurrences == 1 was just checked, so the position exists
                let mut rot = r[pos..].to_vec();
                rot.extend_from_slice(&r[..pos]);
                let eps = rot[0].signum();
                let w = &rot[1..];
                let rep = if eps > 0 { invert(w) } else { free_reduce(w) };
                return Some((g, rep, ridx));
            }
        }
        None
    }

    /// Whether the presented *group* is certifiably abelian: after Tietze
    /// simplification the presentation has at most one generator, or every
    /// pair of generators has its commutator among the relators. Sufficient
    /// but not necessary ("evidently abelian").
    #[must_use]
    pub fn is_evidently_abelian(&self) -> bool {
        let p = self.simplified();
        if p.generators <= 1 {
            return true;
        }
        // All pairwise commutators present?
        (1..=p.generators as i32).all(|a| {
            (a + 1..=p.generators as i32).all(|b| {
                let comm = canonical_cyclic(&[a, b, -a, -b]);
                p.relators.contains(&comm)
            })
        })
    }
}

/// Canonical representative of a cyclic word up to rotation and inversion.
fn canonical_cyclic(w: &[i32]) -> Word {
    let w = cyclic_reduce(w);
    if w.is_empty() {
        return w;
    }
    let mut best: Option<Word> = None;
    for cand in [w.clone(), invert(&w)] {
        for k in 0..cand.len() {
            let mut rot = cand[k..].to_vec();
            rot.extend_from_slice(&cand[..k]);
            if best.as_ref().is_none_or(|b| rot < *b) {
                best = Some(rot);
            }
        }
    }
    best.expect("non-empty word has a canonical form") // chromata-lint: allow(P1): the rotation loop above seeds `best` for every non-empty word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleanup_dedups_rotations_and_inverses() {
        let p = Presentation::new(2, vec![vec![1, 2], vec![2, 1], vec![-2, -1], vec![1, -1]]);
        assert_eq!(p.relators().len(), 1);
    }

    #[test]
    fn trivial_group_recognized() {
        // ⟨ a, b | a, b ⟩ = 1.
        let p = Presentation::new(2, vec![vec![1], vec![2]]);
        assert!(p.simplified().is_trivial_group());
        // ⟨ a, b | ab, b ⟩ = 1.
        let q = Presentation::new(2, vec![vec![1, 2], vec![2]]);
        assert!(q.simplified().is_trivial_group());
    }

    #[test]
    fn free_group_stays_free() {
        let p = Presentation::new(3, vec![]);
        let s = p.simplified();
        assert!(s.is_free());
        assert_eq!(s.generator_count(), 3);
    }

    #[test]
    fn z2_is_not_trivial_but_is_abelian() {
        let p = Presentation::new(1, vec![vec![1, 1]]);
        let s = p.simplified();
        assert!(!s.is_trivial_group());
        assert_eq!(s.generator_count(), 1);
        assert!(p.is_evidently_abelian());
    }

    #[test]
    fn torus_presentation_is_abelian() {
        // ⟨ a, b | [a,b] ⟩ = Z².
        let p = Presentation::new(2, vec![vec![1, 2, -1, -2]]);
        assert!(p.is_evidently_abelian());
        assert!(!p.simplified().is_trivial_group());
    }

    #[test]
    fn surface_genus2_not_evidently_abelian() {
        // ⟨ a,b,c,d | [a,b][c,d] ⟩: not abelian; our sufficient check must
        // not claim otherwise.
        let p = Presentation::new(4, vec![vec![1, 2, -1, -2, 3, 4, -3, -4]]);
        assert!(!p.is_evidently_abelian());
    }

    #[test]
    fn elimination_collapses_chain() {
        // ⟨ a, b, c | a b⁻¹, b c⁻¹ ⟩ ≅ Z (one generator, free).
        let p = Presentation::new(3, vec![vec![1, -2], vec![2, -3]]);
        let s = p.simplified();
        assert_eq!(s.generator_count(), 1);
        assert!(s.is_free());
    }

    #[test]
    fn relator_matrix_abelianization() {
        // ⟨ a, b | a²b ⟩ abelianized: ±[2, 1] (canonicalization may invert
        // the relator, which spans the same lattice).
        let p = Presentation::new(2, vec![vec![1, 1, 2]]);
        let m = p.relator_matrix();
        let row = (m.get(0, 0), m.get(0, 1));
        assert!(row == (2, 1) || row == (-2, -1), "got {row:?}");
    }
}
