//! Simplicial homology of complexes of dimension ≤ 2.
//!
//! The solvability pipeline uses H1 in two ways (paper, §5–6): torsion and
//! Betti numbers characterize the output complexes of the example tasks
//! (annulus, torus, projective plane), and "is this 1-cycle a boundary?"
//! is the abelianized contractibility obstruction — a *sound* certificate
//! of unsolvability, exact whenever the fundamental group is abelian.
//!
//! chromata-lint: allow(P3): row/column indices are bounded by the boundary-matrix shape computed from the same complex; every site is advisory-flagged by P2 for per-site review

use std::collections::BTreeMap;

use chromata_topology::{Complex, Simplex, Vertex};

use crate::linear::in_column_lattice;
use crate::matrix::IntMatrix;
use crate::smith::smith_normal_form;

/// Indexed bases for the chain groups of a complex (dimensions 0, 1, 2)
/// together with its boundary matrices.
#[derive(Clone, Debug)]
pub struct ChainComplex {
    vertices: Vec<Vertex>,
    edges: Vec<Simplex>,
    triangles: Vec<Simplex>,
    /// ∂₁ : C₁ → C₀, shape `|V| × |E|`.
    pub boundary1: IntMatrix,
    /// ∂₂ : C₂ → C₁, shape `|E| × |T|`.
    pub boundary2: IntMatrix,
}

impl ChainComplex {
    /// Builds the chain complex of `k` with the orientation induced by the
    /// global sorted vertex order.
    ///
    /// # Panics
    ///
    /// Panics if `k` has simplices of dimension greater than 2 (the paper's
    /// setting is at most 2-dimensional: three processes).
    #[must_use]
    pub fn new(k: &Complex) -> Self {
        assert!(
            k.dimension().unwrap_or(0) <= 2,
            "chain complexes are implemented for dimension ≤ 2"
        );
        let vertices: Vec<Vertex> = k.vertices().cloned().collect();
        let edges: Vec<Simplex> = k.simplices_of_dim(1).cloned().collect();
        let triangles: Vec<Simplex> = k.simplices_of_dim(2).cloned().collect();
        let vindex: BTreeMap<&Vertex, usize> =
            vertices.iter().enumerate().map(|(i, v)| (v, i)).collect();
        let eindex: BTreeMap<&Simplex, usize> =
            edges.iter().enumerate().map(|(i, e)| (e, i)).collect();

        let mut b1 = IntMatrix::zeros(vertices.len(), edges.len());
        for (j, e) in edges.iter().enumerate() {
            let vs = e.vertices();
            // ∂[v0, v1] = v1 - v0 (vertices sorted).
            b1.set(vindex[&vs[1]], j, 1);
            b1.set(vindex[&vs[0]], j, -1);
        }

        let mut b2 = IntMatrix::zeros(edges.len(), triangles.len());
        for (j, t) in triangles.iter().enumerate() {
            let vs = t.vertices();
            // ∂[v0,v1,v2] = [v1,v2] - [v0,v2] + [v0,v1].
            let faces = [
                (Simplex::from_iter([vs[1].clone(), vs[2].clone()]), 1),
                (Simplex::from_iter([vs[0].clone(), vs[2].clone()]), -1),
                (Simplex::from_iter([vs[0].clone(), vs[1].clone()]), 1),
            ];
            for (f, sign) in faces {
                b2.set(eindex[&f], j, sign);
            }
        }

        ChainComplex {
            vertices,
            edges,
            triangles,
            boundary1: b1,
            boundary2: b2,
        }
    }

    /// Reassembles a chain complex from already-validated parts (the
    /// serde layer checks the boundary-matrix shapes before calling).
    pub(crate) fn from_parts(
        vertices: Vec<Vertex>,
        edges: Vec<Simplex>,
        triangles: Vec<Simplex>,
        boundary1: IntMatrix,
        boundary2: IntMatrix,
    ) -> Self {
        ChainComplex {
            vertices,
            edges,
            triangles,
            boundary1,
            boundary2,
        }
    }

    /// The ordered edge basis.
    #[must_use]
    pub fn edges(&self) -> &[Simplex] {
        &self.edges
    }

    /// The ordered vertex basis.
    #[must_use]
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// The ordered triangle basis.
    #[must_use]
    pub fn triangles(&self) -> &[Simplex] {
        &self.triangles
    }

    /// Encodes a closed walk `w0, w1, …, wk (= w0)` as a 1-chain over the
    /// edge basis.
    ///
    /// Returns `None` if some consecutive pair is not an edge of the
    /// complex.
    #[must_use]
    pub fn walk_to_chain(&self, walk: &[Vertex]) -> Option<Vec<i64>> {
        let eindex: BTreeMap<&Simplex, usize> =
            self.edges.iter().enumerate().map(|(i, e)| (e, i)).collect();
        let mut chain = vec![0i64; self.edges.len()];
        for pair in walk.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a == b {
                continue; // stuttering step contributes nothing
            }
            let e = Simplex::from_iter([a.clone(), b.clone()]);
            let j = *eindex.get(&e)?;
            // Orientation: edge stored as [min, max] with ∂ = max - min;
            // traversing min→max counts +1, max→min counts −1.
            let sign = if a < b { 1 } else { -1 };
            chain[j] += sign;
        }
        Some(chain)
    }

    /// Whether a 1-chain is a cycle (`∂₁ z = 0`).
    #[must_use]
    pub fn is_cycle(&self, chain: &[i64]) -> bool {
        self.boundary1.mul_vec(chain).iter().all(|&x| x == 0)
    }

    /// Whether a 1-cycle is a boundary (`z ∈ im ∂₂`), i.e. null-homologous.
    #[must_use]
    pub fn is_boundary(&self, chain: &[i64]) -> bool {
        in_column_lattice(&self.boundary2, chain)
    }
}

/// Betti numbers and torsion of a ≤2-dimensional complex.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HomologyReport {
    /// `b₀`: number of connected components.
    pub betti0: usize,
    /// `b₁`: rank of the first homology group.
    pub betti1: usize,
    /// `b₂`: rank of the second homology group.
    pub betti2: usize,
    /// Torsion coefficients of H₁ (e.g. `[2]` for the projective plane).
    pub torsion1: Vec<i64>,
}

/// Computes H₀, H₁ and H₂ of `k` over ℤ.
///
/// # Examples
///
/// ```
/// use chromata_algebra::homology;
/// use chromata_topology::{Complex, Simplex, Vertex};
///
/// // A hollow triangle (circle): b0 = 1, b1 = 1.
/// let tri = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0), Vertex::of(2, 0)]);
/// let circle = Complex::from_facets([tri]).skeleton(1);
/// let h = homology(&circle);
/// assert_eq!((h.betti0, h.betti1), (1, 1));
/// ```
#[must_use]
pub fn homology(k: &Complex) -> HomologyReport {
    let cc = ChainComplex::new(k);
    let n_v = cc.vertices.len();
    let n_e = cc.edges.len();
    let n_t = cc.triangles.len();
    let s1 = smith_normal_form(&cc.boundary1);
    let s2 = smith_normal_form(&cc.boundary2);
    let rank1 = s1.rank();
    let rank2 = s2.rank();
    HomologyReport {
        betti0: n_v - rank1,
        betti1: n_e - rank1 - rank2,
        betti2: n_t - rank2,
        torsion1: s2.torsion(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: u8, x: i64) -> Vertex {
        Vertex::of(c, x)
    }

    fn tri(a: Vertex, b: Vertex, c: Vertex) -> Simplex {
        Simplex::from_iter([a, b, c])
    }

    #[test]
    fn disk_homology() {
        let k = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]);
        let h = homology(&k);
        assert_eq!(
            h,
            HomologyReport {
                betti0: 1,
                betti1: 0,
                betti2: 0,
                torsion1: vec![]
            }
        );
    }

    #[test]
    fn circle_homology_and_winding() {
        let k = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]).skeleton(1);
        let h = homology(&k);
        assert_eq!((h.betti0, h.betti1, h.betti2), (1, 1, 0));
        let cc = ChainComplex::new(&k);
        let walk = [v(0, 0), v(1, 0), v(2, 0), v(0, 0)];
        let z = cc.walk_to_chain(&walk).unwrap();
        assert!(cc.is_cycle(&z));
        assert!(!cc.is_boundary(&z), "the generator of H1 is not a boundary");
    }

    #[test]
    fn filled_boundary_becomes_trivial() {
        let k = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]);
        let cc = ChainComplex::new(&k);
        let walk = [v(0, 0), v(1, 0), v(2, 0), v(0, 0)];
        let z = cc.walk_to_chain(&walk).unwrap();
        assert!(cc.is_cycle(&z));
        assert!(cc.is_boundary(&z));
    }

    #[test]
    fn two_components() {
        let k = Complex::from_facets([
            Simplex::from_iter([v(0, 0), v(1, 0)]),
            Simplex::from_iter([v(0, 9), v(1, 9)]),
        ]);
        assert_eq!(homology(&k).betti0, 2);
    }

    #[test]
    fn sphere_homology() {
        // Boundary of a tetrahedron: b0=1, b1=0, b2=1. Colors don't matter
        // for homology; use 4 distinct colors to keep simplices chromatic.
        let vs = [v(0, 0), v(1, 0), v(2, 0), v(3, 0)];
        let mut k = Complex::new();
        for skip in 0..4 {
            let face: Vec<Vertex> = (0..4)
                .filter(|&i| i != skip)
                .map(|i| vs[i].clone())
                .collect();
            k.add_simplex(Simplex::new(face));
        }
        let h = homology(&k);
        assert_eq!((h.betti0, h.betti1, h.betti2), (1, 0, 1));
        assert!(h.torsion1.is_empty());
    }

    #[test]
    fn annulus_has_betti1_one() {
        // Triangulated annulus: two concentric triangles (inner i0,i1,i2 /
        // outer o0,o1,o2) with 6 triangles between them.
        let i = [v(0, 0), v(1, 0), v(2, 0)];
        let o = [v(0, 1), v(1, 1), v(2, 1)];
        let mut k = Complex::new();
        for a in 0..3 {
            let b = (a + 1) % 3;
            k.add_simplex(tri(i[a].clone(), i[b].clone(), o[b].clone()));
            k.add_simplex(tri(i[a].clone(), o[a].clone(), o[b].clone()));
        }
        let h = homology(&k);
        assert_eq!((h.betti0, h.betti1, h.betti2), (1, 1, 0));
        // Inner boundary circle is not null-homologous.
        let cc = ChainComplex::new(&k);
        let z = cc
            .walk_to_chain(&[i[0].clone(), i[1].clone(), i[2].clone(), i[0].clone()])
            .unwrap();
        assert!(cc.is_cycle(&z) && !cc.is_boundary(&z));
    }

    #[test]
    fn projective_plane_torsion() {
        // Minimal 6-vertex triangulation of RP^2 (antipodally identified
        // icosahedron, Kühnel's RP²₆): every pair of vertices is an edge,
        // each edge lies in exactly two of the ten faces.
        let faces = [
            [1, 2, 3],
            [1, 2, 4],
            [1, 3, 5],
            [1, 4, 6],
            [1, 5, 6],
            [2, 3, 6],
            [2, 4, 5],
            [2, 5, 6],
            [3, 4, 5],
            [3, 4, 6],
        ];
        let mut k = Complex::new();
        for f in faces {
            k.add_simplex(Simplex::from_iter(
                f.iter().map(|&x| Vertex::of(0, i64::from(x))),
            ));
        }
        let h = homology(&k);
        assert_eq!((h.betti0, h.betti1, h.betti2), (1, 0, 0));
        assert_eq!(h.torsion1, vec![2], "H1(RP²) = Z/2");
    }

    #[test]
    fn walk_with_missing_edge_is_none() {
        let k = Complex::from_facets([Simplex::from_iter([v(0, 0), v(1, 0)])]);
        let cc = ChainComplex::new(&k);
        assert!(cc.walk_to_chain(&[v(0, 0), v(2, 2)]).is_none());
        // Stuttering contributes nothing.
        let z = cc.walk_to_chain(&[v(0, 0), v(0, 0)]).unwrap();
        assert!(z.iter().all(|&x| x == 0));
    }
}
