//! Integer linear algebra, homology and combinatorial group theory for the
//! `chromata` workspace.
//!
//! The solvability characterization of *"Solvability Characterization for
//! General Three-Process Tasks"* (PODC 2025) bottoms out, after the
//! splitting deformation, in a continuous-map existence question (§5). Its
//! computational content is:
//!
//! * connected components (handled in `chromata-topology`);
//! * **contractibility of loops** in 2-dimensional output complexes — the
//!   generally undecidable residue (§7), attacked here with a tier of sound
//!   partial deciders: [`homology`] / [`ChainComplex`] (abelianized
//!   obstructions via [`smith_normal_form`] and [`solve_integer`]),
//!   [`EdgePathGroup`] presentations simplified by Tietze moves
//!   ([`Presentation::simplified`]), and bounded [`coset_enumeration`].
//!
//! The entry point for "is this loop contractible?" is
//! [`loop_contractible`] (or [`word_triviality`] on a presentation you
//! already hold):
//!
//! ```
//! use chromata_algebra::{homology, loop_contractible, Triviality};
//! use chromata_topology::{Complex, Simplex, Vertex};
//!
//! // A hollow triangle: H1 = Z, its boundary loop does not contract.
//! let tri = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0), Vertex::of(2, 0)]);
//! let circle = Complex::from_facets([tri]).skeleton(1);
//! assert_eq!(homology(&circle).betti1, 1);
//! let walk = [Vertex::of(0, 0), Vertex::of(1, 0), Vertex::of(2, 0), Vertex::of(0, 0)];
//! assert_eq!(loop_contractible(&circle, &walk), Some(Triviality::Nontrivial));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decide;
mod edge_path;
mod homology;
mod linear;
mod matrix;
mod presentation;
mod serde_impls;
mod smith;
mod todd_coxeter;
mod word;

pub use decide::{word_triviality, word_triviality_with_budget, Triviality, DEFAULT_COSET_BUDGET};
pub use edge_path::{loop_contractible, EdgePathGroup, PresentationSummary};
pub use homology::{homology, ChainComplex, HomologyReport};
pub use linear::{in_column_lattice, is_feasible, solve_integer};
pub use matrix::IntMatrix;
pub use presentation::Presentation;
pub use smith::{smith_normal_form, SmithForm};
pub use todd_coxeter::{coset_enumeration, CosetTable, Enumeration};
pub use word::{
    concat, cyclic_reduce, delete_generator, exponent_vector, free_reduce, invert, substitute, Word,
};
