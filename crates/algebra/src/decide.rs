//! Tiered word-problem decision for edge-path groups.
//!
//! Loop contractibility in 2-complexes is undecidable in general
//! (Gafni–Koutsoupias; paper §7), so the pipeline uses a tier of sound,
//! partial deciders and reports `Unknown` honestly when all tiers pass:
//!
//! 1. free reduction (syntactic identity);
//! 2. group triviality via Tietze simplification (decides *all* words);
//! 3. free groups: reduced word empty or not (exact);
//! 4. abelianization: exponent vector in the relator lattice — a sound
//!    `Nontrivial` certificate, and exact when the group is evidently
//!    abelian (annulus ℤ, torus ℤ², projective plane ℤ/2);
//! 5. bounded Todd–Coxeter: exact whenever the group is small enough to
//!    enumerate.

use crate::linear::is_feasible;
use crate::presentation::Presentation;
use crate::todd_coxeter::{coset_enumeration, Enumeration};
use crate::word::{exponent_vector, free_reduce};

/// Three-valued answer to "does this word represent the identity?".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Triviality {
    /// The word is certainly the identity (the loop is contractible).
    Trivial,
    /// The word is certainly not the identity.
    Nontrivial,
    /// None of the decidable tiers applied.
    Unknown,
}

/// Default coset budget for the Todd–Coxeter tier.
pub const DEFAULT_COSET_BUDGET: usize = 4096;

/// Decides whether `w` represents the identity in the group presented by
/// `p`, using the tiered strategy described in the module docs.
///
/// # Examples
///
/// ```
/// use chromata_algebra::{word_triviality, Presentation, Triviality};
///
/// // Z/2 = ⟨ a | a² ⟩.
/// let p = Presentation::new(1, vec![vec![1, 1]]);
/// assert_eq!(word_triviality(&p, &[1, 1]), Triviality::Trivial);
/// assert_eq!(word_triviality(&p, &[1]), Triviality::Nontrivial);
/// ```
#[must_use]
pub fn word_triviality(p: &Presentation, w: &[i32]) -> Triviality {
    word_triviality_with_budget(p, w, DEFAULT_COSET_BUDGET)
}

/// [`word_triviality`] with an explicit Todd–Coxeter coset budget.
#[must_use]
pub fn word_triviality_with_budget(p: &Presentation, w: &[i32], coset_budget: usize) -> Triviality {
    // Tier 1: syntactic identity.
    let w = free_reduce(w);
    if w.is_empty() {
        return Triviality::Trivial;
    }

    // Tier 2: the whole group is trivial (isomorphism-invariant, so the
    // simplified copy certifies the original).
    let simplified = p.simplified();
    if simplified.is_trivial_group() {
        return Triviality::Trivial;
    }

    // Tier 3: free group — reduced non-empty word is non-trivial. This is
    // only sound on the *original* presentation (same generators as `w`).
    if p.is_free() {
        return Triviality::Nontrivial;
    }

    // Tier 4: abelianization. If the exponent vector is outside the
    // relator lattice, the word is non-trivial in G^ab, hence in G.
    let e = exponent_vector(&w, p.generator_count());
    let lattice = p.relator_matrix().transpose(); // columns = relators
    let in_lattice = is_feasible(&lattice, &e);
    if !in_lattice {
        return Triviality::Nontrivial;
    }
    // Exact when the group is certifiably abelian.
    if p.is_evidently_abelian() {
        return Triviality::Trivial;
    }

    // Tier 5: bounded coset enumeration (exact for small finite groups).
    if let Enumeration::Finite(t) = coset_enumeration(p, coset_budget) {
        return if t.is_identity(&w) {
            Triviality::Trivial
        } else {
            Triviality::Nontrivial
        };
    }

    Triviality::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_reduction_tier() {
        let p = Presentation::new(2, vec![vec![1, 2, -1, -2]]);
        assert_eq!(word_triviality(&p, &[1, -1]), Triviality::Trivial);
    }

    #[test]
    fn trivial_group_tier() {
        // ⟨ a, b | a, ab ⟩ = 1: every word trivial.
        let p = Presentation::new(2, vec![vec![1], vec![1, 2]]);
        assert_eq!(word_triviality(&p, &[2, 1, 2]), Triviality::Trivial);
    }

    #[test]
    fn free_group_tier() {
        let p = Presentation::new(2, vec![]);
        assert_eq!(word_triviality(&p, &[1, 2]), Triviality::Nontrivial);
        assert_eq!(word_triviality(&p, &[1, 2, -2, -1]), Triviality::Trivial);
    }

    #[test]
    fn abelian_tier_torus() {
        // Z² = ⟨ a, b | [a,b] ⟩.
        let p = Presentation::new(2, vec![vec![1, 2, -1, -2]]);
        assert_eq!(word_triviality(&p, &[1]), Triviality::Nontrivial);
        assert_eq!(word_triviality(&p, &[2, 1, -2, -1]), Triviality::Trivial);
        assert_eq!(
            word_triviality(&p, &[1, 1, 2, -1, -1]),
            Triviality::Nontrivial
        );
    }

    #[test]
    fn torsion_tier_projective_plane() {
        // Z/2 = ⟨ a | a² ⟩: a is in the abelianized lattice only with even
        // exponent.
        let p = Presentation::new(1, vec![vec![1, 1]]);
        assert_eq!(word_triviality(&p, &[1]), Triviality::Nontrivial);
        assert_eq!(word_triviality(&p, &[1, 1]), Triviality::Trivial);
        assert_eq!(word_triviality(&p, &[1, 1, 1]), Triviality::Nontrivial);
    }

    #[test]
    fn coset_tier_nonabelian_finite() {
        // S3: commutator [a, b] is non-trivial but dies in H1 — only the
        // Todd–Coxeter tier can certify Nontrivial.
        let p = Presentation::new(2, vec![vec![1, 1], vec![2, 2], vec![1, 2, 1, 2, 1, 2]]);
        assert_eq!(word_triviality(&p, &[1, 2, -1, -2]), Triviality::Nontrivial);
        assert_eq!(
            word_triviality(&p, &[1, 2, 1, 2, 1, 2]),
            Triviality::Trivial
        );
    }

    #[test]
    fn unknown_for_hard_cases() {
        // Genus-2 surface group: infinite, non-abelian; the commutator
        // product relator puts the test word in the H1 lattice, TC cannot
        // close, so we must answer Unknown (with a tiny budget to keep the
        // test fast).
        let p = Presentation::new(4, vec![vec![1, 2, -1, -2, 3, 4, -3, -4]]);
        assert_eq!(
            word_triviality_with_budget(&p, &[1, 2, -1, -2], 64),
            Triviality::Unknown
        );
    }
}
