//! Words in finitely generated free groups.
//!
//! A word is a sequence of non-zero `i32` letters: `+k` denotes generator
//! `k-1`, `-k` its inverse. Words represent edge-loops in the edge-path
//! fundamental group (paper, §5: contractibility of loops in output
//! complexes).
//!
//! chromata-lint: allow(P3): letter indices are bounded by the word length the same loop iterates; every site is advisory-flagged by P2 for per-site review

/// A word over generators `1..=n` and their inverses (`-1..=-n`).
pub type Word = Vec<i32>;

/// Freely reduces a word by cancelling adjacent inverse pairs.
///
/// # Examples
///
/// ```
/// use chromata_algebra::free_reduce;
///
/// assert_eq!(free_reduce(&[1, 2, -2, -1, 3]), vec![3]);
/// assert!(free_reduce(&[1, -1]).is_empty());
/// ```
#[must_use]
pub fn free_reduce(w: &[i32]) -> Word {
    let mut out: Word = Vec::with_capacity(w.len());
    for &x in w {
        debug_assert!(x != 0, "0 is not a letter");
        if out.last().is_some_and(|&y| y == -x) {
            out.pop();
        } else {
            out.push(x);
        }
    }
    out
}

/// Cyclically reduces a freely reduced word (cancels matching first/last
/// letters).
#[must_use]
pub fn cyclic_reduce(w: &[i32]) -> Word {
    let mut v = free_reduce(w);
    while v.len() >= 2 && v[0] == -v[v.len() - 1] {
        v.pop();
        v.remove(0);
    }
    v
}

/// The inverse word.
#[must_use]
pub fn invert(w: &[i32]) -> Word {
    w.iter().rev().map(|&x| -x).collect()
}

/// Concatenates and freely reduces.
#[must_use]
pub fn concat(a: &[i32], b: &[i32]) -> Word {
    let mut w = a.to_vec();
    w.extend_from_slice(b);
    free_reduce(&w)
}

/// The exponent-sum vector of a word over `n` generators (its image in the
/// abelianization ℤⁿ).
///
/// # Panics
///
/// Panics if a letter references a generator `≥ n`.
#[must_use]
pub fn exponent_vector(w: &[i32], n: usize) -> Vec<i64> {
    let mut v = vec![0i64; n];
    for &x in w {
        let g = (x.unsigned_abs() as usize) - 1;
        assert!(g < n, "letter {x} out of range for {n} generators");
        v[g] += i64::from(x.signum());
    }
    v
}

/// Substitutes generator `g` (1-based) by the word `rep` throughout `w`
/// (occurrences of `-g` get the inverse of `rep`), then freely reduces.
#[must_use]
pub fn substitute(w: &[i32], g: i32, rep: &[i32]) -> Word {
    debug_assert!(g > 0);
    let inv = invert(rep);
    let mut out = Vec::new();
    for &x in w {
        if x == g {
            out.extend_from_slice(rep);
        } else if x == -g {
            out.extend_from_slice(&inv);
        } else {
            out.push(x);
        }
    }
    free_reduce(&out)
}

/// Renumbers letters after deleting generator `g` (1-based): letters above
/// `g` shift down by one. The word must not contain `±g`.
///
/// # Panics
///
/// Panics if the word still mentions `g`.
#[must_use]
pub fn delete_generator(w: &[i32], g: i32) -> Word {
    w.iter()
        .map(|&x| {
            assert!(x.abs() != g, "delete_generator: word still mentions {g}");
            if x.abs() > g {
                x - x.signum()
            } else {
                x
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_reduction_nested() {
        assert_eq!(free_reduce(&[1, 2, 3, -3, -2, -1]), Vec::<i32>::new());
        assert_eq!(free_reduce(&[1, 1, -1]), vec![1]);
    }

    #[test]
    fn cyclic_reduction() {
        assert_eq!(cyclic_reduce(&[1, 2, -1]), vec![2]);
        assert_eq!(cyclic_reduce(&[1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(cyclic_reduce(&[-2, 1, 2]), vec![1]);
    }

    #[test]
    fn inversion_and_concat() {
        let w = vec![1, -2, 3];
        assert_eq!(invert(&w), vec![-3, 2, -1]);
        assert!(concat(&w, &invert(&w)).is_empty());
    }

    #[test]
    fn exponents() {
        assert_eq!(exponent_vector(&[1, 1, -2, 3, -1], 3), vec![1, -1, 1]);
        assert_eq!(exponent_vector(&[], 2), vec![0, 0]);
    }

    #[test]
    fn substitution() {
        // Replace g2 by g1^2: word g2 g1 -> g1 g1 g1.
        assert_eq!(substitute(&[2, 1], 2, &[1, 1]), vec![1, 1, 1]);
        // Inverse occurrences use the inverse replacement.
        assert_eq!(substitute(&[-2], 2, &[1, 3]), vec![-3, -1]);
    }

    #[test]
    fn generator_deletion_renumbers() {
        assert_eq!(delete_generator(&[1, 3, -3], 2), vec![1, 2, -2]);
    }

    #[test]
    #[should_panic(expected = "still mentions")]
    fn deletion_of_present_generator_panics() {
        let _ = delete_generator(&[2], 2);
    }
}
