//! Integer linear systems via Smith normal form.
//!
//! The H1-level contractibility obstruction of the solvability pipeline
//! reduces to feasibility of `A·x = b` over the integers: "can the boundary
//! of some 2-chain, plus integer combinations of cycle-basis shifts, equal
//! the given loop?" (paper, §5 and §6.2).
//!
//! chromata-lint: allow(P3): row/column indices are bounded by the matrix shape checked at entry; every site is advisory-flagged by P2 for per-site review

use crate::matrix::IntMatrix;
use crate::smith::smith_normal_form;

/// Solves `a · x = b` over the integers.
///
/// Returns a solution vector if one exists, `None` otherwise.
///
/// # Panics
///
/// Panics if `b.len() != a.rows()`.
///
/// # Examples
///
/// ```
/// use chromata_algebra::{solve_integer, IntMatrix};
///
/// let a = IntMatrix::from_rows(2, 2, vec![2, 0, 0, 3]);
/// assert_eq!(solve_integer(&a, &[4, 9]), Some(vec![2, 3]));
/// assert_eq!(solve_integer(&a, &[1, 0]), None); // 2 ∤ 1
/// ```
#[must_use]
pub fn solve_integer(a: &IntMatrix, b: &[i64]) -> Option<Vec<i64>> {
    assert_eq!(b.len(), a.rows(), "right-hand side length mismatch");
    let s = smith_normal_form(a);
    // a x = b  ⟺  d y = u b with x = v y.
    let c = s.u.mul_vec(b);
    let n = a.cols();
    let mut y = vec![0i64; n];
    let diag = a.rows().min(n);
    for i in 0..diag {
        let d = s.d.get(i, i);
        if d == 0 {
            if c[i] != 0 {
                return None;
            }
        } else {
            if c[i] % d != 0 {
                return None;
            }
            y[i] = c[i] / d;
        }
    }
    if c.iter().skip(diag).any(|&ci| ci != 0) {
        return None;
    }
    Some(s.v.mul_vec(&y))
}

/// Whether `a · x = b` has an integer solution.
#[must_use]
pub fn is_feasible(a: &IntMatrix, b: &[i64]) -> bool {
    solve_integer(a, b).is_some()
}

/// Whether the vector `b` lies in the integer column span (lattice) of `a`.
///
/// This is the same predicate as [`is_feasible`], provided under the name
/// used by the homology code ("is this cycle a boundary?").
#[must_use]
pub fn in_column_lattice(a: &IntMatrix, b: &[i64]) -> bool {
    is_feasible(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_solution_verified() {
        let a = IntMatrix::from_rows(3, 2, vec![1, 2, 3, 4, 5, 6]);
        let b = vec![5, 11, 17];
        let x = solve_integer(&a, &b).expect("feasible");
        assert_eq!(a.mul_vec(&x), b);
    }

    #[test]
    fn infeasible_parity() {
        // x + y even can't hit odd targets with the doubled matrix.
        let a = IntMatrix::from_rows(1, 2, vec![2, 2]);
        assert!(!is_feasible(&a, &[3]));
        assert!(is_feasible(&a, &[4]));
    }

    #[test]
    fn underdetermined_system() {
        let a = IntMatrix::from_rows(1, 3, vec![3, 5, 7]);
        let x = solve_integer(&a, &[1]).expect("gcd(3,5,7)=1 so all targets reachable");
        assert_eq!(a.mul_vec(&x), vec![1]);
    }

    #[test]
    fn overdetermined_inconsistent() {
        let a = IntMatrix::from_rows(2, 1, vec![1, 1]);
        assert!(!is_feasible(&a, &[1, 2]));
        assert!(is_feasible(&a, &[2, 2]));
    }

    #[test]
    fn zero_matrix_cases() {
        let a = IntMatrix::zeros(2, 2);
        assert_eq!(solve_integer(&a, &[0, 0]), Some(vec![0, 0]));
        assert!(!is_feasible(&a, &[0, 1]));
    }

    #[test]
    fn lattice_membership() {
        // Columns (2,0) and (0,2) span the even lattice.
        let a = IntMatrix::from_rows(2, 2, vec![2, 0, 0, 2]);
        assert!(in_column_lattice(&a, &[4, -6]));
        assert!(!in_column_lattice(&a, &[1, 0]));
    }
}
