//! Bounded Todd–Coxeter coset enumeration.
//!
//! When the edge-path group of an output complex is *finite*, coset
//! enumeration over the trivial subgroup terminates and yields an exact
//! word-problem decision procedure — one of the decidable regimes used by
//! the contractibility tier of the solvability pipeline (paper, §5; the
//! general problem is undecidable, §7). The enumeration is bounded: if the
//! coset table exceeds the budget, the caller falls back to weaker tiers.
//!
//! chromata-lint: allow(P3): coset-table indices are bounded by the table length, which the enumeration loop grows before any row is addressed; every site is advisory-flagged by P2 for per-site review

use crate::presentation::Presentation;
use crate::word::Word;

/// Outcome of a bounded coset enumeration.
#[derive(Clone, Debug)]
pub enum Enumeration {
    /// The enumeration closed: the group is finite with the given order and
    /// complete coset table.
    Finite(CosetTable),
    /// The coset budget was exhausted (group may be infinite or just large).
    OutOfBounds,
}

/// A complete coset table over the trivial subgroup: row per coset, column
/// per generator letter; the group order is the number of live cosets.
#[derive(Clone, Debug)]
pub struct CosetTable {
    generators: usize,
    /// `rows[c][l]` = target coset of coset `c` under letter `l`
    /// (letters: `2k` = generator `k`, `2k+1` = its inverse).
    rows: Vec<Vec<usize>>,
}

impl CosetTable {
    /// The order of the group (number of cosets of the trivial subgroup).
    #[must_use]
    pub fn order(&self) -> usize {
        self.rows.len()
    }

    /// Traces a word from the identity coset; the word represents the
    /// identity element iff the trace returns to coset `0`.
    ///
    /// # Panics
    ///
    /// Panics if the word mentions a generator outside the presentation.
    #[must_use]
    pub fn trace_from_identity(&self, w: &[i32]) -> usize {
        let mut c = 0usize;
        for &x in w {
            let g = (x.unsigned_abs() as usize) - 1;
            assert!(g < self.generators, "letter {x} out of range");
            let l = 2 * g + usize::from(x < 0);
            c = self.rows[c][l];
        }
        c
    }

    /// Whether `w` represents the identity element of the group.
    #[must_use]
    pub fn is_identity(&self, w: &[i32]) -> bool {
        self.trace_from_identity(w) == 0
    }
}

/// Runs coset enumeration for the trivial subgroup of the presented group,
/// creating at most `max_cosets` cosets.
///
/// # Examples
///
/// ```
/// use chromata_algebra::{coset_enumeration, Enumeration, Presentation};
///
/// // ⟨ a | a³ ⟩ = Z/3.
/// let p = Presentation::new(1, vec![vec![1, 1, 1]]);
/// match coset_enumeration(&p, 100) {
///     Enumeration::Finite(t) => {
///         assert_eq!(t.order(), 3);
///         assert!(t.is_identity(&[1, 1, 1]));
///         assert!(!t.is_identity(&[1]));
///     }
///     Enumeration::OutOfBounds => panic!("Z/3 is tiny"),
/// }
/// ```
#[must_use]
pub fn coset_enumeration(p: &Presentation, max_cosets: usize) -> Enumeration {
    let g = p.generator_count();
    if g == 0 {
        return Enumeration::Finite(CosetTable {
            generators: 0,
            rows: vec![vec![]],
        });
    }
    let mut e = Enumerator::new(g, p.relators().to_vec(), max_cosets);
    match e.run() {
        Ok(()) => Enumeration::Finite(e.into_table()),
        Err(Overflow) => Enumeration::OutOfBounds,
    }
}

struct Overflow;

struct Enumerator {
    generators: usize,
    relators: Vec<Word>,
    /// table[c][l]: Option<coset>; entries may reference dead cosets and
    /// must be read through `rep`.
    table: Vec<Vec<Option<usize>>>,
    parent: Vec<usize>,
    max_cosets: usize,
    pending: Vec<(usize, usize)>,
}

impl Enumerator {
    fn new(generators: usize, relators: Vec<Word>, max_cosets: usize) -> Self {
        Enumerator {
            generators,
            relators,
            table: vec![vec![None; 2 * generators]],
            parent: vec![0],
            max_cosets,
            pending: Vec::new(),
        }
    }

    fn letter(x: i32) -> usize {
        let g = (x.unsigned_abs() as usize) - 1;
        2 * g + usize::from(x < 0)
    }

    fn inv(l: usize) -> usize {
        l ^ 1
    }

    fn rep(&mut self, mut c: usize) -> usize {
        while self.parent[c] != c {
            self.parent[c] = self.parent[self.parent[c]];
            c = self.parent[c];
        }
        c
    }

    fn get(&mut self, c: usize, l: usize) -> Option<usize> {
        let c = self.rep(c);
        let t = self.table[c][l]?;
        Some(self.rep(t))
    }

    fn set(&mut self, c: usize, l: usize, t: usize) {
        let c = self.rep(c);
        let t = self.rep(t);
        match self.get(c, l) {
            None => {
                self.table[c][l] = Some(t);
                // Backward entry.
                match self.get(t, Self::inv(l)) {
                    None => self.table[t][Self::inv(l)] = Some(c),
                    Some(u) if u != c => self.pending.push((u, c)),
                    Some(_) => {}
                }
            }
            Some(u) if u != t => self.pending.push((u, t)),
            Some(_) => {}
        }
    }

    fn define(&mut self, c: usize, l: usize) -> Result<usize, Overflow> {
        if self.table.len() >= self.max_cosets {
            return Err(Overflow);
        }
        let n = self.table.len();
        self.table.push(vec![None; 2 * self.generators]);
        self.parent.push(n);
        self.set(c, l, n);
        Ok(n)
    }

    fn process_coincidences(&mut self) {
        while let Some((a, b)) = self.pending.pop() {
            let a = self.rep(a);
            let b = self.rep(b);
            if a == b {
                continue;
            }
            let (keep, drop) = if a < b { (a, b) } else { (b, a) };
            self.parent[drop] = keep;
            for l in 0..2 * self.generators {
                if let Some(t) = self.table[drop][l] {
                    match self.get(keep, l) {
                        None => {
                            let t = self.rep(t);
                            self.table[keep][l] = Some(t);
                        }
                        Some(u) => {
                            let t = self.rep(t);
                            if t != u {
                                self.pending.push((t, u));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Scans relator `r` at coset `c`, filling gaps with new cosets.
    fn scan_and_fill(&mut self, c: usize, r: &Word) -> Result<(), Overflow> {
        loop {
            let c = self.rep(c);
            // Forward scan.
            let mut f = c;
            let mut i = 0usize;
            while i < r.len() {
                match self.get(f, Self::letter(r[i])) {
                    Some(t) => {
                        f = t;
                        i += 1;
                    }
                    None => break,
                }
            }
            if i == r.len() {
                if f != c {
                    self.pending.push((f, c));
                    self.process_coincidences();
                }
                return Ok(());
            }
            // Backward scan.
            let mut b = c;
            let mut j = r.len();
            while j > i {
                match self.get(b, Self::inv(Self::letter(r[j - 1]))) {
                    Some(t) => {
                        b = t;
                        j -= 1;
                    }
                    None => break,
                }
            }
            if j == i {
                if f != b {
                    self.pending.push((f, b));
                    self.process_coincidences();
                }
                return Ok(());
            }
            if j == i + 1 {
                // Deduction closes the scan.
                self.set(f, Self::letter(r[i]), b);
                self.process_coincidences();
                return Ok(());
            }
            // Fill one gap and rescan.
            self.define(f, Self::letter(r[i]))?;
            self.process_coincidences();
        }
    }

    fn run(&mut self) -> Result<(), Overflow> {
        // Repeat passes until stable: scan every live coset against every
        // relator and fill every undefined entry. Coincidence processing
        // can invalidate earlier scans, hence the outer fixpoint loop.
        loop {
            let mut changed = false;
            let mut c = 0usize;
            while c < self.table.len() {
                if self.rep(c) != c {
                    c += 1;
                    continue;
                }
                for r in self.relators.clone() {
                    let before = self.live_count();
                    self.scan_and_fill(c, &r)?;
                    if self.live_count() != before {
                        changed = true;
                    }
                    if self.rep(c) != c {
                        break; // this coset died; move on
                    }
                }
                if self.rep(c) == c {
                    for l in 0..2 * self.generators {
                        if self.get(c, l).is_none() {
                            self.define(c, l)?;
                            self.process_coincidences();
                            changed = true;
                        }
                    }
                }
                c += 1;
            }
            if !changed && self.is_complete() {
                return Ok(());
            }
            if !changed {
                // No structural change but incomplete: impossible, since
                // undefined entries are always filled above. Guard anyway.
                return Ok(());
            }
        }
    }

    fn live_count(&mut self) -> usize {
        (0..self.table.len())
            .filter(|&c| self.parent[c] == c)
            .count()
    }

    fn is_complete(&mut self) -> bool {
        for c in 0..self.table.len() {
            if self.rep(c) != c {
                continue;
            }
            for l in 0..2 * self.generators {
                if self.get(c, l).is_none() {
                    return false;
                }
            }
        }
        true
    }

    fn into_table(mut self) -> CosetTable {
        // Compact live cosets.
        let live: Vec<usize> = (0..self.table.len())
            .filter(|&c| self.rep(c) == c)
            .collect();
        let index: std::collections::BTreeMap<usize, usize> =
            live.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut rows = Vec::with_capacity(live.len());
        for &c in &live {
            let mut row = Vec::with_capacity(2 * self.generators);
            for l in 0..2 * self.generators {
                let t = self.get(c, l).expect("table complete"); // chromata-lint: allow(P1): compaction runs only after the enumeration converged, so the coset table is total
                row.push(index[&t]);
            }
            rows.push(row);
        }
        CosetTable {
            generators: self.generators,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite(p: &Presentation, bound: usize) -> CosetTable {
        match coset_enumeration(p, bound) {
            Enumeration::Finite(t) => t,
            Enumeration::OutOfBounds => panic!("expected finite enumeration"),
        }
    }

    #[test]
    fn trivial_group() {
        let p = Presentation::new(1, vec![vec![1]]);
        assert_eq!(finite(&p, 100).order(), 1);
        let empty = Presentation::new(0, vec![]);
        assert_eq!(finite(&empty, 100).order(), 1);
    }

    #[test]
    fn cyclic_groups() {
        for n in 2..=7 {
            let p = Presentation::new(1, vec![vec![1; n]]);
            let t = finite(&p, 1000);
            assert_eq!(t.order(), n, "Z/{n}");
            assert!(t.is_identity(&vec![1; n]));
            assert!(!t.is_identity(&[1]));
        }
    }

    #[test]
    fn klein_four_group() {
        // ⟨ a, b | a², b², (ab)² ⟩ = Z/2 × Z/2.
        let p = Presentation::new(2, vec![vec![1, 1], vec![2, 2], vec![1, 2, 1, 2]]);
        let t = finite(&p, 1000);
        assert_eq!(t.order(), 4);
        assert!(t.is_identity(&[1, 2, 1, 2]));
        assert!(!t.is_identity(&[1, 2]));
    }

    #[test]
    fn symmetric_group_s3() {
        // ⟨ a, b | a², b², (ab)³ ⟩ = S3.
        let p = Presentation::new(2, vec![vec![1, 1], vec![2, 2], vec![1, 2, 1, 2, 1, 2]]);
        let t = finite(&p, 1000);
        assert_eq!(t.order(), 6);
        assert!(!t.is_identity(&[1, 2]));
        assert!(t.is_identity(&[1, 2, 1, 2, 1, 2]));
    }

    #[test]
    fn quaternion_group() {
        // ⟨ a, b | a⁴, a²b⁻², b⁻¹aba ⟩ = Q8.
        let p = Presentation::new(
            2,
            vec![vec![1, 1, 1, 1], vec![1, 1, -2, -2], vec![-2, 1, 2, 1]],
        );
        let t = finite(&p, 1000);
        assert_eq!(t.order(), 8);
    }

    #[test]
    fn infinite_group_hits_bound() {
        // Z = ⟨ a | ⟩ never closes.
        let p = Presentation::new(1, vec![]);
        assert!(matches!(
            coset_enumeration(&p, 64),
            Enumeration::OutOfBounds
        ));
    }

    #[test]
    fn word_tracing_in_z2() {
        let p = Presentation::new(1, vec![vec![1, 1]]);
        let t = finite(&p, 100);
        assert_eq!(t.order(), 2);
        assert!(t.is_identity(&[]));
        assert!(t.is_identity(&[1, 1]));
        assert!(t.is_identity(&[-1, -1]));
        assert!(!t.is_identity(&[1, 1, 1]));
    }
}
