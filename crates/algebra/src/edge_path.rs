//! Edge-path fundamental groups of 2-dimensional complexes.
//!
//! For a connected complex `K`, the edge-path group is presented with one
//! generator per non-tree edge of a spanning tree of the 1-skeleton and one
//! relator per triangle. A loop in `K` is contractible iff its word is
//! trivial in this group — the residual (generally undecidable) obstruction
//! of the paper's characterization (§5, §7).
//!
//! chromata-lint: allow(P3): edge and word indices are derived from the lengths of the same spanning-tree tables; every site is advisory-flagged by P2 for per-site review

use std::collections::BTreeMap;

use chromata_topology::{Complex, Graph, Vertex};

use crate::presentation::Presentation;
use crate::word::{free_reduce, Word};

/// The edge-path group presentation of (one component of) a complex,
/// remembering enough structure to translate vertex walks into words.
#[derive(Clone, Debug)]
pub struct EdgePathGroup {
    presentation: Presentation,
    /// Non-tree edges, oriented `(min, max)`; generator `k+1` corresponds
    /// to `edges[k]` traversed min→max.
    generator_edges: Vec<(Vertex, Vertex)>,
    generator_index: BTreeMap<(Vertex, Vertex), i32>,
    graph: Graph,
}

impl EdgePathGroup {
    /// Builds the edge-path group of `k`.
    ///
    /// The complex must be connected for the result to be π₁(|k|); for a
    /// disconnected complex the construction yields the free product over
    /// components, which is still sound for word-triviality of loops that
    /// stay within one component.
    ///
    /// # Panics
    ///
    /// Panics if `k` has dimension greater than 2.
    #[must_use]
    pub fn new(k: &Complex) -> Self {
        assert!(
            k.dimension().unwrap_or(0) <= 2,
            "edge-path groups are implemented for dimension ≤ 2"
        );
        let graph = Graph::from_complex(k);
        let mut generator_index: BTreeMap<(Vertex, Vertex), i32> = BTreeMap::new();
        let mut generator_edges = Vec::new();
        for (a, b) in graph.non_tree_edges() {
            let g = generator_edges.len() as i32 + 1;
            generator_index.insert((a.clone(), b.clone()), g);
            generator_edges.push((a, b));
        }
        // One relator per triangle: the word of its boundary loop.
        let mut relators = Vec::new();
        for t in k.simplices_of_dim(2) {
            let vs = t.vertices();
            let walk = [vs[0].clone(), vs[1].clone(), vs[2].clone(), vs[0].clone()];
            let w = word_of_walk_raw(&generator_index, &walk)
                .expect("triangle edges are edges of the complex"); // chromata-lint: allow(P1): triangle boundary edges are faces of a face-closed complex
            relators.push(w);
        }
        let presentation = Presentation::new(generator_edges.len(), relators);
        EdgePathGroup {
            presentation,
            generator_edges,
            generator_index,
            graph,
        }
    }

    /// Reassembles an edge-path group from its serialized parts; the
    /// generator index is re-derived from the oriented edge list (the
    /// serde layer has already checked that the generator count matches).
    pub(crate) fn from_parts(
        presentation: Presentation,
        generator_edges: Vec<(Vertex, Vertex)>,
        graph: Graph,
    ) -> Self {
        let generator_index: BTreeMap<(Vertex, Vertex), i32> = generator_edges
            .iter()
            .enumerate()
            .map(|(k, e)| (e.clone(), k as i32 + 1))
            .collect();
        EdgePathGroup {
            presentation,
            generator_edges,
            generator_index,
            graph,
        }
    }

    /// The group presentation (generators = non-tree edges, relators =
    /// triangle boundaries).
    #[must_use]
    pub fn presentation(&self) -> &Presentation {
        &self.presentation
    }

    /// The oriented edges serving as generators.
    #[must_use]
    pub fn generator_edges(&self) -> &[(Vertex, Vertex)] {
        &self.generator_edges
    }

    /// Translates a closed (or open) walk into a word: tree edges map to
    /// the identity, non-tree edges to their generator (sign by traversal
    /// direction).
    ///
    /// Returns `None` if some step of the walk is not an edge of the
    /// complex. Note: for *open* walks the word is only meaningful relative
    /// to the spanning tree (tree paths are implicit); closed walks give
    /// genuine conjugacy-well-defined group elements.
    #[must_use]
    pub fn word_of_walk(&self, walk: &[Vertex]) -> Option<Word> {
        for pair in walk.windows(2) {
            if pair[0] != pair[1] && !self.graph.has_edge(&pair[0], &pair[1]) {
                return None;
            }
        }
        word_of_walk_raw(&self.generator_index, walk)
    }

    /// The underlying 1-skeleton graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

/// Precomputed contractibility facts about (one component of) a complex:
/// the edge-path group together with its Tietze-simplified presentation
/// and the two flags the decision tiers branch on. Built once per image
/// component and shared across vertex assignments by the pipeline's
/// presentation stage, so the (potentially expensive) simplification runs
/// once instead of once per assignment.
#[derive(Clone, Debug)]
pub struct PresentationSummary {
    group: EdgePathGroup,
    simplified: Presentation,
    trivial: bool,
    evidently_abelian: bool,
}

impl PresentationSummary {
    /// Builds the summary of `k` (see [`EdgePathGroup::new`] for the
    /// connectivity caveat).
    ///
    /// # Panics
    ///
    /// Panics if `k` has dimension greater than 2.
    #[must_use]
    pub fn of(k: &Complex) -> Self {
        let group = EdgePathGroup::new(k);
        let simplified = group.presentation().simplified();
        let trivial = simplified.is_trivial_group();
        let evidently_abelian = group.presentation().is_evidently_abelian();
        PresentationSummary {
            group,
            simplified,
            trivial,
            evidently_abelian,
        }
    }

    /// Reassembles a summary from its persisted group and simplified
    /// presentation, recomputing the two derived flags instead of trusting
    /// them from disk (they are cheap given the presentations).
    pub(crate) fn from_parts(group: EdgePathGroup, simplified: Presentation) -> Self {
        let trivial = simplified.is_trivial_group();
        let evidently_abelian = group.presentation().is_evidently_abelian();
        PresentationSummary {
            group,
            simplified,
            trivial,
            evidently_abelian,
        }
    }

    /// The underlying edge-path group (for walk-to-word translation and
    /// the word-problem tier, which runs on the *unsimplified*
    /// presentation).
    #[must_use]
    pub fn group(&self) -> &EdgePathGroup {
        &self.group
    }

    /// The Tietze-simplified presentation.
    #[must_use]
    pub fn simplified(&self) -> &Presentation {
        &self.simplified
    }

    /// Whether the simplified presentation is evidently the trivial group
    /// (the component is simply connected as far as Tietze moves can
    /// tell).
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.trivial
    }

    /// Whether the (unsimplified) presentation is evidently abelian, the
    /// condition under which H₁ feasibility is exact.
    #[must_use]
    pub fn is_evidently_abelian(&self) -> bool {
        self.evidently_abelian
    }
}

/// Decides (as far as the tiered word problem allows) whether a closed
/// walk is contractible in `|k|`.
///
/// Convenience wrapper: builds the edge-path group of the component
/// containing the walk and runs [`crate::word_triviality`] on the walk's
/// word.
///
/// Returns `None` if the walk is not a closed edge-walk of `k`.
///
/// # Examples
///
/// ```
/// use chromata_algebra::{loop_contractible, Triviality};
/// use chromata_topology::{Complex, Simplex, Vertex};
///
/// let tri = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0), Vertex::of(2, 0)]);
/// let walk = [Vertex::of(0, 0), Vertex::of(1, 0), Vertex::of(2, 0), Vertex::of(0, 0)];
/// // On the filled triangle the boundary contracts…
/// let disk = Complex::from_facets([tri.clone()]);
/// assert_eq!(loop_contractible(&disk, &walk), Some(Triviality::Trivial));
/// // …on the hollow triangle it does not.
/// let circle = disk.skeleton(1);
/// assert_eq!(loop_contractible(&circle, &walk), Some(Triviality::Nontrivial));
/// ```
#[must_use]
pub fn loop_contractible(k: &Complex, walk: &[Vertex]) -> Option<crate::decide::Triviality> {
    if walk.is_empty() || walk.first() != walk.last() {
        return None;
    }
    let group = EdgePathGroup::new(k);
    let word = group.word_of_walk(walk)?;
    Some(crate::decide::word_triviality(group.presentation(), &word))
}

/// Word of a walk assuming every step is an edge of the complex (callers
/// validate edge existence); tree edges contribute the identity.
fn word_of_walk_raw(index: &BTreeMap<(Vertex, Vertex), i32>, walk: &[Vertex]) -> Option<Word> {
    let mut w: Word = Vec::new();
    for pair in walk.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a == b {
            continue;
        }
        let (key, sign) = if a < b {
            ((a.clone(), b.clone()), 1)
        } else {
            ((b.clone(), a.clone()), -1)
        };
        if let Some(&g) = index.get(&key) {
            w.push(sign * g);
        }
    }
    Some(free_reduce(&w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_topology::Simplex;

    fn v(c: u8, x: i64) -> Vertex {
        Vertex::of(c, x)
    }

    fn tri(a: Vertex, b: Vertex, c: Vertex) -> Simplex {
        Simplex::from_iter([a, b, c])
    }

    #[test]
    fn disk_has_trivial_group() {
        let k = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]);
        let g = EdgePathGroup::new(&k);
        let p = g.presentation().simplified();
        assert!(p.is_trivial_group());
    }

    #[test]
    fn circle_has_free_rank_one() {
        let k = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]).skeleton(1);
        let g = EdgePathGroup::new(&k);
        let p = g.presentation().simplified();
        assert!(p.is_free());
        assert_eq!(p.generator_count(), 1);
        // Boundary walk is the generator (up to sign).
        let w = g
            .word_of_walk(&[v(0, 0), v(1, 0), v(2, 0), v(0, 0)])
            .unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn filled_triangle_kills_boundary_word() {
        let k = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]);
        let g = EdgePathGroup::new(&k);
        let w = g
            .word_of_walk(&[v(0, 0), v(1, 0), v(2, 0), v(0, 0)])
            .unwrap();
        // With a spanning tree of the triangle, the single non-tree edge is
        // the generator and the triangle relator kills it.
        let p = g.presentation();
        // The word is a product of relator conjugates; verify at the
        // abelianized level here (full tier testing lives in decide.rs).
        let m = p.relator_matrix();
        let e = crate::word::exponent_vector(&w, p.generator_count());
        assert!(crate::linear::is_feasible(&m.transpose(), &e));
    }

    #[test]
    fn wedge_of_two_circles_is_free_rank_two() {
        // Two hollow triangles sharing one vertex.
        let a = v(0, 0);
        let k1 = Complex::from_facets([tri(a.clone(), v(1, 0), v(2, 0))]).skeleton(1);
        let k2 = Complex::from_facets([tri(a.clone(), v(1, 1), v(2, 1))]).skeleton(1);
        let k = k1.union(&k2);
        let g = EdgePathGroup::new(&k);
        let p = g.presentation().simplified();
        assert!(p.is_free());
        assert_eq!(p.generator_count(), 2);
    }

    #[test]
    fn stuttering_walk_is_identity() {
        let k = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]).skeleton(1);
        let g = EdgePathGroup::new(&k);
        let w = g.word_of_walk(&[v(0, 0), v(0, 0), v(0, 0)]).unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn summary_matches_direct_computation() {
        // Filled triangle: trivial. Hollow triangle: free rank 1, which is
        // evidently abelian but not trivial.
        let disk = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]);
        let s = PresentationSummary::of(&disk);
        assert!(s.is_trivial());
        let circle = disk.skeleton(1);
        let s = PresentationSummary::of(&circle);
        assert!(!s.is_trivial());
        assert!(s.is_evidently_abelian());
        assert_eq!(s.simplified().generator_count(), 1);
        assert_eq!(
            s.group().presentation().generator_count(),
            EdgePathGroup::new(&circle).presentation().generator_count()
        );
        // The empty complex presents the trivial group — the fallback the
        // presentation stage uses for seeds outside every component.
        let s = PresentationSummary::of(&Complex::new());
        assert!(s.is_trivial());
        assert!(s.is_evidently_abelian());
    }

    #[test]
    fn loop_contractible_detects_open_walks() {
        let k = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]);
        assert_eq!(loop_contractible(&k, &[v(0, 0), v(1, 0)]), None);
        assert_eq!(loop_contractible(&k, &[]), None);
    }

    #[test]
    fn back_and_forth_cancels() {
        let k = Complex::from_facets([tri(v(0, 0), v(1, 0), v(2, 0))]).skeleton(1);
        let g = EdgePathGroup::new(&k);
        let w = g.word_of_walk(&[v(0, 0), v(1, 0), v(0, 0)]).unwrap();
        assert!(w.is_empty(), "w = {w:?}");
    }
}
