//! Serde support for the algebra types the pipeline persists.
//!
//! Same philosophy as `chromata-topology`'s serde layer: explicit mirror
//! shapes built on the vendored [`Content`] tree, with every structural
//! invariant re-established through ordinary constructors on load.
//! Deserialization *validates before constructing* — a corrupt snapshot
//! entry must surface as an `Err`, never as a panic inside `from_rows` or
//! an out-of-range generator index.

use serde::de::Error as DeError;
use serde::{de, ser, Content, Deserialize, Deserializer, Serialize, Serializer};

use chromata_topology::{Graph, Simplex, Vertex};

use crate::edge_path::{EdgePathGroup, PresentationSummary};
use crate::homology::ChainComplex;
use crate::matrix::IntMatrix;
use crate::presentation::Presentation;
use crate::word::Word;

/// Looks up a required field in a deserialized map.
fn field<'a>(entries: &'a [(String, Content)], name: &str) -> Result<&'a Content, String> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{name}'"))
}

/// Unwraps a map content node.
fn as_map(c: &Content) -> Result<&[(String, Content)], String> {
    match c {
        Content::Map(entries) => Ok(entries),
        other => Err(format!("expected an object, found {other:?}")),
    }
}

fn to_content<T: Serialize>(v: &T) -> Result<Content, String> {
    ser::to_content(v).map_err(|e| e.0)
}

fn from_content<'de, T: Deserialize<'de>>(c: &Content) -> Result<T, String> {
    de::from_content(c.clone()).map_err(|e| e.0)
}

impl Serialize for Presentation {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let err = |e: String| <S::Error as ser::Error>::custom(e);
        s.serialize_content(serde::map_content(vec![
            (
                "generators",
                to_content(&self.generator_count()).map_err(err)?,
            ),
            (
                "relators",
                to_content(&self.relators().to_vec()).map_err(err)?,
            ),
        ]))
    }
}

impl<'de> Deserialize<'de> for Presentation {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let content = d.deserialize_content()?;
        let entries = as_map(&content).map_err(D::Error::custom)?;
        let generators: usize =
            from_content(field(entries, "generators").map_err(D::Error::custom)?)
                .map_err(D::Error::custom)?;
        let relators: Vec<Word> =
            from_content(field(entries, "relators").map_err(D::Error::custom)?)
                .map_err(D::Error::custom)?;
        // A letter ±k refers to generator k; 0 or |k| > generators would
        // index out of range downstream (e.g. in `relator_matrix`).
        for w in &relators {
            for &letter in w {
                let ok = letter != 0 && letter.unsigned_abs() as usize <= generators;
                if !ok {
                    return Err(D::Error::custom(format!(
                        "relator letter {letter} out of range for {generators} generators"
                    )));
                }
            }
        }
        // `Presentation::new` freely + cyclically reduces; it is idempotent
        // on already-reduced relators, so round-trips are exact.
        Ok(Presentation::new(generators, relators))
    }
}

impl Serialize for IntMatrix {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let err = |e: String| <S::Error as ser::Error>::custom(e);
        s.serialize_content(serde::map_content(vec![
            ("rows", to_content(&self.rows()).map_err(err)?),
            ("cols", to_content(&self.cols()).map_err(err)?),
            ("data", to_content(&self.data().to_vec()).map_err(err)?),
        ]))
    }
}

impl<'de> Deserialize<'de> for IntMatrix {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let content = d.deserialize_content()?;
        let entries = as_map(&content).map_err(D::Error::custom)?;
        let rows: usize = from_content(field(entries, "rows").map_err(D::Error::custom)?)
            .map_err(D::Error::custom)?;
        let cols: usize = from_content(field(entries, "cols").map_err(D::Error::custom)?)
            .map_err(D::Error::custom)?;
        let data: Vec<i64> = from_content(field(entries, "data").map_err(D::Error::custom)?)
            .map_err(D::Error::custom)?;
        let expected = rows
            .checked_mul(cols)
            .ok_or_else(|| D::Error::custom("matrix shape overflows"))?;
        if data.len() != expected {
            return Err(D::Error::custom(format!(
                "matrix data length {} does not match shape {rows}x{cols}",
                data.len()
            )));
        }
        Ok(IntMatrix::from_rows(rows, cols, data))
    }
}

impl Serialize for ChainComplex {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let err = |e: String| <S::Error as ser::Error>::custom(e);
        s.serialize_content(serde::map_content(vec![
            (
                "vertices",
                to_content(&self.vertices().to_vec()).map_err(err)?,
            ),
            ("edges", to_content(&self.edges().to_vec()).map_err(err)?),
            (
                "triangles",
                to_content(&self.triangles().to_vec()).map_err(err)?,
            ),
            ("boundary1", to_content(&self.boundary1).map_err(err)?),
            ("boundary2", to_content(&self.boundary2).map_err(err)?),
        ]))
    }
}

impl<'de> Deserialize<'de> for ChainComplex {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let content = d.deserialize_content()?;
        let entries = as_map(&content).map_err(D::Error::custom)?;
        let get = |name: &str| field(entries, name).map_err(D::Error::custom);
        let vertices: Vec<Vertex> = from_content(get("vertices")?).map_err(D::Error::custom)?;
        let edges: Vec<Simplex> = from_content(get("edges")?).map_err(D::Error::custom)?;
        let triangles: Vec<Simplex> = from_content(get("triangles")?).map_err(D::Error::custom)?;
        let boundary1: IntMatrix = from_content(get("boundary1")?).map_err(D::Error::custom)?;
        let boundary2: IntMatrix = from_content(get("boundary2")?).map_err(D::Error::custom)?;
        if boundary1.rows() != vertices.len() || boundary1.cols() != edges.len() {
            return Err(D::Error::custom("boundary1 shape mismatch"));
        }
        if boundary2.rows() != edges.len() || boundary2.cols() != triangles.len() {
            return Err(D::Error::custom("boundary2 shape mismatch"));
        }
        Ok(ChainComplex::from_parts(
            vertices, edges, triangles, boundary1, boundary2,
        ))
    }
}

impl Serialize for EdgePathGroup {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let err = |e: String| <S::Error as ser::Error>::custom(e);
        s.serialize_content(serde::map_content(vec![
            (
                "presentation",
                to_content(self.presentation()).map_err(err)?,
            ),
            (
                "generator_edges",
                to_content(&self.generator_edges().to_vec()).map_err(err)?,
            ),
            ("graph", to_content(self.graph()).map_err(err)?),
        ]))
    }
}

impl<'de> Deserialize<'de> for EdgePathGroup {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let content = d.deserialize_content()?;
        let entries = as_map(&content).map_err(D::Error::custom)?;
        let get = |name: &str| field(entries, name).map_err(D::Error::custom);
        let presentation: Presentation =
            from_content(get("presentation")?).map_err(D::Error::custom)?;
        let generator_edges: Vec<(Vertex, Vertex)> =
            from_content(get("generator_edges")?).map_err(D::Error::custom)?;
        let graph: Graph = from_content(get("graph")?).map_err(D::Error::custom)?;
        if presentation.generator_count() != generator_edges.len() {
            return Err(D::Error::custom(format!(
                "presentation has {} generators but {} generator edges",
                presentation.generator_count(),
                generator_edges.len()
            )));
        }
        if generator_edges.len() > i32::MAX as usize {
            return Err(D::Error::custom("generator count out of range"));
        }
        Ok(EdgePathGroup::from_parts(
            presentation,
            generator_edges,
            graph,
        ))
    }
}

impl Serialize for PresentationSummary {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let err = |e: String| <S::Error as ser::Error>::custom(e);
        // The `trivial` / `evidently_abelian` flags are derived and cheap;
        // they are recomputed on load rather than trusted from disk.
        s.serialize_content(serde::map_content(vec![
            ("group", to_content(self.group()).map_err(err)?),
            ("simplified", to_content(self.simplified()).map_err(err)?),
        ]))
    }
}

impl<'de> Deserialize<'de> for PresentationSummary {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let content = d.deserialize_content()?;
        let entries = as_map(&content).map_err(D::Error::custom)?;
        let get = |name: &str| field(entries, name).map_err(D::Error::custom);
        let group: EdgePathGroup = from_content(get("group")?).map_err(D::Error::custom)?;
        let simplified: Presentation =
            from_content(get("simplified")?).map_err(D::Error::custom)?;
        Ok(PresentationSummary::from_parts(group, simplified))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_topology::Complex;

    fn roundtrip<T>(v: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let json = serde_json::to_string(v).expect("serialize");
        serde_json::from_str(&json).expect("deserialize")
    }

    fn bytes<T: Serialize>(v: &T) -> String {
        serde_json::to_string(v).expect("serialize")
    }

    fn hollow_triangle() -> Complex {
        let tri = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0), Vertex::of(2, 0)]);
        Complex::from_facets([tri]).skeleton(1)
    }

    #[test]
    fn presentation_roundtrips() {
        let p = Presentation::new(2, vec![vec![1, 2, -1, -2], vec![1, 1, 1]]);
        let p2 = roundtrip(&p);
        assert_eq!(p2.generator_count(), p.generator_count());
        assert_eq!(p2.relators(), p.relators());
        assert_eq!(bytes(&p2), bytes(&p));
    }

    #[test]
    fn presentation_rejects_out_of_range_letters() {
        assert!(
            serde_json::from_str::<Presentation>(r#"{"generators":1,"relators":[[2]]}"#).is_err()
        );
        assert!(
            serde_json::from_str::<Presentation>(r#"{"generators":1,"relators":[[0]]}"#).is_err()
        );
    }

    #[test]
    fn matrix_roundtrips_and_rejects_bad_shape() {
        let m = IntMatrix::from_rows(2, 3, vec![1, -2, 3, 0, 5, -6]);
        assert_eq!(roundtrip(&m), m);
        assert!(serde_json::from_str::<IntMatrix>(r#"{"rows":2,"cols":3,"data":[1,2]}"#).is_err());
    }

    #[test]
    fn chain_complex_roundtrips() {
        let cc = ChainComplex::new(&hollow_triangle());
        let cc2 = roundtrip(&cc);
        assert_eq!(cc2.vertices(), cc.vertices());
        assert_eq!(cc2.edges(), cc.edges());
        assert_eq!(cc2.triangles(), cc.triangles());
        assert_eq!(cc2.boundary1, cc.boundary1);
        assert_eq!(cc2.boundary2, cc.boundary2);
        assert_eq!(bytes(&cc2), bytes(&cc));
    }

    #[test]
    fn chain_complex_rejects_shape_mismatch() {
        let cc = ChainComplex::new(&hollow_triangle());
        let json = bytes(&cc);
        // Grow boundary1's claimed width without growing the edge list.
        let broken = json.replacen(r#""edges":["#, r#""edges":[["x"],"#, 1);
        assert!(serde_json::from_str::<ChainComplex>(&broken).is_err());
    }

    #[test]
    fn edge_path_group_roundtrips_with_rebuilt_index() {
        let g = EdgePathGroup::new(&hollow_triangle());
        let g2 = roundtrip(&g);
        assert_eq!(bytes(&g2), bytes(&g));
        // The rebuilt generator index must translate walks identically.
        let walk = [
            Vertex::of(0, 0),
            Vertex::of(1, 0),
            Vertex::of(2, 0),
            Vertex::of(0, 0),
        ];
        assert_eq!(g2.word_of_walk(&walk), g.word_of_walk(&walk));
    }

    #[test]
    fn presentation_summary_recomputes_flags() {
        let s = PresentationSummary::of(&hollow_triangle());
        let s2 = roundtrip(&s);
        assert_eq!(s2.is_trivial(), s.is_trivial());
        assert_eq!(s2.is_evidently_abelian(), s.is_evidently_abelian());
        assert_eq!(bytes(&s2), bytes(&s));
    }

    #[test]
    fn edge_path_group_rejects_generator_mismatch() {
        let g = EdgePathGroup::new(&hollow_triangle());
        let json = bytes(&g);
        let broken = json.replacen(r#""generator_edges":["#, r#""generator_edges":[null,"#, 1);
        assert!(serde_json::from_str::<EdgePathGroup>(&broken).is_err());
    }
}
