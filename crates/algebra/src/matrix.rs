//! Dense integer matrices with checked arithmetic.
//!
//! Boundary operators of small simplicial complexes and exponent matrices
//! of group presentations are tiny, so a straightforward dense
//! representation with `i64` entries (and overflow checks on every
//! arithmetic operation) is both simple and safe.

use std::fmt;

/// A dense `rows × cols` integer matrix.
///
/// # Examples
///
/// ```
/// use chromata_algebra::IntMatrix;
///
/// let mut m = IntMatrix::zeros(2, 3);
/// m.set(0, 0, 1);
/// m.set(1, 2, -4);
/// assert_eq!(m.get(1, 2), -4);
/// assert_eq!(m.transpose().get(2, 1), -4);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMatrix {
    /// Creates a zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IntMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = IntMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        IntMatrix { rows, cols, data }
    }

    /// The row-major backing storage (for serialization).
    #[must_use]
    pub(crate) fn data(&self) -> &[i64] {
        &self.data
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> i64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data
            .get(r * self.cols + c)
            .copied()
            .expect("entry in bounds") // chromata-lint: allow(P1): r*cols+c < rows*cols = data.len() by the assert above
    }

    /// Sets the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: i64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let idx = r * self.cols + c;
        let slot = self.data.get_mut(idx).expect("entry in bounds"); // chromata-lint: allow(P1): r*cols+c < rows*cols = data.len() by the assert above
        *slot = v;
    }

    /// Adds `v` to the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on overflow or out-of-bounds access.
    pub fn add_to(&mut self, r: usize, c: usize, v: i64) {
        let cur = self.get(r, c);
        self.set(r, c, cur.checked_add(v).expect("integer overflow")); // chromata-lint: allow(P1): checked arithmetic: coefficient overflow is a hard internal error; wrapping would corrupt homology verdicts
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> IntMatrix {
        let mut t = IntMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or overflow.
    #[must_use]
    pub fn mul(&self, other: &IntMatrix) -> IntMatrix {
        assert_eq!(self.cols, other.rows, "shape mismatch in matrix product");
        let mut out = IntMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..other.cols {
                    let b = other.get(k, c);
                    if b != 0 {
                        // chromata-lint: allow(P1): checked arithmetic: coefficient overflow is a hard internal error; wrapping would corrupt homology verdicts
                        out.add_to(r, c, a.checked_mul(b).expect("integer overflow"));
                    }
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or overflow.
    #[must_use]
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        assert_eq!(
            self.cols,
            v.len(),
            "shape mismatch in matrix-vector product"
        );
        (0..self.rows)
            .map(|r| {
                v.iter().enumerate().fold(0i64, |acc, (c, &x)| {
                    acc.checked_add(self.get(r, c).checked_mul(x).expect("integer overflow")) // chromata-lint: allow(P1): checked arithmetic: coefficient overflow is a hard internal error; wrapping would corrupt homology verdicts
                        .expect("integer overflow") // chromata-lint: allow(P1): checked arithmetic: coefficient overflow is a hard internal error; wrapping would corrupt homology verdicts
                })
            })
            .collect()
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let (x, y) = (self.get(a, c), self.get(b, c));
            self.set(a, c, y);
            self.set(b, c, x);
        }
    }

    /// Swaps two columns.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for r in 0..self.rows {
            let (x, y) = (self.get(r, a), self.get(r, b));
            self.set(r, a, y);
            self.set(r, b, x);
        }
    }

    /// Row operation `row[a] += k · row[b]`.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn add_row_multiple(&mut self, a: usize, b: usize, k: i64) {
        for c in 0..self.cols {
            let delta = self.get(b, c).checked_mul(k).expect("integer overflow"); // chromata-lint: allow(P1): checked arithmetic: coefficient overflow is a hard internal error; wrapping would corrupt homology verdicts
            self.add_to(a, c, delta);
        }
    }

    /// Column operation `col[a] += k · col[b]`.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn add_col_multiple(&mut self, a: usize, b: usize, k: i64) {
        for r in 0..self.rows {
            let delta = self.get(r, b).checked_mul(k).expect("integer overflow"); // chromata-lint: allow(P1): checked arithmetic: coefficient overflow is a hard internal error; wrapping would corrupt homology verdicts
            self.add_to(r, a, delta);
        }
    }

    /// Negates a row.
    pub fn negate_row(&mut self, r: usize) {
        for c in 0..self.cols {
            let v = self.get(r, c);
            self.set(r, c, v.checked_neg().expect("integer overflow")); // chromata-lint: allow(P1): checked arithmetic: coefficient overflow is a hard internal error; wrapping would corrupt homology verdicts
        }
    }

    /// Negates a column.
    pub fn negate_col(&mut self, c: usize) {
        for r in 0..self.rows {
            let v = self.get(r, c);
            self.set(r, c, v.checked_neg().expect("integer overflow")); // chromata-lint: allow(P1): checked arithmetic: coefficient overflow is a hard internal error; wrapping would corrupt homology verdicts
        }
    }

    /// Stacks `self` on top of `other` (same column count).
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    #[must_use]
    pub fn vstack(&self, other: &IntMatrix) -> IntMatrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        IntMatrix::from_rows(self.rows + other.rows, self.cols, data)
    }

    /// Concatenates `self` with `other` side by side (same row count).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    #[must_use]
    pub fn hstack(&self, other: &IntMatrix) -> IntMatrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = IntMatrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(r, c, self.get(r, c));
            }
            for c in 0..other.cols {
                out.set(r, self.cols + c, other.get(r, c));
            }
        }
        out
    }

    /// Whether all entries are zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0)
    }
}

impl fmt::Display for IntMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>3}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let m = IntMatrix::from_rows(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(m.mul(&IntMatrix::identity(2)), m);
        assert_eq!(IntMatrix::identity(2).mul(&m), m);
    }

    #[test]
    fn product_and_vec() {
        let a = IntMatrix::from_rows(2, 3, vec![1, 0, 2, -1, 3, 1]);
        let b = IntMatrix::from_rows(3, 2, vec![3, 1, 2, 1, 1, 0]);
        let c = a.mul(&b);
        assert_eq!(c, IntMatrix::from_rows(2, 2, vec![5, 1, 4, 2]));
        assert_eq!(a.mul_vec(&[1, 1, 1]), vec![3, 3]);
    }

    #[test]
    fn row_col_ops() {
        let mut m = IntMatrix::from_rows(2, 2, vec![1, 2, 3, 4]);
        m.swap_rows(0, 1);
        assert_eq!(m, IntMatrix::from_rows(2, 2, vec![3, 4, 1, 2]));
        m.add_row_multiple(0, 1, -3);
        assert_eq!(m, IntMatrix::from_rows(2, 2, vec![0, -2, 1, 2]));
        m.negate_row(0);
        assert_eq!(m.get(0, 1), 2);
        m.swap_cols(0, 1);
        assert_eq!(m.get(0, 0), 2);
        m.add_col_multiple(1, 0, 1);
        assert_eq!(m.get(0, 1), 2);
        m.negate_col(0);
        assert_eq!(m.get(0, 0), -2);
    }

    #[test]
    fn stacking() {
        let a = IntMatrix::from_rows(1, 2, vec![1, 2]);
        let b = IntMatrix::from_rows(1, 2, vec![3, 4]);
        assert_eq!(a.vstack(&b), IntMatrix::from_rows(2, 2, vec![1, 2, 3, 4]));
        let c = a.hstack(&b);
        assert_eq!(c, IntMatrix::from_rows(1, 4, vec![1, 2, 3, 4]));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = IntMatrix::zeros(2, 3);
        let _ = a.mul(&IntMatrix::zeros(2, 2));
    }

    #[test]
    fn zero_detection() {
        assert!(IntMatrix::zeros(3, 3).is_zero());
        assert!(!IntMatrix::identity(1).is_zero());
    }
}
