//! Smith normal form of integer matrices.
//!
//! The Smith normal form `D = U · A · V` (with `U`, `V` unimodular) is the
//! workhorse behind homology computation (torsion coefficients) and integer
//! linear-system feasibility, both of which feed the contractibility checks
//! of the solvability pipeline (paper, §5).

use crate::matrix::IntMatrix;

/// The result of a Smith normal form computation: `d = u · a · v` with `u`
/// and `v` unimodular and `d` diagonal with `d[0] | d[1] | …`.
#[derive(Clone, Debug)]
pub struct SmithForm {
    /// The diagonal matrix `D`.
    pub d: IntMatrix,
    /// Unimodular row-transformation matrix `U` (`rows × rows`).
    pub u: IntMatrix,
    /// Unimodular column-transformation matrix `V` (`cols × cols`).
    pub v: IntMatrix,
}

impl SmithForm {
    /// The non-zero diagonal entries (the invariant factors), normalized
    /// positive.
    #[must_use]
    pub fn invariant_factors(&self) -> Vec<i64> {
        let n = self.d.rows().min(self.d.cols());
        (0..n)
            .map(|i| self.d.get(i, i).abs())
            .filter(|&x| x != 0)
            .collect()
    }

    /// The rank of the matrix (number of non-zero invariant factors).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.invariant_factors().len()
    }

    /// The invariant factors greater than 1 — the torsion coefficients of
    /// the cokernel.
    #[must_use]
    pub fn torsion(&self) -> Vec<i64> {
        self.invariant_factors()
            .into_iter()
            .filter(|&x| x > 1)
            .collect()
    }
}

/// Computes the Smith normal form of `a`.
///
/// # Examples
///
/// ```
/// use chromata_algebra::{smith_normal_form, IntMatrix};
///
/// let a = IntMatrix::from_rows(2, 2, vec![2, 4, 6, 8]);
/// let s = smith_normal_form(&a);
/// assert_eq!(s.invariant_factors(), vec![2, 4]);
/// assert_eq!(s.u.mul(&a).mul(&s.v), s.d);
/// ```
#[must_use]
pub fn smith_normal_form(a: &IntMatrix) -> SmithForm {
    let mut d = a.clone();
    let mut u = IntMatrix::identity(a.rows());
    let mut v = IntMatrix::identity(a.cols());
    let n = a.rows().min(a.cols());

    for t in 0..n {
        // Find a pivot: the entry of minimal non-zero absolute value in the
        // remaining submatrix.
        let Some((pr, pc)) = pivot(&d, t) else {
            break; // remaining submatrix is zero
        };
        d.swap_rows(t, pr);
        u.swap_rows(t, pr);
        d.swap_cols(t, pc);
        v.swap_cols(t, pc);

        // Eliminate the pivot row and column; re-pivot when remainders
        // appear (standard SNF loop).
        loop {
            let mut clean = true;
            for r in (t + 1)..d.rows() {
                let q = div_round(d.get(r, t), d.get(t, t));
                if q != 0 {
                    d.add_row_multiple(r, t, -q);
                    u.add_row_multiple(r, t, -q);
                }
                if d.get(r, t) != 0 {
                    // Remainder smaller than pivot: swap up and restart.
                    d.swap_rows(t, r);
                    u.swap_rows(t, r);
                    clean = false;
                }
            }
            for c in (t + 1)..d.cols() {
                let q = div_round(d.get(t, c), d.get(t, t));
                if q != 0 {
                    d.add_col_multiple(c, t, -q);
                    v.add_col_multiple(c, t, -q);
                }
                if d.get(t, c) != 0 {
                    d.swap_cols(t, c);
                    v.swap_cols(t, c);
                    clean = false;
                }
            }
            if clean {
                break;
            }
        }

        // Divisibility fix-up: ensure d[t][t] divides every remaining entry.
        'divis: loop {
            let p = d.get(t, t);
            for r in (t + 1)..d.rows() {
                for c in (t + 1)..d.cols() {
                    if d.get(r, c) % p != 0 {
                        // Add row r to row t and re-eliminate.
                        d.add_row_multiple(t, r, 1);
                        u.add_row_multiple(t, r, 1);
                        loop {
                            let mut clean = true;
                            for cc in (t + 1)..d.cols() {
                                let q = div_round(d.get(t, cc), d.get(t, t));
                                if q != 0 {
                                    d.add_col_multiple(cc, t, -q);
                                    v.add_col_multiple(cc, t, -q);
                                }
                                if d.get(t, cc) != 0 {
                                    d.swap_cols(t, cc);
                                    v.swap_cols(t, cc);
                                    clean = false;
                                }
                            }
                            for rr in (t + 1)..d.rows() {
                                let q = div_round(d.get(rr, t), d.get(t, t));
                                if q != 0 {
                                    d.add_row_multiple(rr, t, -q);
                                    u.add_row_multiple(rr, t, -q);
                                }
                                if d.get(rr, t) != 0 {
                                    d.swap_rows(t, rr);
                                    u.swap_rows(t, rr);
                                    clean = false;
                                }
                            }
                            if clean {
                                break;
                            }
                        }
                        continue 'divis;
                    }
                }
            }
            break;
        }

        if d.get(t, t) < 0 {
            d.negate_row(t);
            u.negate_row(t);
        }
    }
    SmithForm { d, u, v }
}

/// Rounded division used for elimination steps: quotient minimizing the
/// remainder's absolute value.
fn div_round(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    let q = a / b;
    let r = a - q * b;
    if 2 * r.abs() > b.abs() {
        q + r.signum() * b.signum()
    } else {
        q
    }
}

fn pivot(d: &IntMatrix, t: usize) -> Option<(usize, usize)> {
    let mut best: Option<(i64, usize, usize)> = None;
    for r in t..d.rows() {
        for c in t..d.cols() {
            let x = d.get(r, c).abs();
            if x != 0 && best.is_none_or(|(bx, _, _)| x < bx) {
                best = Some((x, r, c));
            }
        }
    }
    best.map(|(_, r, c)| (r, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &IntMatrix) -> SmithForm {
        let s = smith_normal_form(a);
        // D = U A V must hold exactly.
        assert_eq!(s.u.mul(a).mul(&s.v), s.d, "U·A·V != D for\n{a}");
        // D diagonal with divisibility chain.
        let n = s.d.rows().min(s.d.cols());
        for r in 0..s.d.rows() {
            for c in 0..s.d.cols() {
                if r != c {
                    assert_eq!(s.d.get(r, c), 0, "off-diagonal non-zero");
                }
            }
        }
        let f = s.invariant_factors();
        for w in f.windows(2) {
            assert_eq!(w[1] % w[0], 0, "divisibility chain broken: {f:?}");
        }
        let _ = n;
        s
    }

    #[test]
    fn diagonal_already() {
        let a = IntMatrix::from_rows(2, 2, vec![3, 0, 0, 6]);
        let s = check(&a);
        assert_eq!(s.invariant_factors(), vec![3, 6]);
    }

    #[test]
    fn classic_example() {
        let a = IntMatrix::from_rows(3, 3, vec![2, 4, 4, -6, 6, 12, 10, 4, 16]);
        let s = check(&a);
        assert_eq!(s.invariant_factors(), vec![2, 2, 156]);
    }

    #[test]
    fn rank_deficient() {
        let a = IntMatrix::from_rows(2, 3, vec![1, 2, 3, 2, 4, 6]);
        let s = check(&a);
        assert_eq!(s.rank(), 1);
        assert_eq!(s.invariant_factors(), vec![1]);
    }

    #[test]
    fn zero_matrix() {
        let a = IntMatrix::zeros(3, 2);
        let s = check(&a);
        assert_eq!(s.rank(), 0);
        assert!(s.torsion().is_empty());
    }

    #[test]
    fn torsion_detection() {
        // Boundary matrix giving Z/2 cokernel: [2].
        let a = IntMatrix::from_rows(1, 1, vec![2]);
        let s = check(&a);
        assert_eq!(s.torsion(), vec![2]);
    }

    #[test]
    fn negative_entries_normalized() {
        let a = IntMatrix::from_rows(2, 2, vec![-2, 0, 0, -3]);
        let s = check(&a);
        assert_eq!(s.invariant_factors(), vec![1, 6]);
    }

    #[test]
    fn random_small_matrices_satisfy_decomposition() {
        // Deterministic pseudo-random sweep (LCG) over small matrices.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as i64 % 7) - 3
        };
        for _ in 0..50 {
            let (r, c) = (3, 4);
            let data: Vec<i64> = (0..r * c).map(|_| next()).collect();
            check(&IntMatrix::from_rows(r, c, data));
        }
    }
}
