//! Immediate-snapshot schedules: ordered set partitions.
//!
//! A one-round immediate-snapshot execution by the processes of a simplex
//! `σ` is an *ordered partition* of `id(σ)` into concurrency classes
//! `B₁, …, B_k`: the processes of `B_t` write together and then snapshot
//! together, seeing `B₁ ∪ … ∪ B_t` (paper, §2.1, §2.4). The facets of the
//! standard chromatic subdivision `Ch(σ)` are in bijection with these
//! schedules.
//!
//! chromata-lint: allow(P3): schedule positions are bounded by the round structure fixed at construction; every site is advisory-flagged by P2 for per-site review

// chromata-lint: allow(D1): key-addressed memo cache; entries are read by key, never iterated
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use chromata_topology::{Color, Simplex, Value, Vertex};

/// An ordered partition of a color set into non-empty concurrency classes.
pub type Schedule = Vec<Vec<Color>>;

/// Ordered partitions of `{0, …, n-1}` by index, memoized per arity: the
/// block structure depends only on how many colors there are, so the
/// expensive recursive enumeration runs once per `n` and concrete color
/// slices are produced by substitution.
/// All ordered partitions of `{0, …, n-1}` for one arity.
type IndexSchedules = Arc<Vec<Vec<Vec<usize>>>>;

fn index_partitions(n: usize) -> IndexSchedules {
    // chromata-lint: allow(D1): per-arity memo cache addressed by usize key; never iterated
    static CACHE: OnceLock<Mutex<HashMap<usize, IndexSchedules>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new())); // chromata-lint: allow(D1): same cache as above
    let mut guard = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(guard.entry(n).or_insert_with(|| {
        let mut out = Vec::new();
        let indices: Vec<usize> = (0..n).collect();
        enumerate(&indices, &mut Vec::new(), &mut out);
        Arc::new(out)
    }))
}

/// Enumerates all ordered set partitions of `colors`.
///
/// For `n = 1, 2, 3` there are `1, 3, 13` schedules (the ordered Bell /
/// Fubini numbers) — hence the 13 facets of the chromatic subdivision of a
/// triangle. The underlying enumeration is memoized per arity, so repeated
/// calls only pay for the color substitution.
///
/// # Examples
///
/// ```
/// use chromata_subdivision::ordered_partitions;
/// use chromata_topology::Color;
///
/// let colors: Vec<Color> = Color::first(3).collect();
/// assert_eq!(ordered_partitions(&colors).len(), 13);
/// ```
#[must_use]
pub fn ordered_partitions(colors: &[Color]) -> Vec<Schedule> {
    index_partitions(colors.len())
        .iter()
        .map(|sched| {
            sched
                .iter()
                .map(|block| block.iter().map(|&i| colors[i]).collect())
                .collect()
        })
        .collect()
}

fn enumerate(rest: &[usize], current: &mut Vec<Vec<usize>>, out: &mut Vec<Vec<Vec<usize>>>) {
    if rest.is_empty() {
        out.push(current.clone());
        return;
    }
    // Choose the non-empty first block B₁ ⊆ rest, recurse on the remainder.
    let n = rest.len();
    for mask in 1u32..(1 << n) {
        let block: Vec<usize> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| rest[i])
            .collect();
        let remainder: Vec<usize> = (0..n)
            .filter(|i| mask & (1 << i) == 0)
            .map(|i| rest[i])
            .collect();
        current.push(block);
        enumerate(&remainder, current, out);
        current.pop();
    }
}

/// The views resulting from executing `schedule` on input simplex `sigma`:
/// for each color, the face of `sigma` it sees (its own block and all
/// earlier ones).
///
/// # Panics
///
/// Panics if the schedule's colors do not exactly partition `id(sigma)`.
#[must_use]
pub fn schedule_views(sigma: &Simplex, schedule: &[Vec<Color>]) -> Vec<(Color, Simplex)> {
    let mut seen: Vec<Vertex> = Vec::new();
    let mut out = Vec::new();
    let mut covered = chromata_topology::ColorSet::new();
    for block in schedule {
        for &c in block {
            let v = sigma
                .vertex_of_color(c)
                .unwrap_or_else(|| panic!("schedule color {c} not in simplex {sigma}")); // chromata-lint: allow(P1): schedules are generated from sigma's own colors
            seen.push(v.clone());
            assert!(covered.insert(c), "schedule repeats color {c}");
        }
        let view = Simplex::new(seen.clone());
        for &c in block {
            out.push((c, view.clone()));
        }
    }
    assert_eq!(
        covered,
        sigma.colors(),
        "schedule does not cover all colors of {sigma}"
    );
    out
}

/// The subdivision vertex produced by a view: color `c`, value
/// `View(vertices of the seen face)`.
#[must_use]
pub fn view_vertex(color: Color, view: &Simplex) -> Vertex {
    Vertex::new(color, Value::view(view.iter().cloned()))
}

/// The facet of `Ch(σ)` corresponding to a schedule.
///
/// # Panics
///
/// Panics if the schedule does not partition `id(σ)`.
#[must_use]
pub fn schedule_facet(sigma: &Simplex, schedule: &[Vec<Color>]) -> Simplex {
    Simplex::from_iter(
        schedule_views(sigma, schedule)
            .into_iter()
            .map(|(c, view)| view_vertex(c, &view)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colors(n: usize) -> Vec<Color> {
        Color::first(n).collect()
    }

    #[test]
    fn fubini_numbers() {
        assert_eq!(ordered_partitions(&colors(1)).len(), 1);
        assert_eq!(ordered_partitions(&colors(2)).len(), 3);
        assert_eq!(ordered_partitions(&colors(3)).len(), 13);
        assert_eq!(ordered_partitions(&colors(4)).len(), 75);
    }

    #[test]
    fn schedules_are_partitions() {
        for sched in ordered_partitions(&colors(3)) {
            let mut all: Vec<Color> = sched.iter().flatten().copied().collect();
            all.sort();
            assert_eq!(all, colors(3));
            assert!(sched.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn sequential_schedule_views_nest() {
        let sigma = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 2)]);
        // P0 then P1 then P2.
        let sched: Schedule = vec![
            vec![Color::new(0)],
            vec![Color::new(1)],
            vec![Color::new(2)],
        ];
        let views = schedule_views(&sigma, &sched);
        assert_eq!(views[0].1.len(), 1);
        assert_eq!(views[1].1.len(), 2);
        assert_eq!(views[2].1.len(), 3);
        assert!(views[0].1.is_face_of(&views[1].1));
        assert!(views[1].1.is_face_of(&views[2].1));
    }

    #[test]
    fn simultaneous_schedule_views_equal() {
        let sigma = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 2)]);
        let sched: Schedule = vec![colors(3)];
        let views = schedule_views(&sigma, &sched);
        assert!(views.iter().all(|(_, v)| *v == sigma));
    }

    #[test]
    fn schedule_facet_is_chromatic_full_dim() {
        let sigma = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1), Vertex::of(2, 2)]);
        for sched in ordered_partitions(&colors(3)) {
            let f = schedule_facet(&sigma, &sched);
            assert_eq!(f.dimension(), 2);
            assert!(f.is_chromatic());
            assert_eq!(f.colors(), sigma.colors());
        }
    }

    #[test]
    #[should_panic(expected = "not in simplex")]
    fn bad_schedule_panics() {
        let sigma = Simplex::from_iter([Vertex::of(0, 0)]);
        let _ = schedule_views(&sigma, &[vec![Color::new(1)]]);
    }
}
