//! The standard chromatic subdivision and its iterates.
//!
//! `Ch(σ)` is the protocol complex of one round of immediate snapshots on
//! `σ`; `Ch^r(I)` of `r` rounds (paper, §2.4). The Herlihy–Shavit ACT
//! characterizes solvability through chromatic simplicial maps from
//! `Ch^r(I)` — the *hard-to-check* side that the paper's new
//! characterization replaces.

use chromata_topology::{CarrierMap, Complex, Simplex, Vertex};

use crate::schedule::{ordered_partitions, schedule_facet};

/// A subdivided complex together with the carrier map from the original
/// complex: `carrier.image_of(τ)` is the subdivision of `τ`.
#[derive(Clone, Debug)]
pub struct Subdivision {
    /// The subdivided complex (`Ch^r(K)`).
    pub complex: Complex,
    /// Carrier map `K → 2^{Ch^r(K)}`, defined on every simplex of `K`.
    pub carrier: CarrierMap,
}

impl Subdivision {
    /// The trivial (0-round) subdivision: the complex itself, with the
    /// identity carrier `τ ↦ closure(τ)`.
    #[must_use]
    pub fn identity(k: &Complex) -> Self {
        let carrier = CarrierMap::from_fn(k, |s| vec![s.clone()]);
        Subdivision {
            complex: k.clone(),
            carrier,
        }
    }

    /// The carrier (minimal original simplex) of a subdivision simplex:
    /// the union of the views of its vertices.
    ///
    /// Returns `None` if some vertex is not a view vertex.
    #[must_use]
    pub fn carrier_of(&self, s: &Simplex) -> Option<Simplex> {
        carrier_of_simplex(s)
    }
}

/// The carrier of a subdivision simplex: union of its vertices' views.
///
/// In the standard chromatic subdivision the views of a simplex form a
/// chain, so the union is the largest view; taking the union is correct in
/// general and robust to faces shared between subdivided facets.
#[must_use]
pub fn carrier_of_simplex(s: &Simplex) -> Option<Simplex> {
    let mut acc: Option<Simplex> = None;
    for v in s {
        let view = v.value().as_view()?;
        let face = Simplex::new(view.to_vec());
        acc = Some(match acc {
            None => face,
            Some(a) => a.union(&face),
        });
    }
    acc
}

/// The standard chromatic subdivision `Ch(K)` of a chromatic complex.
///
/// Every facet `σ` of `K` contributes one facet of `Ch(K)` per ordered
/// partition of `id(σ)` (13 for a triangle); subdivisions of shared faces
/// agree because view vertices are value-identified.
///
/// # Examples
///
/// ```
/// use chromata_subdivision::chromatic_subdivision;
/// use chromata_topology::{Complex, Simplex, Vertex};
///
/// let tri = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0), Vertex::of(2, 0)]);
/// let ch = chromatic_subdivision(&Complex::from_facets([tri]));
/// assert_eq!(ch.complex.facet_count(), 13);
/// ```
#[must_use]
pub fn chromatic_subdivision(k: &Complex) -> Subdivision {
    // Build Ch(τ) for every simplex τ of K; facets of Ch(K) come from
    // facets of K, and the carrier map records Ch(τ) for all τ.
    let mut complex = Complex::new();
    let mut carrier = CarrierMap::new();
    for tau in k.simplices() {
        let sub = subdivide_simplex(tau);
        for f in sub.facets() {
            complex.add_simplex(f.clone());
        }
        carrier.insert(tau.clone(), sub);
    }
    Subdivision { complex, carrier }
}

/// `Ch(τ)` for a single simplex, as a complex.
fn subdivide_simplex(tau: &Simplex) -> Complex {
    let colors: Vec<_> = tau.colors().iter().collect();
    Complex::from_facets(
        ordered_partitions(&colors)
            .iter()
            .map(|sched| schedule_facet(tau, sched)),
    )
}

/// The iterated chromatic subdivision `Ch^r(K)` with the composed carrier
/// map `K → 2^{Ch^r(K)}`.
///
/// `r = 0` yields the identity subdivision.
#[must_use]
pub fn iterated_chromatic_subdivision(k: &Complex, rounds: usize) -> Subdivision {
    let mut current = Subdivision::identity(k);
    for _ in 0..rounds {
        let next = chromatic_subdivision(&current.complex);
        current = Subdivision {
            carrier: current.carrier.then(&next.carrier),
            complex: next.complex,
        };
    }
    current
}

/// The *barycentric* subdivision of a ≤2-dimensional complex, with the
/// standard chromatic structure coloring each barycenter by the dimension
/// of its face. Used for colorless comparisons and tests.
#[must_use]
pub fn barycentric_subdivision(k: &Complex) -> Complex {
    let mut out = Complex::new();
    // Facets: chains σ₀ ⊂ σ₁ ⊂ … of simplices of K, maximal ones built
    // from the facets downward.
    for facet in k.facets() {
        let chains = chains_below(facet);
        for chain in chains {
            out.add_simplex(Simplex::from_iter(chain.iter().map(barycenter_vertex)));
        }
    }
    out
}

fn barycenter_vertex(face: &Simplex) -> Vertex {
    Vertex::new(
        chromata_topology::Color::new(face.dimension() as u8),
        chromata_topology::Value::view(face.iter().cloned()),
    )
}

/// All maximal chains of faces `σ₀ ⊂ σ₁ ⊂ … ⊂ facet`.
fn chains_below(facet: &Simplex) -> Vec<Vec<Simplex>> {
    fn rec(top: &Simplex) -> Vec<Vec<Simplex>> {
        if top.dimension() == 0 {
            return vec![vec![top.clone()]];
        }
        let mut out = Vec::new();
        for f in top.boundary_faces() {
            for mut chain in rec(&f) {
                chain.push(top.clone());
                out.push(chain);
            }
        }
        out
    }
    rec(facet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_topology::Color;

    fn tri(x: i64) -> Simplex {
        Simplex::from_iter([Vertex::of(0, x), Vertex::of(1, x), Vertex::of(2, x)])
    }

    #[test]
    fn triangle_subdivision_counts() {
        let k = Complex::from_facets([tri(0)]);
        let ch = chromatic_subdivision(&k);
        assert_eq!(ch.complex.facet_count(), 13);
        assert!(ch.complex.is_pure());
        assert!(ch.complex.is_chromatic());
        // Vertices of Ch(Δ²): per color, views containing that color:
        // central (3 per color: |view| choices) — total: for each color c,
        // faces containing c: 1 of dim0 + 2 of dim1 + 1 of dim2 = 4. So 12.
        assert_eq!(ch.complex.vertex_count(), 12);
    }

    #[test]
    fn edge_subdivision_counts() {
        let e = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0)]);
        let k = Complex::from_facets([e]);
        let ch = chromatic_subdivision(&k);
        assert_eq!(ch.complex.facet_count(), 3, "3 ordered partitions of 2");
        assert_eq!(ch.complex.vertex_count(), 4);
    }

    #[test]
    fn boundary_subdivisions_glue() {
        // Two triangles sharing an edge: Ch has 26 facets and the shared
        // edge's subdivision is shared.
        let shared0 = Vertex::of(0, 0);
        let shared1 = Vertex::of(1, 0);
        let k = Complex::from_facets([
            Simplex::from_iter([shared0.clone(), shared1.clone(), Vertex::of(2, 0)]),
            Simplex::from_iter([shared0.clone(), shared1.clone(), Vertex::of(2, 1)]),
        ]);
        let ch = chromatic_subdivision(&k);
        assert_eq!(ch.complex.facet_count(), 26);
        // Shared-edge views appear once: vertex count = 12 + 12 - 4 = 20.
        assert_eq!(ch.complex.vertex_count(), 20);
        assert!(ch.complex.is_link_connected());
    }

    #[test]
    fn carrier_map_valid_and_boundary_respecting() {
        let k = Complex::from_facets([tri(0)]);
        let ch = chromatic_subdivision(&k);
        ch.carrier.validate_chromatic(&k).expect("valid carrier");
        // The subdivision of an edge of the triangle is exactly the part of
        // Ch on that boundary edge.
        let edge = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0)]);
        let sub_edge = ch.carrier.image_of(&edge);
        assert_eq!(sub_edge.facet_count(), 3);
        assert!(sub_edge.is_subcomplex_of(&ch.complex));
    }

    #[test]
    fn carrier_of_simplex_is_max_view() {
        let k = Complex::from_facets([tri(0)]);
        let ch = chromatic_subdivision(&k);
        for f in ch.complex.facets() {
            let c = carrier_of_simplex(f).unwrap();
            assert_eq!(c, tri(0), "facet carriers are the whole triangle");
        }
        // A boundary simplex has a boundary carrier.
        let edge = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0)]);
        let sub_edge = ch.carrier.image_of(&edge);
        for f in sub_edge.facets() {
            assert_eq!(carrier_of_simplex(f).unwrap(), edge);
        }
    }

    #[test]
    fn iterated_growth() {
        let k = Complex::from_facets([tri(0)]);
        let ch2 = iterated_chromatic_subdivision(&k, 2);
        assert_eq!(ch2.complex.facet_count(), 13 * 13);
        ch2.carrier
            .validate_chromatic(&k)
            .expect("valid composed carrier");
        // Round 0 is the identity.
        let ch0 = iterated_chromatic_subdivision(&k, 0);
        assert_eq!(ch0.complex, k);
    }

    #[test]
    fn subdivision_preserves_topology_euler() {
        let k = Complex::from_facets([tri(0)]);
        let ch = chromatic_subdivision(&k);
        assert_eq!(ch.complex.euler_characteristic(), k.euler_characteristic());
        let circle = k.skeleton(1);
        let chc = chromatic_subdivision(&circle);
        assert_eq!(chc.complex.euler_characteristic(), 0);
    }

    #[test]
    fn barycentric_counts_and_colors() {
        let k = Complex::from_facets([tri(0)]);
        let b = barycentric_subdivision(&k);
        assert_eq!(b.facet_count(), 6, "3! chains in a triangle");
        assert!(b.is_chromatic(), "barycenters colored by dimension");
        assert_eq!(b.colors(), chromata_topology::ColorSet::full(3));
        assert_eq!(b.euler_characteristic(), 1);
        let _ = Color::new(0);
    }
}
