//! Chromatic subdivisions: protocol complexes of immediate-snapshot
//! executions.
//!
//! Wait-free read/write protocols have protocol complexes that are iterated
//! standard chromatic subdivisions of the input complex (paper, §2.4). This
//! crate provides:
//!
//! * [`ordered_partitions`] — immediate-snapshot schedules (one-round
//!   executions);
//! * [`chromatic_subdivision`] / [`iterated_chromatic_subdivision`] —
//!   `Ch(K)` and `Ch^r(K)` with their carrier maps;
//! * [`barycentric_subdivision`] — the colorless comparison point;
//! * [`carrier_of_simplex`] — carriers of subdivision simplices.
//!
//! The crate is the substrate of the baseline Herlihy–Shavit ACT checker in
//! the `chromata` core crate, and is cross-validated against actual
//! immediate-snapshot executions by `chromata-runtime`.
//!
//! ```
//! use chromata_subdivision::iterated_chromatic_subdivision;
//! use chromata_topology::{Complex, Simplex, Vertex};
//!
//! let tri = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0), Vertex::of(2, 0)]);
//! let k = Complex::from_facets([tri]);
//! let ch2 = iterated_chromatic_subdivision(&k, 2);
//! assert_eq!(ch2.complex.facet_count(), 169); // 13²
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chromatic;
mod schedule;

pub use chromatic::{
    barycentric_subdivision, carrier_of_simplex, chromatic_subdivision,
    iterated_chromatic_subdivision, subdivision_memo_stats, Subdivision,
};
pub use schedule::{ordered_partitions, schedule_facet, schedule_views, view_vertex, Schedule};
