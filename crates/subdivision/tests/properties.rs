//! Property-based tests for the chromatic subdivision.

use proptest::prelude::*;

use chromata_subdivision::{
    carrier_of_simplex, chromatic_subdivision, iterated_chromatic_subdivision, ordered_partitions,
    schedule_facet,
};
use chromata_topology::{Color, Complex, Simplex, Vertex};

/// A random pure chromatic 2-complex (glued triangles over a small pool).
fn complex_strategy() -> impl Strategy<Value = Complex> {
    proptest::collection::vec((0i64..3, 0i64..3, 0i64..3), 1..5).prop_map(|triples| {
        Complex::from_facets(triples.iter().map(|(a, b, c)| {
            Simplex::from_iter([Vertex::of(0, *a), Vertex::of(1, *b), Vertex::of(2, *c)])
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn facet_count_is_thirteen_per_triangle(k in complex_strategy()) {
        let sub = chromatic_subdivision(&k);
        prop_assert_eq!(
            sub.complex.facet_count(),
            13 * k.facet_count(),
            "one subdivided copy per ordered partition per facet"
        );
    }

    #[test]
    fn subdivision_is_chromatic_and_pure(k in complex_strategy()) {
        let sub = chromatic_subdivision(&k);
        prop_assert!(sub.complex.is_chromatic());
        prop_assert!(sub.complex.is_pure());
        prop_assert_eq!(sub.complex.dimension(), k.dimension());
    }

    #[test]
    fn carrier_map_is_valid_and_boundary_respecting(k in complex_strategy()) {
        let sub = chromatic_subdivision(&k);
        prop_assert!(sub.carrier.validate_chromatic(&k).is_ok());
        for tau in k.simplices() {
            let part = sub.carrier.image_of(tau);
            prop_assert!(part.is_subcomplex_of(&sub.complex));
            for facet in part.facets() {
                let carrier = carrier_of_simplex(facet);
                prop_assert_eq!(carrier.as_ref(), Some(tau), "facet carrier mismatch");
            }
        }
    }

    #[test]
    fn views_in_facets_form_chains(k in complex_strategy()) {
        let sub = chromatic_subdivision(&k);
        for f in sub.complex.facets() {
            let mut views: Vec<&[Vertex]> = f
                .iter()
                .map(|v| v.value().as_view().expect("view vertices"))
                .collect();
            views.sort_by_key(|v| v.len());
            for w in views.windows(2) {
                let small: std::collections::BTreeSet<_> = w[0].iter().collect();
                let big: std::collections::BTreeSet<_> = w[1].iter().collect();
                prop_assert!(small.is_subset(&big), "views must nest");
            }
            // Self-inclusion.
            for v in f {
                let view = v.value().as_view().unwrap();
                prop_assert!(view.iter().any(|u| u.color() == v.color()));
            }
        }
    }

    #[test]
    fn subdivision_preserves_euler_characteristic(k in complex_strategy()) {
        let sub = chromatic_subdivision(&k);
        prop_assert_eq!(
            sub.complex.euler_characteristic(),
            k.euler_characteristic()
        );
    }

    #[test]
    fn memoized_subdivision_matches_schedule_reference(k in complex_strategy()) {
        // The production path goes through the interned-simplex cache and
        // the parallel facet fan-out. Recompute the expected facet set from
        // first principles (one `schedule_facet` per ordered partition per
        // facet, no caches involved) and demand observational equality.
        let sub = chromatic_subdivision(&k);
        let mut expected = std::collections::BTreeSet::new();
        for sigma in k.facets() {
            let colors: Vec<Color> = sigma.colors().iter().collect();
            for sched in ordered_partitions(&colors) {
                expected.insert(schedule_facet(sigma, &sched));
            }
        }
        let actual: std::collections::BTreeSet<Simplex> =
            sub.complex.facets().cloned().collect();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn iterated_counts_match_fubini_powers(k in complex_strategy()) {
        // Ch^r facet growth is exactly 13^r per input triangle for r ≤ 2,
        // and every structural invariant survives the cached fast path.
        if k.facet_count() > 2 {
            return Ok(());
        }
        for r in 0..=2usize {
            let sub = iterated_chromatic_subdivision(&k, r);
            prop_assert_eq!(
                sub.complex.facet_count(),
                13usize.pow(r as u32) * k.facet_count(),
                "round {}", r
            );
            prop_assert!(sub.complex.is_pure());
            prop_assert!(sub.complex.is_chromatic());
            prop_assert_eq!(
                sub.complex.euler_characteristic(),
                k.euler_characteristic()
            );
            prop_assert!(sub.carrier.validate_chromatic(&k).is_ok());
        }
    }

    #[test]
    fn two_rounds_compose(k in complex_strategy()) {
        // Bound the size to keep Ch² affordable.
        if k.facet_count() > 2 {
            return Ok(());
        }
        let two = iterated_chromatic_subdivision(&k, 2);
        let once = chromatic_subdivision(&k);
        let again = chromatic_subdivision(&once.complex);
        prop_assert_eq!(two.complex, again.complex);
        prop_assert!(two.carrier.validate_chromatic(&k).is_ok());
    }
}

#[test]
fn ordered_partition_counts_match_fubini() {
    let fubini = [1usize, 1, 3, 13, 75];
    for (n, &expected) in fubini.iter().enumerate() {
        let colors: Vec<Color> = Color::first(n).collect();
        assert_eq!(ordered_partitions(&colors).len(), expected, "n = {n}");
    }
}
