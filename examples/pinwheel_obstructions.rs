//! The pinwheel task and the two §5.3 corollaries (paper, Fig. 8, §6.2).
//!
//! Shows why Corollary 5.5 is *not* enough for the pinwheel (paths
//! avoiding articulation crossings still exist between adjacent solo
//! outputs) while the cycle-based Corollary 5.6 and the full pipeline
//! both certify unsolvability.
//!
//! ```sh
//! cargo run --example pinwheel_obstructions
//! ```

use chromata::{
    analyze, corollary_5_5, every_cycle_crosses_a_lap, laps, split_all, PipelineOptions,
};
use chromata_task::{canonicalize, library::pinwheel};

fn main() {
    let t = pinwheel();
    println!("{t}");
    let sigma = t.input().facets().next().expect("single facet").clone();
    println!(
        "Δ(σ) keeps {} of the 21 2-set-agreement triangles",
        t.delta().image_of(&sigma).facet_count()
    );

    println!("\n── articulation points w.r.t. σ");
    for lap in laps(&t) {
        println!(
            "  {} : {} link components",
            lap.vertex,
            lap.component_count()
        );
    }

    let canonical = canonicalize(&t);

    println!("\n── Corollary 5.5 (path-based): does it apply?");
    match corollary_5_5(&canonical) {
        Some(w) => println!("  applies (unexpected for the pinwheel): {w:?}"),
        None => println!("  does NOT apply — LAP-avoiding paths exist between solo outputs (§6.2)"),
    }

    println!("\n── Corollary 5.6 (cycle-based): every cycle crosses a LAP?");
    println!(
        "  {}",
        match every_cycle_crosses_a_lap(&canonical) {
            Some(true) => "yes — the crossing graph of Δ(Skel¹I) is a forest",
            Some(false) => "no (unexpected)",
            None => "not applicable",
        }
    );

    println!("\n── splitting and the final verdict");
    let split = split_all(&canonical);
    println!(
        "  {} split steps; O' has {} facets in {} components",
        split.steps.len(),
        split.task.output().facet_count(),
        split.task.output().connected_components().len()
    );
    for x in canonical.input().vertices() {
        let img = split
            .task
            .delta()
            .image_of(&chromata_topology::Simplex::vertex(x.clone()));
        println!(
            "  solo {} may decide {} copies (one per component, §6.2)",
            x,
            img.vertex_count()
        );
    }
    let analysis = analyze(&t, PipelineOptions::default());
    println!("  pipeline verdict: {:?}", analysis.verdict);
}
