//! A gallery of splitting runs: watch Theorem 4.3's elimination reshape
//! each library task's output complex, step by step.
//!
//! ```sh
//! cargo run --release --example splitting_gallery
//! ```

use chromata::{first_lap_of_facet, laps, split_once};
use chromata_task::{canonicalize, library, Task};

fn main() {
    for t in [
        library::hourglass(),
        library::pinwheel(),
        library::leader_election(),
        library::majority_consensus(),
        library::renaming(3),
    ] {
        gallery(&t);
    }
}

fn gallery(task: &Task) {
    let mut current = canonicalize(task);
    println!("━━━ {} — splitting trace", task.name());
    println!(
        "{:>4}  {:>8} {:>8} {:>10}  split vertex (components)",
        "step", "vertices", "facets", "components"
    );
    let mut step = 0usize;
    print_row(step, &current, "—");
    let facets: Vec<_> = current.input().facets().cloned().collect();
    for sigma in facets {
        while let Some(lap) = first_lap_of_facet(&current, &sigma) {
            match split_once(&current, &lap) {
                Ok(next) => {
                    step += 1;
                    current = next;
                    print_row(
                        step,
                        &current,
                        &format!("{} ({})", lap.vertex, lap.component_count()),
                    );
                }
                Err(x) => {
                    println!("  degenerate at {x}: task unsolvable outright");
                    return;
                }
            }
        }
    }
    println!(
        "  final: link-connected = {}, residual LAPs = {}\n",
        current.is_link_connected(),
        laps(&current).len()
    );
}

fn print_row(step: usize, t: &Task, split: &str) {
    println!(
        "{:>4}  {:>8} {:>8} {:>10}  {}",
        step,
        t.output().vertex_count(),
        t.output().facet_count(),
        t.output().connected_components().len(),
        split
    );
}
