//! The hourglass task, end to end (paper, Fig. 2 and §6.1).
//!
//! Reproduces every panel of Figure 2: the input complex, the output
//! complex, the link of the articulation point, the split output complex
//! — and the two solvability verdicts that frame the paper's motivation:
//! the *colorless* continuous map exists, yet the chromatic task is
//! unsolvable.
//!
//! ```sh
//! cargo run --example hourglass_walkthrough
//! ```

use chromata::{
    analyze, continuous_map_exists, corollary_5_5, laps, solve_act, split_all, ContinuousOutcome,
    PipelineOptions,
};
use chromata_task::{canonicalize, library::hourglass};

fn main() {
    let t = hourglass();

    println!("── Fig. 2 (left): input complex");
    print!("{}", t.input());

    println!("── Fig. 2 (center left): output complex");
    print!("{}", t.output());

    println!("── Fig. 2 (right): link of the articulation point");
    let lap = &laps(&t)[0];
    println!(
        "vertex {} has {} link components:",
        lap.vertex,
        lap.component_count()
    );
    for (i, comp) in lap.components.iter().enumerate() {
        let members: Vec<String> = comp.iter().map(ToString::to_string).collect();
        println!("  C{i} = {{{}}}", members.join(", "));
    }

    println!("\n── §1.1: the colorless ACT is satisfied (the motivating gap)");
    match continuous_map_exists(&t) {
        ContinuousOutcome::Exists { certificates, .. } => {
            println!(
                "continuous |I| → |O| map exists: {}",
                certificates.join("; ")
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    println!("\n── Fig. 2 (center right): output complex after splitting");
    let split = split_all(&canonicalize(&t));
    print!("{}", split.task.output());
    println!(
        "components after splitting: {}",
        split.task.output().connected_components().len()
    );

    println!("\n── §6.1: impossibility, two ways");
    if let Some((sigma, edge)) = corollary_5_5(&canonicalize(&t)) {
        println!("Corollary 5.5 applies: for input triangle {sigma}, every path across {edge} crosses the LAP");
    }
    let analysis = analyze(&t, PipelineOptions::default());
    println!("pipeline verdict: {:?}", analysis.verdict);

    println!("\n── baseline cross-check: bounded ACT search (rounds 0..=2)");
    let act = solve_act(&t, 2);
    println!(
        "ACT search: {}",
        if act.is_solvable() {
            "found a map (BUG!)"
        } else {
            "no chromatic decision map up to 2 subdivision rounds (consistent)"
        }
    );
}
