//! Loop agreement on stock surfaces (paper, §1.3 and §7).
//!
//! Loop agreement reduces solvability to loop contractibility — the
//! undecidable-in-general residue of the characterization. On the stock
//! surfaces the tiers are exact: sphere and disk loops contract (tasks
//! solvable); the torus loop is essential in `H₁ = ℤ²` and the projective
//! plane loop is 2-torsion in `H₁ = ℤ/2` (tasks unsolvable).
//!
//! ```sh
//! cargo run --example loop_agreement_surfaces
//! ```

use chromata::algebra::{homology, ChainComplex};
use chromata::{analyze, PipelineOptions};
use chromata_task::library::{
    disk_complex, klein_bottle_doubled_loop, klein_bottle_single_loop, loop_agreement,
    projective_plane_complex, sphere_complex, torus_complex, LoopSpec,
};
use chromata_topology::{Color, Vertex};

fn main() {
    for (name, spec) in [
        ("disk", disk_complex()),
        ("sphere", sphere_complex()),
        ("torus", torus_complex()),
        ("projective-plane", projective_plane_complex()),
        ("klein-torsion-loop", klein_bottle_single_loop()),
        ("klein-doubled-loop", klein_bottle_doubled_loop()),
    ] {
        describe(name, &spec);
        let task = loop_agreement(name, spec);
        let verdict = analyze(&task, PipelineOptions::default()).verdict;
        println!("  loop agreement verdict: {verdict:?}\n");
    }
}

fn describe(name: &str, spec: &LoopSpec) {
    let h = homology(&spec.complex);
    println!(
        "━━━ {name}: {} vertices, {} triangles; H = (b0={}, b1={}, b2={}, torsion {:?})",
        spec.complex.vertex_count(),
        spec.complex.simplices_of_dim(2).count(),
        h.betti0,
        h.betti1,
        h.betti2,
        h.torsion1
    );
    let cc = ChainComplex::new(&spec.complex);
    let walk: Vec<Vertex> = spec
        .loop_walk()
        .iter()
        .map(|v| Vertex::new(Color::new(0), v.clone()))
        .collect();
    let chain = cc.walk_to_chain(&walk).expect("loop follows edges");
    println!(
        "  distinguished loop {:?}: cycle={}, null-homologous={}",
        spec.loop_walk()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        cc.is_cycle(&chain),
        cc.is_boundary(&chain)
    );
}
