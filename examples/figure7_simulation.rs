//! Running the paper's Figure 7 algorithm under the exhaustive scheduler
//! (paper, §5.2, Lemma 5.3).
//!
//! The color-agnostic sub-protocol `A_C` is simulated by the adaptive
//! adversarial oracle (DESIGN.md, substitutions); the model checker then
//! enumerates *every* interleaving of the algorithm's atomic steps and
//! every adversarial branch, checking that all terminal outcomes respect
//! the task and that every process decides a vertex of its own color.
//!
//! ```sh
//! cargo run --release --example figure7_simulation
//! ```

use chromata_runtime::{
    explore, initial_memory, processes_for, run_random, verify_figure7, Fig7Config,
};
use chromata_task::library::{identity_task, two_set_agreement};
use chromata_topology::Simplex;

fn main() {
    // ── Exhaustive verification on the identity task (all participant
    // sets, all schedules).
    let t = identity_task(3);
    let report = verify_figure7(&t, 5_000_000).expect("within budget");
    println!(
        "identity-3: {} participant sets, {} outcomes, {} states — all correct",
        report.participant_sets, report.outcomes, report.states
    );

    // ── 2-set agreement: the task is wait-free UNSOLVABLE, but Fig. 7
    // only assumes the A_C *interface* — under the simulated oracle it
    // still fixes colors correctly on every schedule (Lemma 5.3 is about
    // the transformation, not about realizing A_C).
    let t = two_set_agreement();
    let sigma = t.input().facets().next().unwrap().clone();
    let config = Fig7Config::new(t.clone());
    let explored = explore(
        processes_for(&sigma),
        initial_memory(),
        &config,
        20_000_000,
        500,
    )
    .expect("within budget");
    println!(
        "2-set agreement: {} states explored, {} distinct outcomes",
        explored.states,
        explored.outcomes.len()
    );
    for outcome in explored.outcomes.iter().take(10) {
        let s = Simplex::new(outcome.clone());
        assert!(t.delta().carries(&sigma, &s));
        println!("  outcome {s}");
    }
    println!("  … every outcome verified against Δ(σ)");

    // ── A single random schedule, reproducible by seed.
    let outcome = run_random(
        processes_for(&sigma),
        initial_memory(),
        &config,
        42,
        100_000,
    )
    .expect("terminates");
    println!("seed-42 schedule outcome: {}", Simplex::new(outcome));
}
