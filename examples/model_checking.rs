//! The model checker as a debugging tool: catch a subtly broken protocol
//! and extract the exact schedule that breaks it.
//!
//! The broken protocol is "snapshot agreement without the snapshot": each
//! process writes its value, does a *non-atomic-looking* single read of
//! slot 0, and decides the minimum of what it saw — a plausible-looking
//! 2-set-agreement attempt that fails on schedules where the processes
//! see disjoint information.
//!
//! ```sh
//! cargo run --release --example model_checking
//! ```

use chromata_runtime::{explore, find_violation, replay, Cell, Memory, Process, TraceEvent};
use chromata_topology::{Simplex, Vertex};

/// The broken protocol: write own value, read slot `(id + 1) % 3`, decide
/// the smaller of own value and what was read (if anything).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct BrokenAgreement {
    id: u8,
    input: i64,
    wrote: bool,
    decided: Option<Vertex>,
}

impl Process for BrokenAgreement {
    type Config = ();

    fn decided(&self) -> Option<&Vertex> {
        self.decided.as_ref()
    }

    fn step(&self, (): &(), memory: &Memory) -> Vec<(Self, Memory)> {
        if !self.wrote {
            let mut m = memory.clone();
            m.update("r", self.id as usize, Cell::Int(self.input));
            return vec![(
                BrokenAgreement {
                    wrote: true,
                    ..self.clone()
                },
                m,
            )];
        }
        let neighbor = memory
            .read("r", (self.id as usize + 1) % 3)
            .and_then(|c| c.as_int());
        let decision = neighbor.map_or(self.input, |v| v.min(self.input));
        vec![(
            BrokenAgreement {
                decided: Some(Vertex::of(self.id, decision)),
                ..self.clone()
            },
            memory.clone(),
        )]
    }
}

fn processes() -> Vec<BrokenAgreement> {
    (0..3u8)
        .map(|id| BrokenAgreement {
            id,
            input: i64::from(id) + 1,
            wrote: false,
            decided: None,
        })
        .collect()
}

fn main() {
    let memory = Memory::with_objects(&["r"], 3);

    // The property we hoped for: at most two distinct decisions.
    let two_set = |outcome: &Vec<Vertex>| {
        let mut vals: Vec<i64> = outcome
            .iter()
            .map(|v| v.value().as_int().expect("ints"))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals.len() <= 2
    };

    let explored = explore(processes(), memory.clone(), &(), 100_000, 100).expect("small");
    println!(
        "explored {} states, {} distinct outcomes",
        explored.states,
        explored.outcomes.len()
    );

    match find_violation(processes(), memory.clone(), &(), 100_000, 100, two_set)
        .expect("within budget")
    {
        Some((trace, outcome)) => {
            println!(
                "\ncounterexample found: outcome {} has three distinct values",
                Simplex::new(outcome.clone())
            );
            println!("the schedule ({} steps): {trace}", trace.len());
            for ev in &trace.0 {
                match ev {
                    TraceEvent::Step { process, branch } => {
                        println!("  P{process} steps (branch {branch})");
                    }
                    TraceEvent::Crash { process } => println!("  P{process} crashes"),
                }
            }
            // Replaying the trace reproduces the violation exactly.
            let replayed = replay(processes(), memory, &(), &trace).expect("complete trace");
            assert_eq!(replayed, outcome);
            println!("replay reproduces the outcome — file the bug with this schedule.");
        }
        None => println!("no violation (unexpected for the broken protocol)"),
    }
}
