//! Quickstart: define a chromatic task and decide its wait-free
//! solvability with the paper's pipeline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chromata::{analyze, laps, PipelineOptions, Verdict};
use chromata_task::library::{hourglass, majority_consensus};
use chromata_task::Task;
use chromata_topology::{Complex, Simplex, Vertex};

fn main() {
    // ── 1. A task from the library: majority consensus (paper, Fig. 1).
    let majority = majority_consensus();
    report(&majority);

    // ── 2. The hourglass (paper, Fig. 2), with its articulation point.
    let hg = hourglass();
    for lap in laps(&hg) {
        println!(
            "hourglass articulation point: {} with {} link components",
            lap.vertex,
            lap.component_count()
        );
    }
    report(&hg);

    // ── 3. A custom task built from scratch: "reverse agreement" — three
    // processes on a single input facet; everyone must output the same
    // value 0 or 1, but solo runs are free to pick either. (Solvable:
    // e.g. always output 0.)
    let facet = Simplex::from_iter((0..3).map(|i| Vertex::of(i, 0)));
    let input = Complex::from_facets([facet]);
    let custom = Task::from_delta_fn("free-agreement", input, |tau| {
        [0i64, 1]
            .into_iter()
            .map(|d| {
                Simplex::from_iter(
                    tau.iter()
                        .map(|u| u.with_value(chromata_topology::Value::Int(d))),
                )
            })
            .collect()
    })
    .expect("valid task");
    report(&custom);
}

fn report(task: &Task) {
    let analysis = analyze(task, PipelineOptions::default());
    println!("━━━ {task}");
    println!(
        "    canonical: |O*| = {} facets; split steps: {}; link-connected O': {} facets, {} components",
        analysis.canonical.output().facet_count(),
        analysis.split.steps.len(),
        analysis.split.task.output().facet_count(),
        analysis.split.task.output().connected_components().len(),
    );
    match &analysis.verdict {
        Verdict::Solvable { certificate } => println!("    SOLVABLE — {certificate}"),
        Verdict::Unsolvable { obstruction } => println!("    UNSOLVABLE — {obstruction}"),
        Verdict::Unknown { reason } => println!("    UNKNOWN — {reason}"),
    }
    println!();
}
