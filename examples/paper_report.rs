//! Regenerates every figure-level quantity of the paper in one run; the
//! output of this binary is the data recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example paper_report
//! ```

use chromata::algebra::homology;
use chromata::subdivision::iterated_chromatic_subdivision;
use chromata::{
    analyze, continuous_map_exists, corollary_5_5, every_cycle_crosses_a_lap, laps, solve_act,
    split_all, ContinuousOutcome, PipelineOptions, Verdict,
};
use chromata_runtime::{empirical_protocol_complex, verify_figure7};
use chromata_task::library::{
    adaptive_renaming, approximate_agreement, consensus, disk_complex, hourglass, identity_task,
    klein_bottle_doubled_loop, klein_bottle_single_loop, leader_election, loop_agreement,
    majority_consensus, pinwheel, projective_plane_complex, simple_example_task, sphere_complex,
    torus_complex, two_process_consensus, two_set_agreement,
};
use chromata_task::{canonicalize, is_canonical, Task};
use chromata_topology::{Complex, Simplex, Vertex};
use std::time::Instant;

fn main() {
    println!("# chromata — paper reproduction report\n");

    fig1_majority();
    fig2_hourglass();
    fig3_4_canonical();
    fig5_6_splitting();
    fig7_algorithm();
    fig8_pinwheel();
    e5b_round_guessing();
    e2_two_process();
    e3_loop_agreement();
    e4_protocol_complex();
    e5_pipeline_vs_act();
}

fn verdict_str(v: &Verdict) -> String {
    match v {
        Verdict::Solvable { .. } => "SOLVABLE".into(),
        Verdict::Unsolvable { obstruction } => format!("UNSOLVABLE ({obstruction})"),
        Verdict::Unknown { reason } => format!("UNKNOWN ({reason})"),
    }
}

fn fig1_majority() {
    println!("## F1 — Fig. 1: majority consensus");
    let t = majority_consensus();
    // The colorless ACT condition applies to the task's *colorless
    // shadow*, where decisions are value sets: "two 0s and one 1" and
    // "one 0 and two 1s" both collapse to {0,1}, so the majority
    // constraint disappears and the shadow is the trivial value-edge
    // task: a continuous map exists iff the solo values connect in the
    // mixed image — which they do (identity on the edge {0,1}).
    let shadow_input =
        Complex::from_facets([Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1)])]);
    let shadow = Task::from_delta_fn("majority-shadow", shadow_input, |tau| {
        match tau.dimension() {
            0 => vec![tau.clone()],
            _ => vec![
                Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1)]),
                Simplex::from_iter(
                    tau.iter()
                        .map(|u| u.with_value(chromata_topology::Value::Int(0))),
                ),
                Simplex::from_iter(
                    tau.iter()
                        .map(|u| u.with_value(chromata_topology::Value::Int(1))),
                ),
            ],
        }
    })
    .expect("valid shadow");
    let shadow_ok = matches!(
        continuous_map_exists(&shadow),
        ContinuousOutcome::Exists { .. }
    );
    println!("colorless-shadow ACT condition satisfied: {shadow_ok}");
    // At the *chromatic* complex level, even pre-split, the coupled H1
    // system is already infeasible (a strictly stronger statement than
    // the paper needs).
    let chromatic_map = matches!(continuous_map_exists(&t), ContinuousOutcome::Exists { .. });
    println!("chromatic-complex continuous map (identities kept): {chromatic_map}");
    let c = canonicalize(&t);
    let split = split_all(&c);
    println!(
        "split steps: {}, O' components (global union): {}",
        split.steps.len(),
        split.task.output().connected_components().len()
    );
    println!("Corollary 5.5 applies: {}", corollary_5_5(&c).is_some());
    let a = analyze(&t, PipelineOptions::default());
    println!("pipeline verdict: {}\n", verdict_str(&a.verdict));
}

fn fig2_hourglass() {
    println!("## F2 — Fig. 2: hourglass");
    let t = hourglass();
    println!(
        "output: {} vertices, {} facets",
        t.output().vertex_count(),
        t.output().facet_count()
    );
    let ls = laps(&t);
    println!(
        "articulation points: {} (vertex {}, {} link components)",
        ls.len(),
        ls[0].vertex,
        ls[0].component_count()
    );
    let colorless_ok = matches!(continuous_map_exists(&t), ContinuousOutcome::Exists { .. });
    println!("colorless continuous map on raw task exists: {colorless_ok} (the §1.1 gap)");
    let split = split_all(&canonicalize(&t));
    println!(
        "after splitting: {} vertices, {} components",
        split.task.output().vertex_count(),
        split.task.output().connected_components().len()
    );
    println!(
        "Corollary 5.5 applies: {}",
        corollary_5_5(&canonicalize(&t)).is_some()
    );
    let a = analyze(&t, PipelineOptions::default());
    println!("pipeline verdict: {}\n", verdict_str(&a.verdict));
}

fn fig3_4_canonical() {
    println!("## F3/F4 — Figs. 3–4: running example and canonical form");
    let t = simple_example_task();
    println!(
        "raw: |I| = {} facets, |O| = {} facets, canonical: {}",
        t.input().facet_count(),
        t.output().facet_count(),
        is_canonical(&t)
    );
    let c = canonicalize(&t);
    println!(
        "canonicalized: |O*| = {} facets, canonical: {}",
        c.output().facet_count(),
        is_canonical(&c)
    );
    let shared = Simplex::from_iter([Vertex::of(1, 0), Vertex::of(2, 0)]);
    println!(
        "shared input edge image facets (green edge only): {}\n",
        c.delta().image_of(&shared).facet_count()
    );
}

fn fig5_6_splitting() {
    println!("## F5/F6 — Figs. 5–6: splitting deformation invariants");
    for t in [hourglass(), pinwheel(), majority_consensus()] {
        let c = canonicalize(&t);
        let before = laps(&c).len();
        let split = split_all(&c);
        println!(
            "{}: {} LAPs eliminated in {} steps; canonical preserved: {}; link-connected: {}",
            t.name(),
            before,
            split.steps.len(),
            is_canonical(&split.task),
            split.task.is_link_connected(),
        );
    }
    println!();
}

fn fig7_algorithm() {
    println!("## F7 — Fig. 7: the chromatic decision algorithm");
    for t in [identity_task(3), two_set_agreement()] {
        let start = Instant::now();
        let r = verify_figure7(&t, 20_000_000).expect("budget");
        println!(
            "{}: {} participant sets, {} outcomes, {} states — all correct ({:?})",
            t.name(),
            r.participant_sets,
            r.outcomes,
            r.states,
            start.elapsed()
        );
    }
    println!();
}

fn fig8_pinwheel() {
    println!("## F8 — Fig. 8: pinwheel");
    let t = pinwheel();
    let sigma = t.input().facets().next().unwrap().clone();
    println!(
        "kept triangles: {} of 21",
        t.delta().image_of(&sigma).facet_count()
    );
    println!("articulation points: {}", laps(&t).len());
    let c = canonicalize(&t);
    println!("Corollary 5.5 applies: {}", corollary_5_5(&c).is_some());
    println!(
        "Corollary 5.6 (every cycle crosses a LAP): {:?}",
        every_cycle_crosses_a_lap(&c)
    );
    let split = split_all(&c);
    println!(
        "split: {} steps; O' components: {} (paper's figure: 3; see EXPERIMENTS.md)",
        split.steps.len(),
        split.task.output().connected_components().len()
    );
    for x in c.input().vertices() {
        println!(
            "solo {} decides {} copies",
            x,
            split
                .task
                .delta()
                .image_of(&Simplex::vertex(x.clone()))
                .vertex_count()
        );
    }
    let a = analyze(&t, PipelineOptions::default());
    println!("pipeline verdict: {}\n", verdict_str(&a.verdict));
}

fn e5b_round_guessing() {
    println!("## E5b — the round-guessing problem, concretely");
    let t = adaptive_renaming();
    let s = Instant::now();
    let v = analyze(&t, PipelineOptions::default()).verdict;
    println!(
        "pipeline on {}: {} in {:?}",
        t.name(),
        verdict_str(&v),
        s.elapsed()
    );
    for r in 0..=2usize {
        let s = Instant::now();
        let found = solve_act(&t, r).is_solvable();
        println!(
            "ACT r ≤ {r}: {} ({:?})",
            if found {
                "map found"
            } else {
                "exhausted — inconclusive"
            },
            s.elapsed()
        );
    }
    println!();
}

fn e2_two_process() {
    println!("## E2 — Proposition 5.4: two-process decider");
    for (t, expect) in [(two_process_consensus(), false), (identity_task(2), true)] {
        let got = chromata::decide_two_process(&t);
        println!("{}: solvable = {got} (expected {expect})", t.name());
        assert_eq!(got, expect);
    }
    println!();
}

fn e3_loop_agreement() {
    println!("## E3 — loop agreement on stock surfaces");
    for (name, spec) in [
        ("disk", disk_complex()),
        ("sphere", sphere_complex()),
        ("torus", torus_complex()),
        ("rp2", projective_plane_complex()),
        ("klein (torsion loop)", klein_bottle_single_loop()),
        ("klein (doubled loop)", klein_bottle_doubled_loop()),
    ] {
        let h = homology(&spec.complex);
        let t = loop_agreement(name, spec);
        let a = analyze(&t, PipelineOptions::default());
        println!(
            "{name}: H1 rank {} torsion {:?} → {}",
            h.betti1,
            h.torsion1,
            verdict_str(&a.verdict)
        );
    }
    println!();
}

fn e4_protocol_complex() {
    println!("## E4 — §2.4: protocol complexes, combinatorial vs empirical");
    let sigma = Simplex::from_iter((0..3).map(|i| Vertex::of(i, i64::from(i))));
    let k = Complex::from_facets([sigma.clone()]);
    for r in 0..=3 {
        let sub = iterated_chromatic_subdivision(&k, r);
        println!(
            "Ch^{r}(Δ²): {} facets, {} vertices",
            sub.complex.facet_count(),
            sub.complex.vertex_count()
        );
    }
    let empirical = empirical_protocol_complex(&sigma).expect("budget");
    let combinatorial = iterated_chromatic_subdivision(&k, 1);
    println!(
        "one-round immediate-snapshot executions ≡ Ch(σ): {}\n",
        empirical == combinatorial.complex
    );
}

fn e5_pipeline_vs_act() {
    println!("## E5 — new characterization vs bounded ACT baseline");
    let tasks: Vec<(Task, usize)> = vec![
        (identity_task(3), 1),
        (hourglass(), 1),
        (majority_consensus(), 1),
        (pinwheel(), 1),
        (two_set_agreement(), 1),
        (consensus(3), 1),
        (leader_election(), 1),
        (approximate_agreement(1), 1),
        (adaptive_renaming(), 1),
    ];
    println!(
        "{:<22} {:>14} {:>12} {:>18} {:>12}",
        "task", "pipeline", "time", "ACT(r≤1)", "time"
    );
    for (t, rounds) in tasks {
        let s = Instant::now();
        let verdict = analyze(&t, PipelineOptions::default()).verdict;
        let t_pipeline = s.elapsed();
        let s = Instant::now();
        let act = solve_act(&t, rounds);
        let t_act = s.elapsed();
        println!(
            "{:<22} {:>14} {:>12?} {:>18} {:>12?}",
            t.name(),
            match verdict {
                Verdict::Solvable { .. } => "solvable",
                Verdict::Unsolvable { .. } => "unsolvable",
                Verdict::Unknown { .. } => "unknown",
            },
            t_pipeline,
            if act.is_solvable() {
                "map found"
            } else {
                "no map (≤ r)"
            },
            t_act
        );
    }
}
